"""``python -m repro`` — run the Section-8 demonstration end to end.

``python -m repro --trace`` runs the same demo with the observability
layer enabled and, after the demo output, prints the hierarchical span
tree plus a metrics summary (see ``repro.obs``). CI smoke-tests this
path and greps the output for the ``session.paste`` span.
"""

import runpy
import sys
from pathlib import Path


def _run_demo() -> None:
    demo = Path(__file__).resolve().parents[2] / "examples" / "hurricane_relief.py"
    if demo.exists():
        sys.argv = [str(demo)]
        runpy.run_path(str(demo), run_name="__main__")
    else:  # installed without the examples tree: run a minimal inline demo
        from repro import Browser, CopyCatSession, build_scenario

        scenario = build_scenario(seed=5, n_shelters=8)
        session = CopyCatSession(catalog=scenario.catalog, seed=1)
        browser = Browser(session.clipboard, scenario.website)
        browser.navigate(scenario.list_urls()[0])
        listing = browser.page.dom.find("table", "listing")
        records = [n for n in listing.children if "record" in n.css_classes]
        browser.copy_record(records[0], "Shelters")
        session.paste()
        session.accept_row_suggestions()
        for index, label in enumerate(["Name", "Street", "City"]):
            session.label_column(index, label)
        session.commit_source()
        session.start_integration("Shelters")
        for suggestion in session.column_suggestions():
            print(suggestion.describe())


def _print_observability() -> None:
    from repro import obs

    print()
    print("=" * 72)
    print("TRACE (hierarchical spans: name, wall/CPU ms, attributes)")
    print("=" * 72)
    for line in obs.render_span_tree(obs.TRACER.roots()):
        print(line)

    snapshot = obs.METRICS.snapshot()
    print()
    print("=" * 72)
    print("METRICS")
    print("=" * 72)
    for name, value in sorted(snapshot["counters"].items()):
        print(f"  counter    {name} = {value:g}")
    for name, value in sorted(snapshot["gauges"].items()):
        print(f"  gauge      {name} = {value:g}")
    for name, summary in sorted(snapshot["histograms"].items()):
        print(
            f"  histogram  {name}: count={summary['count']:g} "
            f"mean={summary['mean']:.3f} p50={summary['p50']:.3f} "
            f"p95={summary['p95']:.3f} max={summary['max']:.3f}"
        )

    from repro.analysis import analysis_stats_line
    from repro.analysis.concurrency import conc_stats_line
    from repro.cache import cache_stats_line
    from repro.drift import drift_stats_line
    from repro.durability import durability_stats_line
    from repro.resilience import resilience_stats_line
    from repro.server import overload_stats_line, server_stats_line
    from repro.substrate.relational import columnar_stats_line

    print()
    print(cache_stats_line())
    print(resilience_stats_line())
    print(drift_stats_line())
    print(analysis_stats_line())
    print(columnar_stats_line())
    print(server_stats_line())
    print(overload_stats_line())
    print(durability_stats_line())
    print(conc_stats_line())


def main() -> None:
    """Run the Section-8 hurricane-relief demonstration."""
    trace = "--trace" in sys.argv[1:]
    if trace:
        sys.argv = [sys.argv[0]] + [a for a in sys.argv[1:] if a != "--trace"]
        from repro import obs

        obs.reset()
        obs.enable()
    try:
        _run_demo()
    finally:
        if trace:
            from repro import obs

            obs.disable()
            _print_observability()


if __name__ == "__main__":
    main()
