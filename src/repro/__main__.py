"""``python -m repro`` — run the Section-8 demonstration end to end."""

import runpy
import sys
from pathlib import Path


def main() -> None:
    """Run the Section-8 hurricane-relief demonstration."""
    demo = Path(__file__).resolve().parents[2] / "examples" / "hurricane_relief.py"
    if demo.exists():
        sys.argv = [str(demo)] + sys.argv[1:]
        runpy.run_path(str(demo), run_name="__main__")
    else:  # installed without the examples tree: run a minimal inline demo
        from repro import Browser, CopyCatSession, build_scenario

        scenario = build_scenario(seed=5, n_shelters=8)
        session = CopyCatSession(catalog=scenario.catalog, seed=1)
        browser = Browser(session.clipboard, scenario.website)
        browser.navigate(scenario.list_urls()[0])
        listing = browser.page.dom.find("table", "listing")
        records = [n for n in listing.children if "record" in n.css_classes]
        browser.copy_record(records[0], "Shelters")
        session.paste()
        session.accept_row_suggestions()
        for index, label in enumerate(["Name", "Street", "City"]):
            session.label_column(index, label)
        session.commit_source()
        session.start_integration("Shelters")
        for suggestion in session.column_suggestions():
            print(suggestion.describe())


if __name__ == "__main__":
    main()
