"""Exception hierarchy for the CopyCat reproduction.

Every error raised by the library derives from :class:`CopyCatError`, so
callers can catch a single base class. Sub-hierarchies mirror the major
subsystems (relational substrate, documents, services, learners, workspace).
"""

from __future__ import annotations


class CopyCatError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(CopyCatError):
    """A schema is malformed or two schemas are incompatible."""


class UnknownAttributeError(SchemaError):
    """An attribute name was not found in a schema."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        detail = f"unknown attribute {name!r}"
        if available:
            detail += f" (available: {', '.join(available)})"
        super().__init__(detail)


class BindingError(CopyCatError):
    """A service/source was invoked without its required input bindings."""


class EvaluationError(CopyCatError):
    """A query plan could not be evaluated."""


class CatalogError(CopyCatError):
    """A catalog lookup or registration failed."""


class DocumentError(CopyCatError):
    """A document (DOM / spreadsheet / website) operation failed."""


class NavigationError(DocumentError):
    """A URL or page could not be resolved in a simulated website."""


class ClipboardError(CopyCatError):
    """Copy/paste event is malformed or out of order."""


class ServiceError(CopyCatError):
    """A simulated service invocation failed."""


class TransientServiceError(ServiceError):
    """A retryable backend hiccup (timeout, flap, injected transient fault).

    The resilient invocation path retries these with backoff; they are
    *never* memoized, so a flaky moment cannot poison the service cache.
    """

    def __init__(self, message: str, service: str | None = None):
        self.service = service
        super().__init__(message)


class ServiceLookupFailed(ServiceError):
    """A service could not answer for the given inputs.

    Raised by :meth:`Service.invoke` once retries/deadline/breaker are
    exhausted; the evaluator converts it into a *degraded* partial result
    instead of aborting the plan. ``transient`` distinguishes "the backend
    was flaky" from "the backend is definitively broken for these inputs".
    """

    def __init__(self, message: str, service: str | None = None, transient: bool = False):
        self.service = service
        self.transient = transient
        super().__init__(message)


class CircuitOpenError(ServiceLookupFailed):
    """The service's circuit breaker is open: call rejected without a lookup."""

    def __init__(self, message: str, service: str | None = None):
        super().__init__(message, service=service, transient=True)


class DeadlineExceededError(ServiceLookupFailed):
    """The per-invocation deadline budget ran out mid-retry."""

    def __init__(self, message: str, service: str | None = None):
        super().__init__(message, service=service, transient=True)


class LearningError(CopyCatError):
    """A learner was used incorrectly or could not form a hypothesis."""


class NoHypothesisError(LearningError):
    """The structure learner found no hypothesis consistent with the examples."""


class ProvenanceError(CopyCatError):
    """A provenance expression is malformed or cannot be evaluated."""


class WorkspaceError(CopyCatError):
    """An invalid workspace interaction (bad cell, bad mode transition)."""


class FeedbackError(CopyCatError):
    """A feedback event could not be routed or applied."""


class ExportError(CopyCatError):
    """Export to an external format failed."""


class AnalysisError(CopyCatError):
    """Static analysis (plan checks or repo lint) failed."""


class PlanAnalysisError(AnalysisError):
    """A plan failed its pre-execution static checks.

    ``diagnostics`` carries the individual findings
    (:class:`repro.analysis.diagnostics.Diagnostic`), each naming the
    offending operator and the precise problem, so callers can surface
    them without re-running the analyzer.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class IntegrationError(CopyCatError):
    """The integration learner could not build or rank queries."""


class GraphError(IntegrationError):
    """A source-graph operation failed (missing node, disconnected terminals)."""
