"""Spreadsheet (workbook/sheet) document model.

The paper's Example 1 pulls shelter contact information from an Excel
spreadsheet; the CopyCat wrappers monitor copies from "Microsoft Office
applications like Word and Excel" (Section 2.3). This module models a
workbook precisely enough for the structure learner's easy case: "after
copying just two data items from a column in [a] spreadsheet, it is clear
that the user's selection should be generalized to include all the
additional rows in that column with similarly-typed information."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ...errors import DocumentError


@dataclass(frozen=True)
class CellRef:
    """Zero-based (row, column) reference with A1-style rendering."""

    row: int
    col: int

    def a1(self) -> str:
        col = self.col
        letters = ""
        while True:
            letters = chr(ord("A") + col % 26) + letters
            col = col // 26 - 1
            if col < 0:
                break
        return f"{letters}{self.row + 1}"

    def __str__(self) -> str:
        return self.a1()


@dataclass(frozen=True)
class CellRange:
    """An inclusive rectangular range of cells."""

    top: int
    left: int
    bottom: int
    right: int

    def __post_init__(self) -> None:
        if self.top > self.bottom or self.left > self.right:
            raise DocumentError(f"inverted cell range {self}")

    @property
    def height(self) -> int:
        return self.bottom - self.top + 1

    @property
    def width(self) -> int:
        return self.right - self.left + 1

    def cells(self) -> Iterator[CellRef]:
        for row in range(self.top, self.bottom + 1):
            for col in range(self.left, self.right + 1):
                yield CellRef(row, col)

    def __str__(self) -> str:
        return f"{CellRef(self.top, self.left)}:{CellRef(self.bottom, self.right)}"


class Sheet:
    """A rectangular grid of values with an optional header row."""

    def __init__(self, name: str, header: Iterable[str] | None = None):
        self.name = name
        self.header: list[str] = list(header) if header else []
        self._rows: list[list[Any]] = []

    # -- mutation ------------------------------------------------------------
    def append_row(self, values: Iterable[Any]) -> int:
        row = list(values)
        if self.header and len(row) != len(self.header):
            raise DocumentError(
                f"sheet {self.name!r}: row width {len(row)} != header width {len(self.header)}"
            )
        self._rows.append(row)
        return len(self._rows) - 1

    def extend(self, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.append_row(row)

    # -- access --------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        if self.header:
            return len(self.header)
        return max((len(row) for row in self._rows), default=0)

    def cell(self, row: int, col: int) -> Any:
        try:
            return self._rows[row][col]
        except IndexError:
            raise DocumentError(
                f"sheet {self.name!r}: no cell at ({row}, {col})"
            ) from None

    def row(self, index: int) -> list[Any]:
        return list(self._rows[index])

    def rows(self) -> list[list[Any]]:
        return [list(row) for row in self._rows]

    def column(self, col: int) -> list[Any]:
        return [row[col] for row in self._rows]

    def column_by_name(self, name: str) -> list[Any]:
        if name not in self.header:
            raise DocumentError(f"sheet {self.name!r}: no header column {name!r}")
        return self.column(self.header.index(name))

    def region(self, rng: CellRange) -> list[list[Any]]:
        """Values of a rectangular range as a list of lists."""
        if rng.bottom >= self.n_rows or rng.right >= self.n_cols:
            raise DocumentError(f"range {rng} exceeds sheet {self.name!r} bounds")
        return [
            [self._rows[r][c] for c in range(rng.left, rng.right + 1)]
            for r in range(rng.top, rng.bottom + 1)
        ]

    def region_text(self, rng: CellRange) -> str:
        """Tab/newline-delimited text, as a spreadsheet copy would yield."""
        return "\n".join(
            "\t".join(str(value) for value in row) for row in self.region(rng)
        )

    def find_value(self, value: Any) -> CellRef | None:
        for r, row in enumerate(self._rows):
            for c, cell in enumerate(row):
                if cell == value:
                    return CellRef(r, c)
        return None

    def __repr__(self) -> str:
        return f"Sheet({self.name!r}, {self.n_rows}x{self.n_cols})"


class Workbook:
    """A named collection of sheets."""

    def __init__(self, name: str):
        self.name = name
        self._sheets: dict[str, Sheet] = {}

    def add_sheet(self, sheet: Sheet) -> Sheet:
        if sheet.name in self._sheets:
            raise DocumentError(f"workbook already has a sheet named {sheet.name!r}")
        self._sheets[sheet.name] = sheet
        return sheet

    def new_sheet(self, name: str, header: Iterable[str] | None = None) -> Sheet:
        return self.add_sheet(Sheet(name, header))

    def sheet(self, name: str) -> Sheet:
        try:
            return self._sheets[name]
        except KeyError:
            raise DocumentError(f"workbook {self.name!r} has no sheet {name!r}") from None

    def sheet_names(self) -> list[str]:
        return list(self._sheets)

    @property
    def first_sheet(self) -> Sheet:
        if not self._sheets:
            raise DocumentError(f"workbook {self.name!r} has no sheets")
        return next(iter(self._sheets.values()))

    def __repr__(self) -> str:
        return f"Workbook({self.name!r}, sheets={self.sheet_names()})"
