"""Template-driven page rendering with controllable noise.

Synthetic stand-in for the paper's "real Web pages with shelter information"
(Section 8.1). A :class:`ListingTemplate` renders a list of records into a
page the way a CMS would: site chrome (masthead, nav, footer), a repeated
per-record template region, and configurable *noise* — ads interleaved with
records, inconsistent optional fields, decorative wrappers — which is the
knob the examples-needed ablation (A-3 in DESIGN.md) sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ...util.rng import make_rng
from .dom import DomNode, document, element

#: Noise levels: 0 = pristine template; 1 = chrome + ads outside the list;
#: 2 = ads interleaved *inside* the record list; 3 = per-record template
#: variation (optional fields, nested decoration).
MAX_NOISE = 3

_AD_TEXTS = (
    "SPONSORED: Generators in stock now",
    "Weather alert radios - click here",
    "Local: traffic updates every 10 minutes",
    "Donate to the relief fund",
)


@dataclass
class ListingTemplate:
    """Renders records into a repeated-template region.

    ``style`` selects the container: ``table`` (rows/cells), ``ul`` (one
    ``li`` per record with ``span`` fields), or ``div`` (class-tagged divs).
    """

    columns: Sequence[str]
    style: str = "table"
    record_class: str = "record"
    noise: int = 0
    seed: int | None = None
    #: When set, the first column's text links to ``record[link_field]``
    #: (a per-record detail URL) — the hierarchical-site case.
    link_field: str | None = None

    def __post_init__(self) -> None:
        if self.style not in ("table", "ul", "div"):
            raise ValueError(f"unknown listing style {self.style!r}")
        if not 0 <= self.noise <= MAX_NOISE:
            raise ValueError(f"noise must be in [0, {MAX_NOISE}]")

    # -- record rendering -------------------------------------------------------
    def _record_node(self, record: Mapping[str, Any], rng: random.Random) -> DomNode:
        values = [str(record[column]) for column in self.columns]
        decorate = self.noise >= 3 and rng.random() < 0.4
        href = record.get(self.link_field) if self.link_field else None
        if self.style == "table":
            cells = []
            for i, value in enumerate(values):
                content: DomNode | str = value
                if decorate and i == 0:
                    content = element("b", value)
                if href and i == 0:
                    content = element("a", content, href=str(href))
                cells.append(element("td", content))
            return element("tr", *cells, cls=self.record_class)
        if self.style == "ul":
            spans = [
                element("span", value, cls=f"f{i}") for i, value in enumerate(values)
            ]
            first = element("b", spans[0]) if decorate else spans[0]
            if href:
                first = element("a", first, href=str(href))
            return element("li", first, *spans[1:], cls=self.record_class)
        # div style
        parts = [
            element("div", value, cls=f"field f{i}") for i, value in enumerate(values)
        ]
        if decorate:
            parts.insert(1, element("em", "updated"))
        return element("div", *parts, cls=self.record_class)

    def _ad_node(self, rng: random.Random) -> DomNode:
        text = rng.choice(_AD_TEXTS)
        return element("div", element("a", text, href="/ads/offer"), cls="ad")

    def _container(self, record_nodes: list[DomNode], rng: random.Random) -> DomNode:
        children: list[DomNode] = []
        for i, node in enumerate(record_nodes):
            children.append(node)
            if self.noise >= 2 and i % 3 == 2:
                interleaved = self._ad_node(rng)
                if self.style == "table":
                    interleaved = element("tr", element("td", interleaved), cls="ad-row")
                elif self.style == "ul":
                    interleaved = element("li", interleaved, cls="ad-row")
                children.append(interleaved)
        if self.style == "table":
            header = element(
                "tr", *[element("th", column) for column in self.columns], cls="hdr"
            )
            return element("table", header, *children, cls="listing")
        if self.style == "ul":
            return element("ul", *children, cls="listing")
        return element("div", *children, cls="listing")

    # -- full pages -----------------------------------------------------------
    def render(
        self,
        records: Sequence[Mapping[str, Any]],
        title: str = "Listing",
        nav_links: Sequence[tuple[str, str]] = (),
    ) -> DomNode:
        """Render a full page DOM for *records*."""
        rng = make_rng(self.seed)
        record_nodes = [self._record_node(record, rng) for record in records]
        listing = self._container(record_nodes, rng)

        body: list[DomNode] = [element("h1", title, cls="masthead")]
        if self.noise >= 1:
            body.append(
                element(
                    "div",
                    element("a", "Home", href="/"),
                    element("a", "Weather", href="/weather"),
                    element("a", "Traffic", href="/traffic"),
                    cls="nav",
                )
            )
            body.append(self._ad_node(rng))
        if nav_links:
            pager = element(
                "div",
                *[element("a", label, href=href) for label, href in nav_links],
                cls="pager",
            )
            body.append(pager)
        body.append(listing)
        if self.noise >= 1:
            body.append(
                element(
                    "div",
                    "Copyright 2008 Channel 7 News. All rights reserved.",
                    cls="footer",
                )
            )
        return document(*body, title=title)


def render_detail_page(
    record: Mapping[str, Any], fields: Sequence[str], title_field: str
) -> DomNode:
    """A per-record detail page (``dl`` of field name/value pairs)."""
    items: list[DomNode] = []
    for name in fields:
        items.append(element("dt", name))
        items.append(element("dd", str(record[name])))
    return document(
        element("h1", str(record[title_field])),
        element("dl", *items, cls="detail"),
        title=str(record[title_field]),
    )
