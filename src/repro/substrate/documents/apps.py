"""Simulated source applications with copy monitoring (the "wrappers").

Section 2.3: "The initial CopyCat prototype supports monitoring of copy
operations from a variety of common applications: Web browsers ... and
Microsoft Office applications like Word and Excel." Here a :class:`Browser`
displays pages of a :class:`~repro.substrate.documents.website.Website` and a
:class:`SpreadsheetApp` displays a :class:`Workbook`; both push
:class:`CopyEvent` objects onto a shared monitored clipboard when the
(simulated) user selects and copies.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ...errors import ClipboardError, DocumentError, NavigationError
from .clipboard import Clipboard, CopyEvent, SourceContext
from .dom import DomNode
from .spreadsheet import CellRange, Sheet, Workbook
from .website import Page, Website


class Browser:
    """A simulated web browser over one or more websites."""

    APP_NAME = "browser"

    def __init__(self, clipboard: Clipboard, *sites: Website):
        self.clipboard = clipboard
        self._sites: list[Website] = list(sites)
        self.current_page: Page | None = None

    def add_site(self, site: Website) -> None:
        self._sites.append(site)

    def _site_for(self, url: str) -> Website:
        for site in self._sites:
            absolute = site.absolute(url)
            if (
                site.has_page(absolute)
                or site.has_form(absolute)
                or absolute.startswith(site.base_url)
            ):
                return site
        raise NavigationError(f"no registered site serves {url}")

    # -- navigation -----------------------------------------------------------
    def navigate(self, url: str) -> Page:
        site = self._site_for(url)
        self.current_page = site.fetch(url)
        return self.current_page

    def submit_form(self, action: str, values: Mapping[str, str]) -> Page:
        site = self._site_for(action)
        self.current_page = site.submit_form(action, values)
        return self.current_page

    @property
    def page(self) -> Page:
        if self.current_page is None:
            raise NavigationError("browser has no page loaded")
        return self.current_page

    def site_of_current_page(self) -> Website:
        return self._site_for(self.page.url)

    # -- selection & copy ----------------------------------------------------------
    def copy_nodes(self, nodes: Iterable[DomNode], source_name: str) -> CopyEvent:
        """Copy the text of one or more DOM nodes (tab-joined per node)."""
        nodes = list(nodes)
        if not nodes:
            raise ClipboardError("empty selection")
        text = "\t".join(node.text_content() for node in nodes)
        return self._emit(text, source_name, locator=[node.path() for node in nodes])

    def copy_record(self, node: DomNode, source_name: str) -> CopyEvent:
        """Copy a record node: its text leaves become tab-separated fields.

        This models selecting a whole table row / list item: real browsers
        put cell boundaries on the clipboard as tabs.
        """
        leaves = node.text_leaves()
        if not leaves:
            raise ClipboardError("selection contains no text")
        text = "\t".join(leaf.text.strip() for leaf in leaves)
        return self._emit(text, source_name, locator=node.path())

    def copy_text(self, text: str, source_name: str) -> CopyEvent:
        """Copy raw text visible on the current page."""
        if text not in self.page.dom.text_content():
            raise ClipboardError(f"text {text!r} is not on the current page")
        return self._emit(text, source_name, locator=None)

    def _emit(self, text: str, source_name: str, locator: Any) -> CopyEvent:
        page = self.page
        context = SourceContext(
            app=self.APP_NAME,
            source_name=source_name,
            document=page,
            locator=locator,
            url=page.url,
            container=self._site_for(page.url),
        )
        return self.clipboard.put(CopyEvent(text=text, context=context))


class SpreadsheetApp:
    """A simulated spreadsheet application over a workbook."""

    APP_NAME = "spreadsheet"

    def __init__(self, clipboard: Clipboard, workbook: Workbook):
        self.clipboard = clipboard
        self.workbook = workbook
        self._active: Sheet | None = None

    def open_sheet(self, name: str | None = None) -> Sheet:
        self._active = (
            self.workbook.sheet(name) if name is not None else self.workbook.first_sheet
        )
        return self._active

    @property
    def sheet(self) -> Sheet:
        if self._active is None:
            raise DocumentError("no sheet is open")
        return self._active

    def copy_range(self, rng: CellRange, source_name: str | None = None) -> CopyEvent:
        sheet = self.sheet
        text = sheet.region_text(rng)
        context = SourceContext(
            app=self.APP_NAME,
            source_name=source_name or f"{self.workbook.name}:{sheet.name}",
            document=sheet,
            locator=rng,
            url=None,
            container=self.workbook,
        )
        return self.clipboard.put(CopyEvent(text=text, context=context))

    def copy_row(self, row: int, source_name: str | None = None) -> CopyEvent:
        sheet = self.sheet
        rng = CellRange(row, 0, row, sheet.n_cols - 1)
        return self.copy_range(rng, source_name)

    def copy_cells(self, refs: Iterable[tuple[int, int]], source_name: str | None = None) -> CopyEvent:
        """Copy a discontiguous set of cells as one tab-separated selection."""
        sheet = self.sheet
        refs = list(refs)
        if not refs:
            raise ClipboardError("empty selection")
        text = "\t".join(str(sheet.cell(r, c)) for r, c in refs)
        context = SourceContext(
            app=self.APP_NAME,
            source_name=source_name or f"{self.workbook.name}:{sheet.name}",
            document=sheet,
            locator=tuple(refs),
            url=None,
            container=self.workbook,
        )
        return self.clipboard.put(CopyEvent(text=text, context=context))
