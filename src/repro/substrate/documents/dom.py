"""A minimal DOM tree for simulated web pages.

The structure learner (Section 3.1) "analyzes the structure of a website to
identify its relational structure"; its experts need a real tag tree to walk:
repeated sibling templates, tables, lists, attribute values, and text nodes.
This module provides that tree plus serialization, paths, and simple queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ...errors import DocumentError

TEXT_TAG = "#text"

_VOID_TAGS = frozenset({"br", "hr", "img", "meta", "link", "input"})


@dataclass
class DomNode:
    """An element or text node.

    Text nodes use ``tag == "#text"`` and carry their content in ``text``;
    element nodes carry ``attrs`` and ``children``.
    """

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["DomNode"] = field(default_factory=list)
    text: str = ""
    parent: "DomNode | None" = field(default=None, repr=False, compare=False)

    # -- construction ---------------------------------------------------------
    @staticmethod
    def element(tag: str, attrs: dict[str, str] | None = None, *children: "DomNode | str") -> "DomNode":
        node = DomNode(tag=tag, attrs=dict(attrs or {}))
        for child in children:
            node.append(child)
        return node

    @staticmethod
    def text_node(content: str) -> "DomNode":
        return DomNode(tag=TEXT_TAG, text=content)

    def append(self, child: "DomNode | str") -> "DomNode":
        """Append a child (strings become text nodes); returns the child."""
        if isinstance(child, str):
            child = DomNode.text_node(child)
        if child.tag == TEXT_TAG and self.tag in _VOID_TAGS:
            raise DocumentError(f"cannot add text under void tag <{self.tag}>")
        child.parent = self
        self.children.append(child)
        return child

    # -- predicates -----------------------------------------------------------
    @property
    def is_text(self) -> bool:
        return self.tag == TEXT_TAG

    @property
    def is_element(self) -> bool:
        return not self.is_text

    # -- traversal -------------------------------------------------------------
    def iter(self) -> Iterator["DomNode"]:
        """Pre-order traversal including self."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find_all(self, tag: str, cls: str | None = None) -> list["DomNode"]:
        """All descendant elements with the given tag (and optional class)."""
        out = []
        for node in self.iter():
            if node.tag == tag and (cls is None or cls in node.css_classes):
                out.append(node)
        return out

    def find(self, tag: str, cls: str | None = None) -> "DomNode":
        matches = self.find_all(tag, cls)
        if not matches:
            raise DocumentError(f"no <{tag}> node found" + (f" with class {cls!r}" if cls else ""))
        return matches[0]

    def find_where(self, predicate: Callable[["DomNode"], bool]) -> list["DomNode"]:
        return [node for node in self.iter() if predicate(node)]

    @property
    def css_classes(self) -> tuple[str, ...]:
        return tuple(self.attrs.get("class", "").split())

    # -- text extraction ---------------------------------------------------------
    def text_content(self) -> str:
        """Concatenated descendant text, whitespace-normalized."""
        parts = [node.text for node in self.iter() if node.is_text and node.text.strip()]
        return " ".join(part.strip() for part in parts)

    def own_text(self) -> str:
        """Text from direct text-node children only."""
        parts = [child.text.strip() for child in self.children if child.is_text and child.text.strip()]
        return " ".join(parts)

    def text_leaves(self) -> list["DomNode"]:
        """All non-empty text nodes in document order."""
        return [node for node in self.iter() if node.is_text and node.text.strip()]

    # -- structure descriptors ------------------------------------------------
    def path(self) -> tuple[tuple[str, int], ...]:
        """Root-to-node path of (tag, sibling-index-among-same-tag) pairs."""
        steps: list[tuple[str, int]] = []
        node: DomNode | None = self
        while node is not None and node.parent is not None:
            same_tag = [child for child in node.parent.children if child.tag == node.tag]
            steps.append((node.tag, same_tag.index(node)))
            node = node.parent
        if node is not None:
            steps.append((node.tag, 0))
        return tuple(reversed(steps))

    def tag_path(self) -> tuple[str, ...]:
        """Root-to-node tag sequence without indices (a generalized path)."""
        return tuple(tag for tag, _ in self.path())

    def signature(self, depth: int = 3) -> str:
        """A shape fingerprint of the subtree, used for template detection.

        Two sibling records generated by the same page template produce the
        same signature even if their text differs.
        """
        if self.is_text:
            return "t"
        if depth <= 0:
            return self.tag
        inner = ",".join(child.signature(depth - 1) for child in self.children)
        cls = ".".join(self.css_classes)
        label = f"{self.tag}[{cls}]" if cls else self.tag
        return f"{label}({inner})"

    def resolve(self, path: tuple[tuple[str, int], ...]) -> "DomNode":
        """Follow a :meth:`path` from this (root) node."""
        if not path:
            raise DocumentError("empty path")
        root_tag, _ = path[0]
        if root_tag != self.tag:
            raise DocumentError(f"path root <{root_tag}> does not match <{self.tag}>")
        node = self
        for tag, index in path[1:]:
            same_tag = [child for child in node.children if child.tag == tag]
            if index >= len(same_tag):
                raise DocumentError(f"path step ({tag},{index}) not found under <{node.tag}>")
            node = same_tag[index]
        return node

    # -- serialization -------------------------------------------------------------
    def to_html(self, indent: int = 0, pretty: bool = False) -> str:
        if self.is_text:
            return (" " * indent if pretty else "") + self.text
        attrs = "".join(f' {key}="{value}"' for key, value in self.attrs.items())
        if self.tag in _VOID_TAGS:
            return (" " * indent if pretty else "") + f"<{self.tag}{attrs}/>"
        open_tag = f"<{self.tag}{attrs}>"
        close_tag = f"</{self.tag}>"
        if not pretty:
            inner = "".join(child.to_html() for child in self.children)
            return f"{open_tag}{inner}{close_tag}"
        pad = " " * indent
        if all(child.is_text for child in self.children):
            inner = "".join(child.text for child in self.children)
            return f"{pad}{open_tag}{inner}{close_tag}"
        lines = [pad + open_tag]
        for child in self.children:
            lines.append(child.to_html(indent + 2, pretty=True))
        lines.append(pad + close_tag)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_html()


def element(tag: str, *children: DomNode | str, **attrs: str) -> DomNode:
    """Terse builder: ``element("li", element("b", name), street, cls="row")``.

    The keyword ``cls`` maps to the HTML ``class`` attribute.
    """
    mapped = {("class" if key == "cls" else key): value for key, value in attrs.items()}
    return DomNode.element(tag, mapped, *children)


def document(*body_children: DomNode | str, title: str = "") -> DomNode:
    """An ``html`` root with ``head/title`` and a ``body``."""
    head = element("head", element("title", title))
    body = element("body", *body_children)
    return element("html", head, body)
