"""Simulated documents: DOM pages, spreadsheets, websites, clipboard, apps."""

from .apps import Browser, SpreadsheetApp
from .clipboard import Clipboard, CopyEvent, PasteEvent, SourceContext
from .dom import DomNode, document, element
from .render import ListingTemplate, render_detail_page
from .spreadsheet import CellRange, CellRef, Sheet, Workbook
from .textdoc import TextDocument, WordApp
from .website import Form, Page, Website, paged_url

__all__ = [
    "Browser", "CellRange", "CellRef", "Clipboard", "CopyEvent", "DomNode",
    "Form", "ListingTemplate", "Page", "PasteEvent", "Sheet", "SourceContext",
    "SpreadsheetApp", "TextDocument", "Website", "Workbook", "WordApp", "document", "element",
    "paged_url", "render_detail_page",
]
