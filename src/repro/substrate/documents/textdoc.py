"""Plain-text documents and the Word-like application wrapper.

Section 2.3: CopyCat monitors copies from "Microsoft Office applications
like Word and Excel". A :class:`TextDocument` models the Word case: a
report whose body is plain text with *repeating labeled blocks* — the
situation-report format emergency agencies actually circulate::

    SHELTER STATUS REPORT
    =====================

    Name: Monarch High School
    Street: 1445 Monarch Blvd
    City: Coconut Creek
    Capacity: 240

    Name: Tedder Community Center
    ...

The structure learner extracts records from such documents with a
label-block expert (same committee pattern as the web experts) plus the
landmark fallback over the raw text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ...errors import ClipboardError, DocumentError
from .clipboard import Clipboard, CopyEvent, SourceContext

_LABEL_LINE = re.compile(r"^\s*(?P<label>[A-Za-z][\w \-/]{0,40}?)\s*:\s*(?P<value>\S.*)$")


@dataclass
class TextDocument:
    """A named plain-text document."""

    name: str
    text: str

    def lines(self) -> list[str]:
        return self.text.split("\n")

    def paragraphs(self) -> list[str]:
        """Blank-line-separated blocks, stripped."""
        blocks = re.split(r"\n\s*\n", self.text)
        return [block.strip() for block in blocks if block.strip()]

    def labeled_blocks(self) -> list[dict[str, str]]:
        """Paragraphs made of ``Label: value`` lines, as dicts.

        Non-conforming paragraphs (headings, prose) are skipped; within a
        conforming paragraph every line must parse.
        """
        records: list[dict[str, str]] = []
        for paragraph in self.paragraphs():
            fields: dict[str, str] = {}
            conforming = True
            for line in paragraph.split("\n"):
                if not line.strip():
                    continue
                match = _LABEL_LINE.match(line)
                if match is None:
                    conforming = False
                    break
                fields[match.group("label").strip()] = match.group("value").strip()
            if conforming and len(fields) >= 2:
                records.append(fields)
        return records

    def contains(self, needle: str) -> bool:
        return needle in self.text

    def __repr__(self) -> str:
        return f"TextDocument({self.name!r}, {len(self.text)} chars)"


class WordApp:
    """A simulated word processor over text documents."""

    APP_NAME = "word"

    def __init__(self, clipboard: Clipboard, *documents: TextDocument):
        self.clipboard = clipboard
        self._documents = {doc.name: doc for doc in documents}
        self._active: TextDocument | None = None

    def open(self, name: str) -> TextDocument:
        try:
            self._active = self._documents[name]
        except KeyError:
            raise DocumentError(f"no document named {name!r}") from None
        return self._active

    def add_document(self, document: TextDocument) -> TextDocument:
        self._documents[document.name] = document
        return document

    @property
    def document(self) -> TextDocument:
        if self._active is None:
            raise DocumentError("no document is open")
        return self._active

    def copy_text(self, text: str, source_name: str | None = None) -> CopyEvent:
        """Copy a selection (must occur in the open document)."""
        doc = self.document
        if text not in doc.text:
            raise ClipboardError(f"selection {text!r} is not in the document")
        context = SourceContext(
            app=self.APP_NAME,
            source_name=source_name or doc.name,
            document=doc,
            locator=doc.text.find(text),
            url=None,
        )
        return self.clipboard.put(CopyEvent(text=text, context=context))

    def copy_fields(self, values: list[str], source_name: str | None = None) -> CopyEvent:
        """Copy several snippets as one tab-separated selection (a record)."""
        doc = self.document
        for value in values:
            if value not in doc.text:
                raise ClipboardError(f"selection {value!r} is not in the document")
        context = SourceContext(
            app=self.APP_NAME,
            source_name=source_name or doc.name,
            document=doc,
            locator=tuple(doc.text.find(value) for value in values),
            url=None,
        )
        return self.clipboard.put(CopyEvent(text="\t".join(values), context=context))
