"""Clipboard events and the monitored clipboard bus.

Figure 3: "Copy and paste operations — between source applications and the
SCP workspace — are detected by application wrappers. Monitored operations,
as well as context information like the document being displayed in the
source application, are fed into three learner modules."

A :class:`CopyEvent` therefore carries not just the copied text but a
*source context* — a handle to the live document (page DOM, sheet) and where
the app believes the selection came from. Crucially, downstream learners are
allowed to ignore the precise selection location: "We do not need to know
exactly where the data was cut-and-pasted from" (Section 3.1); only the
document handle is contractual.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ...errors import ClipboardError

_EVENT_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class SourceContext:
    """Where a copy came from: application, document handle, and location.

    ``document`` is the live document object (a :class:`Page`, a
    :class:`Sheet`, a :class:`Website` wrapper — whatever the app displays);
    ``locator`` is an app-specific selection descriptor (DOM paths, cell
    range) that learners may consult but must not require.
    """

    app: str
    source_name: str
    document: Any
    locator: Any = None
    url: str | None = None
    container: Any = None  # the enclosing Website / Workbook, when known


@dataclass(frozen=True)
class CopyEvent:
    """A monitored copy: selected text plus its source context.

    ``fields`` is the selection parsed the way clipboards really behave:
    tab-separated cells within a row, newline-separated rows.
    """

    text: str
    context: SourceContext
    event_id: int = field(default_factory=lambda: next(_EVENT_COUNTER))

    @property
    def fields(self) -> list[list[str]]:
        rows = [line for line in self.text.split("\n") if line.strip()]
        return [[cell.strip() for cell in row.split("\t")] for row in rows]

    @property
    def is_tabular(self) -> bool:
        parsed = self.fields
        return len(parsed) > 0 and (len(parsed) > 1 or len(parsed[0]) > 1)


@dataclass(frozen=True)
class PasteEvent:
    """A paste into the SCP workspace: which copy, and where it landed."""

    copy: CopyEvent
    tab: str
    row: int
    col: int


class Clipboard:
    """The monitored clipboard: holds the latest copy, notifies listeners.

    Wrappers call :meth:`put` on every monitored copy; the SCP session calls
    :meth:`current` when the user pastes. Listeners (the learners' front
    door) receive every event in order.
    """

    def __init__(self) -> None:
        self._current: CopyEvent | None = None
        self._history: list[CopyEvent] = []
        self._listeners: list[Callable[[CopyEvent], None]] = []

    def put(self, event: CopyEvent) -> CopyEvent:
        self._current = event
        self._history.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def current(self) -> CopyEvent:
        if self._current is None:
            raise ClipboardError("clipboard is empty: nothing has been copied")
        return self._current

    @property
    def is_empty(self) -> bool:
        return self._current is None

    def history(self) -> list[CopyEvent]:
        return list(self._history)

    def subscribe(self, listener: Callable[[CopyEvent], None]) -> None:
        self._listeners.append(listener)
