"""Simulated multi-page web sites.

Section 3.1: "CopyCat can extract data from a web site where there are
multiple pages (e.g., pages accessible via a form), each of which may have
complex lists of data". A :class:`Website` maps URLs to :class:`Page`
objects, supports paged list families (``?page=k``), per-record detail pages,
and form endpoints that resolve submitted values to result pages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping
from urllib.parse import parse_qsl, urlencode, urlparse

from ...errors import NavigationError
from .dom import DomNode


@dataclass
class Page:
    """One addressable page: a URL, a title, and a DOM tree."""

    url: str
    dom: DomNode
    title: str = ""

    def html(self) -> str:
        return self.dom.to_html()

    def links(self) -> list[str]:
        """All hrefs on the page, in document order."""
        return [
            node.attrs["href"]
            for node in self.dom.find_all("a")
            if "href" in node.attrs
        ]


@dataclass
class Form:
    """A form endpoint: submitted fields map to a result URL."""

    action: str
    fields: tuple[str, ...]
    resolver: Callable[[Mapping[str, str]], str]

    def submit(self, values: Mapping[str, str]) -> str:
        missing = [f for f in self.fields if f not in values]
        if missing:
            raise NavigationError(f"form {self.action!r} missing fields: {missing}")
        return self.resolver(values)


class Website:
    """A URL-addressed collection of pages plus form endpoints."""

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")
        self._pages: dict[str, Page] = {}
        self._forms: dict[str, Form] = {}

    # -- building -----------------------------------------------------------
    def add_page(self, path: str, dom: DomNode, title: str = "") -> Page:
        url = self.absolute(path)
        if url in self._pages:
            raise NavigationError(f"page already exists: {url}")
        if not title:
            # Default to the document's own <title>, as a browser would.
            title_nodes = dom.find_all("title")
            if title_nodes:
                title = title_nodes[0].text_content()
        page = Page(url=url, dom=dom, title=title)
        self._pages[url] = page
        return page

    def replace_page(self, path: str, dom: DomNode, title: str = "") -> Page:
        """Swap an existing page's content in place (the site "changed").

        The URL keeps addressing the page; anything holding the old
        :class:`Page` object must re-:meth:`fetch` to see the new content —
        exactly the staleness the drift layer exists to catch.
        """
        url = self.absolute(path)
        if url not in self._pages:
            raise NavigationError(f"cannot replace missing page: {url}")
        del self._pages[url]
        return self.add_page(path, dom, title)

    def add_form(self, action: str, fields: Iterable[str], resolver: Callable[[Mapping[str, str]], str]) -> Form:
        url = self.absolute(action)
        form = Form(action=url, fields=tuple(fields), resolver=resolver)
        self._forms[url] = form
        return form

    # -- navigation -----------------------------------------------------------
    def absolute(self, path_or_url: str) -> str:
        if path_or_url.startswith(("http://", "https://")):
            return path_or_url
        return f"{self.base_url}/{path_or_url.lstrip('/')}"

    def fetch(self, path_or_url: str) -> Page:
        url = self.absolute(path_or_url)
        try:
            return self._pages[url]
        except KeyError:
            raise NavigationError(f"404: {url}") from None

    def has_page(self, path_or_url: str) -> bool:
        return self.absolute(path_or_url) in self._pages

    def has_form(self, action: str) -> bool:
        return self.absolute(action) in self._forms

    def form(self, action: str) -> Form:
        url = self.absolute(action)
        try:
            return self._forms[url]
        except KeyError:
            raise NavigationError(f"no form at {url}") from None

    def submit_form(self, action: str, values: Mapping[str, str]) -> Page:
        return self.fetch(self.form(action).submit(values))

    def urls(self) -> list[str]:
        return sorted(self._pages)

    # -- URL families --------------------------------------------------------
    def url_family(self, url: str) -> list[str]:
        """All site URLs that differ from *url* only in one query parameter
        or one numeric path segment.

        This is what the URL-pattern expert generalizes over: given
        ``shelters?page=1``, the family is every ``shelters?page=k`` page.
        """
        url = self.absolute(url)
        family = {url}
        parsed = urlparse(url)
        params = dict(parse_qsl(parsed.query))
        for candidate in self._pages:
            if candidate == url:
                continue
            other = urlparse(candidate)
            if other.path == parsed.path and other.netloc == parsed.netloc:
                other_params = dict(parse_qsl(other.query))
                if set(other_params) == set(params):
                    diffs = [k for k in params if params[k] != other_params[k]]
                    if len(diffs) == 1:
                        family.add(candidate)
                continue
            # Numeric path-segment families: /detail/3 vs /detail/7
            if other.netloc == parsed.netloc and not parsed.query and not other.query:
                seg_a = parsed.path.split("/")
                seg_b = other.path.split("/")
                if len(seg_a) == len(seg_b):
                    diffs = [
                        i
                        for i in range(len(seg_a))
                        if seg_a[i] != seg_b[i]
                    ]
                    if (
                        len(diffs) == 1
                        and re.fullmatch(r"\d+", seg_a[diffs[0]] or "")
                        and re.fullmatch(r"\d+", seg_b[diffs[0]] or "")
                    ):
                        family.add(candidate)
        return sorted(family, key=_family_sort_key)

    def __repr__(self) -> str:
        return f"Website({self.base_url!r}, {len(self._pages)} pages)"


def _family_sort_key(url: str) -> tuple:
    """Sort URL families numerically where possible (page=2 before page=10)."""
    parsed = urlparse(url)
    params = sorted(parse_qsl(parsed.query))
    numeric = tuple(
        int(value) if re.fullmatch(r"\d+", value) else value for _, value in params
    )
    path_parts = tuple(
        int(part) if re.fullmatch(r"\d+", part) else part
        for part in parsed.path.split("/")
    )
    return (parsed.netloc, path_parts, numeric)


def paged_url(path: str, page: int) -> str:
    """Canonical paged URL: ``path?page=k``."""
    return f"{path}?{urlencode({'page': page})}"
