"""Substrates: relational engine, simulated documents, simulated services."""
