"""Selection predicates over rows.

Predicates are small structured objects (not bare lambdas) so that query
plans remain introspectable — the explanation machinery renders them, and
tests can assert on their structure.

Each predicate additionally *compiles* against a schema into a columnar
mask function (:func:`compile_predicate`): attribute positions are resolved
once, and evaluation runs a list comprehension over whole column arrays
instead of per-row ``matches`` dispatch. Compiled masks replicate the
row-at-a-time semantics exactly — ``None`` operands compare false, and an
incomparable pair (``TypeError``) is false rather than an error — so the
columnar evaluator is bit-for-bit interchangeable with the row path.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from ...errors import EvaluationError
from .rows import Row
from .schema import Schema

#: A compiled predicate: column arrays -> boolean mask (one flag per row).
MaskFn = Callable[[list[list[Any]], int], list[bool]]

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def __call__(self, row: Row) -> bool:
        return self.matches(row)

    # Combinators -------------------------------------------------------------
    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """``attribute <op> constant`` comparison."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        actual = row[self.attribute]
        if actual is None:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


def eq(attribute: str, value: Any) -> Compare:
    return Compare(attribute, "==", value)


@dataclass(frozen=True)
class AttrCompare(Predicate):
    """``left_attribute <op> right_attribute`` comparison within one row."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        a, b = row[self.left], row[self.right]
        if a is None or b is None:
            return False
        try:
            return _OPS[self.op](a, b)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull(Predicate):
    attribute: str

    def matches(self, row: Row) -> bool:
        return row[self.attribute] is None

    def __str__(self) -> str:
        return f"{self.attribute} IS NULL"


@dataclass(frozen=True)
class NotNull(Predicate):
    attribute: str

    def matches(self, row: Row) -> bool:
        return row[self.attribute] is not None

    def __str__(self) -> str:
        return f"{self.attribute} IS NOT NULL"


@dataclass(frozen=True)
class Contains(Predicate):
    """Case-insensitive substring containment on a text attribute."""

    attribute: str
    needle: str

    def matches(self, row: Row) -> bool:
        value = row[self.attribute]
        if value is None:
            return False
        return self.needle.lower() in str(value).lower()

    def __str__(self) -> str:
        return f"{self.attribute} CONTAINS {self.needle!r}"


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return any(part.matches(row) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def matches(self, row: Row) -> bool:
        return not self.inner.matches(row)

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


TRUE = And(())  # vacuous conjunction


# -- columnar compilation -----------------------------------------------------
#
# Exact-type dispatch (a subclass may override ``matches`` arbitrarily, so
# only the known leaf types compile; anything else sends the whole plan
# down the row-at-a-time path).


def _safe_op_mask(column: list[Any], op: Callable[[Any, Any], bool], const: Any) -> list[bool]:
    """``[op(v, const)]`` with row-path semantics: None/TypeError -> False.

    Tries one C-speed comprehension first; a TypeError anywhere falls back
    to a per-element loop so partially-comparable columns still evaluate.
    """
    try:
        return [v is not None and bool(op(v, const)) for v in column]
    except TypeError:
        out: list[bool] = []
        for v in column:
            if v is None:
                out.append(False)
                continue
            try:
                out.append(bool(op(v, const)))
            except TypeError:
                out.append(False)
        return out


def _compile_compare(predicate: Compare, schema: Schema) -> MaskFn:
    position = schema.position(predicate.attribute)
    op = _OPS[predicate.op]
    const = predicate.value

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        return _safe_op_mask(columns[position], op, const)

    return mask


def _compile_attr_compare(predicate: AttrCompare, schema: Schema) -> MaskFn:
    left = schema.position(predicate.left)
    right = schema.position(predicate.right)
    op = _OPS[predicate.op]

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        a_col, b_col = columns[left], columns[right]
        try:
            return [
                a is not None and b is not None and bool(op(a, b))
                for a, b in zip(a_col, b_col)
            ]
        except TypeError:
            out: list[bool] = []
            for a, b in zip(a_col, b_col):
                if a is None or b is None:
                    out.append(False)
                    continue
                try:
                    out.append(bool(op(a, b)))
                except TypeError:
                    out.append(False)
            return out

    return mask


def _compile_is_null(predicate: IsNull, schema: Schema) -> MaskFn:
    position = schema.position(predicate.attribute)

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        return [v is None for v in columns[position]]

    return mask


def _compile_not_null(predicate: NotNull, schema: Schema) -> MaskFn:
    position = schema.position(predicate.attribute)

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        return [v is not None for v in columns[position]]

    return mask


def _compile_contains(predicate: Contains, schema: Schema) -> MaskFn:
    position = schema.position(predicate.attribute)
    needle = predicate.needle.lower()

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        return [
            v is not None and needle in str(v).lower() for v in columns[position]
        ]

    return mask


def _compile_and(predicate: And, schema: Schema) -> MaskFn:
    parts = [_compile(part, schema) for part in predicate.parts]

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        if not parts:
            return [True] * n_rows
        acc = parts[0](columns, n_rows)
        for part in parts[1:]:
            acc = [a and b for a, b in zip(acc, part(columns, n_rows))]
        return acc

    return mask


def _compile_or(predicate: Or, schema: Schema) -> MaskFn:
    parts = [_compile(part, schema) for part in predicate.parts]

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        if not parts:
            return [False] * n_rows
        acc = parts[0](columns, n_rows)
        for part in parts[1:]:
            acc = [a or b for a, b in zip(acc, part(columns, n_rows))]
        return acc

    return mask


def _compile_not(predicate: Not, schema: Schema) -> MaskFn:
    inner = _compile(predicate.inner, schema)

    def mask(columns: list[list[Any]], n_rows: int) -> list[bool]:
        return [not flag for flag in inner(columns, n_rows)]

    return mask


_COMPILERS: dict[type, Callable[[Any, Schema], MaskFn]] = {
    Compare: _compile_compare,
    AttrCompare: _compile_attr_compare,
    IsNull: _compile_is_null,
    NotNull: _compile_not_null,
    Contains: _compile_contains,
    And: _compile_and,
    Or: _compile_or,
    Not: _compile_not,
}


class _Uncompilable(Exception):
    """Internal: the predicate tree contains an unknown (sub)type."""


def is_compilable(predicate: Predicate) -> bool:
    """True when every node of the tree is a known, exact predicate type."""
    compiler = _COMPILERS.get(type(predicate))
    if compiler is None:
        return False
    if type(predicate) in (And, Or):
        return all(is_compilable(part) for part in predicate.parts)
    if type(predicate) is Not:
        return is_compilable(predicate.inner)
    return True


def _compile(predicate: Predicate, schema: Schema) -> MaskFn:
    compiler = _COMPILERS.get(type(predicate))
    if compiler is None:
        raise _Uncompilable(type(predicate).__name__)
    return compiler(predicate, schema)


def compile_predicate(predicate: Predicate, schema: Schema) -> MaskFn | None:
    """Compile *predicate* against *schema* into a columnar mask function.

    Returns ``None`` when the tree is not compilable — an unknown predicate
    subclass (its overridden ``matches`` cannot be vectorized), or an
    attribute the schema lacks (the row path surfaces that error lazily,
    only when a row is actually evaluated, so the caller must fall back
    rather than raise eagerly). Callers send such plans down the
    row-at-a-time path.
    """
    from ...errors import UnknownAttributeError

    try:
        return _compile(predicate, schema)
    except (_Uncompilable, UnknownAttributeError):
        return None
