"""Selection predicates over rows.

Predicates are small structured objects (not bare lambdas) so that query
plans remain introspectable — the explanation machinery renders them, and
tests can assert on their structure.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from ...errors import EvaluationError
from .rows import Row

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def __call__(self, row: Row) -> bool:
        return self.matches(row)

    # Combinators -------------------------------------------------------------
    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Compare(Predicate):
    """``attribute <op> constant`` comparison."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        actual = row[self.attribute]
        if actual is None:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


def eq(attribute: str, value: Any) -> Compare:
    return Compare(attribute, "==", value)


@dataclass(frozen=True)
class AttrCompare(Predicate):
    """``left_attribute <op> right_attribute`` comparison within one row."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: Row) -> bool:
        a, b = row[self.left], row[self.right]
        if a is None or b is None:
            return False
        try:
            return _OPS[self.op](a, b)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNull(Predicate):
    attribute: str

    def matches(self, row: Row) -> bool:
        return row[self.attribute] is None

    def __str__(self) -> str:
        return f"{self.attribute} IS NULL"


@dataclass(frozen=True)
class NotNull(Predicate):
    attribute: str

    def matches(self, row: Row) -> bool:
        return row[self.attribute] is not None

    def __str__(self) -> str:
        return f"{self.attribute} IS NOT NULL"


@dataclass(frozen=True)
class Contains(Predicate):
    """Case-insensitive substring containment on a text attribute."""

    attribute: str
    needle: str

    def matches(self, row: Row) -> bool:
        value = row[self.attribute]
        if value is None:
            return False
        return self.needle.lower() in str(value).lower()

    def __str__(self) -> str:
        return f"{self.attribute} CONTAINS {self.needle!r}"


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return all(part.matches(row) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def matches(self, row: Row) -> bool:
        return any(part.matches(row) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    inner: Predicate

    def matches(self, row: Row) -> bool:
        return not self.inner.matches(row)

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


TRUE = And(())  # vacuous conjunction
