"""Schemas, attributes, semantic types, and binding patterns.

The paper models sources and services alike as relations; services carry
*input binding restrictions* (Section 4: "Services can be modeled as
relations that take input parameters"). Attributes carry an optional
*semantic type* (Section 3.2), which the integration learner uses to
constrain which association edges are plausible (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ...errors import BindingError, SchemaError, UnknownAttributeError


@dataclass(frozen=True)
class SemanticType:
    """A named semantic type such as ``PR-Street`` or ``PR-City``.

    The paper shows types prefixed ``PR-`` (pattern-recognized) in the
    workspace column headers of Figure 1. ``parent`` allows a shallow type
    hierarchy (e.g. ``PR-ZipCode`` < ``PR-Number``) used when matching
    association edges.
    """

    name: str
    parent: str | None = None

    def __str__(self) -> str:
        return self.name

    def is_a(self, other: "SemanticType | str") -> bool:
        """True if this type equals *other* or descends from it."""
        other_name = other.name if isinstance(other, SemanticType) else other
        return self.name == other_name or self.parent == other_name


# Built-in semantic types, mirroring those visible in the paper's figures and
# running example (street, city, zip, geocode, phone, person, currency).
ANY = SemanticType("PR-Any")
TEXT = SemanticType("PR-Text", parent="PR-Any")
NUMBER = SemanticType("PR-Number", parent="PR-Any")
NAME = SemanticType("PR-Name", parent="PR-Text")
PLACE = SemanticType("PR-Place", parent="PR-Text")
STREET = SemanticType("PR-Street", parent="PR-Text")
CITY = SemanticType("PR-City", parent="PR-Text")
STATE = SemanticType("PR-State", parent="PR-Text")
ZIPCODE = SemanticType("PR-ZipCode", parent="PR-Number")
PHONE = SemanticType("PR-Phone", parent="PR-Text")
LATITUDE = SemanticType("PR-Latitude", parent="PR-Number")
LONGITUDE = SemanticType("PR-Longitude", parent="PR-Number")
CURRENCY = SemanticType("PR-Currency", parent="PR-Number")
DATE = SemanticType("PR-Date", parent="PR-Text")
URL = SemanticType("PR-Url", parent="PR-Text")

BUILTIN_TYPES: tuple[SemanticType, ...] = (
    ANY,
    TEXT,
    NUMBER,
    NAME,
    PLACE,
    STREET,
    CITY,
    STATE,
    ZIPCODE,
    PHONE,
    LATITUDE,
    LONGITUDE,
    CURRENCY,
    DATE,
    URL,
)


def builtin_type(name: str) -> SemanticType:
    """Look up a built-in semantic type by name."""
    for stype in BUILTIN_TYPES:
        if stype.name == name:
            return stype
    raise SchemaError(f"no built-in semantic type named {name!r}")


@dataclass(frozen=True)
class Attribute:
    """A named, semantically typed column."""

    name: str
    semantic_type: SemanticType = ANY

    def __str__(self) -> str:
        return f"{self.name}:{self.semantic_type}"

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.semantic_type)

    def retyped(self, semantic_type: SemanticType) -> "Attribute":
        return Attribute(self.name, semantic_type)


class Schema:
    """An ordered collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute | str]):
        attrs: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = Attribute(attribute)
            attrs.append(attribute)
        names = [attribute.name for attribute in attrs]
        if len(set(names)) != len(names):
            duplicates = sorted({name for name in names if names.count(name) > 1})
            raise SchemaError(f"duplicate attribute names: {duplicates}")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._index: dict[str, int] = {attr.name: i for i, attr in enumerate(attrs)}

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(str(attr) for attr in self._attributes)
        return f"Schema({inner})"

    # -- accessors ----------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self._attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name, self.names) from None

    def semantic_type(self, name: str) -> SemanticType:
        return self.attribute(name).semantic_type

    # -- derivations ---------------------------------------------------------
    def project(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to *names*, in the given order."""
        return Schema([self.attribute(name) for name in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Schema with attributes renamed according to *mapping*."""
        return Schema(
            [
                attr.renamed(mapping.get(attr.name, attr.name))
                for attr in self._attributes
            ]
        )

    def retype(self, mapping: dict[str, SemanticType]) -> "Schema":
        """Schema with semantic types replaced according to *mapping*."""
        for name in mapping:
            if name not in self._index:
                raise UnknownAttributeError(name, self.names)
        return Schema(
            [
                attr.retyped(mapping.get(attr.name, attr.semantic_type))
                for attr in self._attributes
            ]
        )

    def concat(self, other: "Schema", disambiguate: bool = False) -> "Schema":
        """Concatenate two schemas.

        With *disambiguate*, clashing names from *other* get a numeric
        suffix; otherwise a clash raises :class:`SchemaError`.
        """
        attrs = list(self._attributes)
        taken = set(self.names)
        for attr in other:
            name = attr.name
            if name in taken:
                if not disambiguate:
                    raise SchemaError(f"attribute {name!r} present in both schemas")
                suffix = 2
                while f"{name}_{suffix}" in taken:
                    suffix += 1
                name = f"{name}_{suffix}"
            taken.add(name)
            attrs.append(attr.renamed(name))
        return Schema(attrs)

    def union_compatible_with(self, other: "Schema") -> bool:
        """True when both schemas have the same attribute names in order."""
        return self.names == other.names

    def merge_for_union(self, other: "Schema") -> "Schema":
        """Homogeneous schema covering both inputs (paper Section 4.2).

        The column-completion path "creates a union of these queries
        (extending the schema and padding with nulls as necessary to form a
        homogeneous schema)". Attributes of *self* come first; novel
        attributes of *other* are appended.
        """
        attrs = list(self._attributes)
        seen = set(self.names)
        for attr in other:
            if attr.name not in seen:
                attrs.append(attr)
                seen.add(attr.name)
        return Schema(attrs)


@dataclass(frozen=True)
class BindingPattern:
    """Which attributes must be bound (inputs) to access a source.

    ``inputs`` names attributes that must be supplied; everything else in the
    schema is free output. A plain data source has an empty pattern; a web
    form or service (e.g. the paper's zip-code resolver) requires inputs.
    """

    inputs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "inputs", tuple(self.inputs))

    @property
    def is_free(self) -> bool:
        return not self.inputs

    def validate(self, schema: Schema) -> None:
        """Ensure every input attribute exists in *schema*."""
        for name in self.inputs:
            if name not in schema:
                raise BindingError(
                    f"binding pattern references {name!r} not in schema {schema.names}"
                )

    def check_bound(self, bound: Iterable[str]) -> None:
        """Raise :class:`BindingError` unless every input is in *bound*."""
        missing = [name for name in self.inputs if name not in set(bound)]
        if missing:
            raise BindingError(f"unbound required inputs: {missing}")

    def __str__(self) -> str:
        if not self.inputs:
            return "free"
        return "requires(" + ", ".join(self.inputs) + ")"


def schema_of(*names: str, types: dict[str, SemanticType] | None = None) -> Schema:
    """Convenience constructor: ``schema_of("a", "b", types={"a": CITY})``."""
    types = types or {}
    return Schema([Attribute(name, types.get(name, ANY)) for name in names])
