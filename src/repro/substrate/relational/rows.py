"""Rows (tuples) and tuple identities.

A :class:`Row` is an immutable mapping from attribute name to value, bound to
a :class:`~repro.substrate.relational.schema.Schema`. Every base row carries a
:class:`TupleId` naming its source relation and position; derived rows are
produced by the evaluator together with provenance expressions referencing
these ids (see :mod:`repro.provenance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from ...errors import SchemaError, UnknownAttributeError
from .schema import Schema

#: Sentinel used for padded attributes in unions (paper Section 4.2 pads with
#: nulls to homogenize schemas). We use Python ``None`` but expose the name.
NULL = None


@dataclass(frozen=True, order=True)
class TupleId:
    """Identity of a base tuple: ``relation`` name plus row ``index``."""

    relation: str
    index: int

    def __str__(self) -> str:
        return f"{self.relation}#{self.index}"


class Row:
    """An immutable tuple of values conforming to a schema."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Iterable[Any] | Mapping[str, Any]):
        if isinstance(values, Mapping):
            missing = [name for name in schema.names if name not in values]
            if missing:
                raise SchemaError(f"row missing values for {missing}")
            ordered = tuple(values[name] for name in schema.names)
        else:
            ordered = tuple(values)
            if len(ordered) != len(schema):
                raise SchemaError(
                    f"row has {len(ordered)} values for {len(schema)}-attribute schema"
                )
        self._schema = schema
        self._values = ordered

    @classmethod
    def from_values(cls, schema: Schema, values: tuple[Any, ...]) -> "Row":
        """Trusted constructor: *values* must already be a schema-shaped tuple.

        Skips the coercion/arity validation of ``__init__`` — used by the
        columnar batch → Result materialization, where values come straight
        out of parallel column arrays and are correct by construction.
        """
        row = cls.__new__(cls)
        row._schema = schema
        row._values = values
        return row

    # -- protocol -----------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __getitem__(self, name: str) -> Any:
        return self._values[self._schema.position(name)]

    def get(self, name: str, default: Any = None) -> Any:
        if name not in self._schema:
            return default
        return self[name]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Row)
            and self._schema.names == other._schema.names
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema.names, self._values))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value!r}" for name, value in zip(self._schema.names, self._values)
        )
        return f"Row({parts})"

    # -- derivations ----------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._schema.names, self._values))

    def project(self, names: Iterable[str], schema: Schema | None = None) -> "Row":
        names = list(names)
        target = schema if schema is not None else self._schema.project(names)
        return Row(target, [self[name] for name in names])

    def concat(self, other: "Row", schema: Schema) -> "Row":
        """Concatenate values (caller supplies the combined schema)."""
        combined = self._values + other._values
        if len(combined) != len(schema):
            raise SchemaError(
                f"concat produced {len(combined)} values for {len(schema)}-attr schema"
            )
        return Row(schema, combined)

    def with_value(self, name: str, value: Any) -> "Row":
        if name not in self._schema:
            raise UnknownAttributeError(name, self._schema.names)
        position = self._schema.position(name)
        values = list(self._values)
        values[position] = value
        return Row(self._schema, values)

    def pad_to(self, schema: Schema) -> "Row":
        """Re-shape onto *schema*, padding unknown attributes with NULL."""
        return Row(schema, [self.get(name, NULL) for name in schema.names])

    def restricted_equal(self, other: "Row", names: Iterable[str]) -> bool:
        """Equality restricted to the attributes in *names*."""
        return all(self.get(name) == other.get(name) for name in names)
