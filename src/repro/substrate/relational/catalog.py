"""The system catalog.

Section 2.2: "The resulting source description gets added to a system
catalog." The catalog holds base relations (imported sources) and services
(bound sources), plus per-source metadata the learners maintain: trust
scores, provenance of how the source was learned, and learned semantic types.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from typing import TYPE_CHECKING

from ...analysis.concurrency.runtime import make_lock
from ...errors import CatalogError
from .relation import Relation
from .schema import Schema

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from ..services.base import Service


@dataclass
class SourceMetadata:
    """Learner-maintained bookkeeping for a catalog entry."""

    origin: str = "manual"          # e.g. "paste", "predefined", "import"
    trust: float = 1.0              # source trust score in [0, 1]
    url: str | None = None          # where the source was extracted from
    foreign_keys: dict[str, tuple[str, str]] = field(default_factory=dict)
    # attribute -> (other source, other attribute); "known links or foreign
    # keys" seed association edges in the source graph (Section 4.1).
    notes: dict[str, Any] = field(default_factory=dict)


#: Process-global allocator for catalog cache scopes. ``next()`` on an
#: ``itertools.count`` is atomic under CPython, so concurrent forks always
#: receive distinct scope tokens without extra locking.
_SCOPE_COUNTER = itertools.count(1)


class Catalog:
    """Named registry of relations and services.

    Multi-tenant sharing (the session server) adds two notions on top of the
    plain registry:

    - a **cache scope** — a process-unique token naming the *lineage* of this
      catalog's contents. Shared cache tiers key entries on
      ``(scope, fingerprint, version)``; two unrelated catalogs can never
      collide on a key, while a pristine fork *shares* its parent's scope (and
      therefore the parent's warm cache entries) until its first divergent
      mutation, at which point it silently acquires a fresh scope of its own.
    - **freezing** — the server freezes the shared base catalog after setup;
      any later mutation raises, which is what makes lock-free concurrent
      reads of the base sound.
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._services: dict[str, "Service"] = {}
        self._metadata: dict[str, SourceMetadata] = {}
        self._version = 0
        self._scope = next(_SCOPE_COUNTER)
        self._frozen = False
        self._fork_pristine = False
        self._scope_lock = make_lock("Catalog._scope_lock")

    # -- multi-tenant sharing ----------------------------------------------------
    @property
    def cache_scope(self) -> int:
        """The token shared cache tiers fold into every key for this catalog."""
        return self._scope

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Make the catalog immutable (the server's shared base layer)."""
        self._frozen = True

    def fork(self) -> "Catalog":
        """A copy-on-write per-tenant view of this catalog.

        The fork shares ``Relation`` and ``Service`` *objects* with its parent
        (session commit paths always build a fresh ``Relation`` and replace
        the registry entry, never append to a registered one, so object
        sharing is safe) but owns its registry dicts and deep-copies
        :class:`SourceMetadata` (trust scores and drift notes are per-tenant
        state, mutated in place by the learners). It inherits the parent's
        cache scope — so reads hit the parent's warm shared-tier entries —
        until its first mutation diverges it onto a fresh scope.
        """
        child = Catalog.__new__(Catalog)
        child._relations = dict(self._relations)
        child._services = dict(self._services)
        child._metadata = {name: copy.deepcopy(meta) for name, meta in self._metadata.items()}
        child._version = self._version
        child._scope = self._scope
        child._frozen = False
        child._fork_pristine = True
        child._scope_lock = make_lock("Catalog._scope_lock")
        return child

    def _mutated(self) -> None:
        """Guard + scope divergence, called before every registry mutation."""
        if self._frozen:
            raise CatalogError("catalog is frozen (shared server base); fork() it instead")
        if self._fork_pristine:
            with self._scope_lock:
                if self._fork_pristine:
                    self._scope = next(_SCOPE_COUNTER)
                    self._fork_pristine = False

    # -- versioning --------------------------------------------------------------
    @property
    def version(self) -> tuple[int, int]:
        """Monotone catalog version; caches key results on it.

        Two components: an explicit counter bumped on every registration,
        removal, and out-of-band semantic change (trust adjustments, tuple
        demotions, link-example feedback — callers that mutate metadata or
        learned state invoke :meth:`bump_version`), plus the total row count
        across base relations, which catches rows appended to a relation
        *after* it was registered. Together they make cache invalidation
        precise: any change that could alter a query answer moves the
        version, and nothing else does.
        """
        return self._version, sum(len(rel) for rel in self._relations.values())

    def bump_version(self) -> None:
        """Record an out-of-band change that may affect query answers."""
        self._mutated()
        self._version += 1

    @property
    def version_counter(self) -> int:
        """The explicit-counter component of :attr:`version`, O(1).

        For staleness keys that do not depend on row counts (e.g. drift
        bookkeeping, which reads only source metadata notes): the counter
        moves on every registration, removal, and out-of-band change,
        without the per-relation row-count sweep :attr:`version` pays.
        """
        return self._version

    # -- registration -----------------------------------------------------------
    def add_relation(
        self, relation: Relation, metadata: SourceMetadata | None = None, replace: bool = False
    ) -> Relation:
        name = relation.name
        if not replace and name in self:
            raise CatalogError(f"catalog already contains a source named {name!r}")
        self._mutated()
        self._relations[name] = relation
        self._services.pop(name, None)
        self._metadata[name] = metadata or SourceMetadata()
        self._version += 1
        return relation

    def add_service(
        self, service: "Service", metadata: SourceMetadata | None = None, replace: bool = False
    ) -> "Service":
        name = service.name
        if not replace and name in self:
            raise CatalogError(f"catalog already contains a source named {name!r}")
        self._mutated()
        self._services[name] = service
        self._relations.pop(name, None)
        self._metadata[name] = metadata or SourceMetadata(origin="predefined")
        self._version += 1
        return service

    def remove(self, name: str) -> None:
        if name not in self:
            raise CatalogError(f"no source named {name!r} to remove")
        self._mutated()
        self._relations.pop(name, None)
        self._services.pop(name, None)
        self._metadata.pop(name, None)
        self._version += 1

    # -- lookup -------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._relations or name in self._services

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            if name in self._services:
                raise CatalogError(f"{name!r} is a service, not a base relation") from None
            raise CatalogError(f"no relation named {name!r} in catalog") from None

    def service(self, name: str) -> "Service":
        try:
            return self._services[name]
        except KeyError:
            if name in self._relations:
                raise CatalogError(f"{name!r} is a base relation, not a service") from None
            raise CatalogError(f"no service named {name!r} in catalog") from None

    def schema(self, name: str) -> Schema:
        if name in self._relations:
            return self._relations[name].schema
        if name in self._services:
            return self._services[name].schema
        raise CatalogError(f"no source named {name!r} in catalog")

    def is_service(self, name: str) -> bool:
        return name in self._services

    def metadata(self, name: str) -> SourceMetadata:
        try:
            return self._metadata[name]
        except KeyError:
            raise CatalogError(f"no source named {name!r} in catalog") from None

    # -- iteration ------------------------------------------------------------------
    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def service_names(self) -> list[str]:
        return sorted(self._services)

    def source_names(self) -> list[str]:
        return sorted(set(self._relations) | set(self._services))

    def relations(self) -> Iterator[Relation]:
        for name in self.relation_names():
            yield self._relations[name]

    def services(self) -> Iterator["Service"]:
        for name in self.service_names():
            yield self._services[name]

    def __len__(self) -> int:
        return len(self._relations) + len(self._services)

    def __repr__(self) -> str:
        return (
            f"Catalog({len(self._relations)} relations, {len(self._services)} services)"
        )
