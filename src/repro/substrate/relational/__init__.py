"""In-memory relational substrate with provenance-annotated evaluation."""

from .algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    RowLinker,
    Scan,
    Select,
    Union,
    walk,
)
from .aggregates import AGGREGATES, AggSpec, GroupBy
from .catalog import Catalog, SourceMetadata
from .columns import ColumnBatch
from .config import COLUMNAR
from .evaluator import ColumnarEngine, Evaluator, Result
from .predicates import (
    And,
    AttrCompare,
    Compare,
    Contains,
    IsNull,
    Not,
    NotNull,
    Or,
    Predicate,
    eq,
)
from .relation import Relation, relation_from_dicts
from .rows import NULL, Row, TupleId
from .schema import (
    ANY,
    BUILTIN_TYPES,
    CITY,
    CURRENCY,
    DATE,
    LATITUDE,
    LONGITUDE,
    NAME,
    NUMBER,
    PLACE,
    PHONE,
    STATE,
    STREET,
    TEXT,
    URL,
    ZIPCODE,
    Attribute,
    BindingPattern,
    Schema,
    SemanticType,
    builtin_type,
    schema_of,
)

__all__ = [
    "ANY", "BUILTIN_TYPES", "CITY", "COLUMNAR", "CURRENCY", "DATE", "LATITUDE", "LONGITUDE",
    "NAME", "NULL", "NUMBER", "PHONE", "PLACE", "STATE", "STREET", "TEXT", "URL", "ZIPCODE",
    "AGGREGATES", "AggSpec", "And", "AttrCompare", "Attribute", "BindingPattern", "Catalog",
    "ColumnBatch", "ColumnarEngine", "Compare",
    "GroupBy",
    "Contains", "DependentJoin", "Distinct", "Evaluator", "IsNull", "Join",
    "Limit", "Not", "NotNull", "Or", "Plan", "Predicate", "Project",
    "RecordLinkJoin", "Relation", "Rename", "Result", "Row", "RowLinker", "Scan",
    "Schema", "Select", "SemanticType", "SourceMetadata", "TupleId", "Union",
    "builtin_type", "columnar_stats_line", "eq", "relation_from_dicts", "schema_of", "walk",
]


def columnar_stats_line(metrics=None) -> str:
    """One-line summary of the columnar counters (``--trace`` output)."""
    from ...obs import METRICS
    from ...util.text import INTERN, normalize_cache_stats

    m = metrics or METRICS
    plans = int(m.counter_value("columnar.plans"))
    fallbacks = int(m.counter_value("columnar.fallbacks"))
    compile_hits = int(m.counter_value("columnar.compile.hits"))
    compile_misses = int(m.counter_value("columnar.compile.misses"))
    scan_hits = int(m.counter_value("columnar.scan.hits"))
    scan_misses = int(m.counter_value("columnar.scan.misses"))
    normalize = normalize_cache_stats()
    if m.enabled:
        m.gauge("columnar.intern.size", float(len(INTERN)))
        m.gauge("text.normalize.eviction_rate", normalize["eviction_rate"])
    line = (
        f"columnar: plans {plans} · fallbacks {fallbacks} · "
        f"compile {compile_hits}/{compile_hits + compile_misses} hits · "
        f"scan {scan_hits}/{scan_hits + scan_misses} hits · "
        f"interned {len(INTERN)} · "
        f"normalize evict rate {normalize['eviction_rate']:.3f}"
    )
    if not COLUMNAR.enabled:
        line += " · disabled"
    return line
