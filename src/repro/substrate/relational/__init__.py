"""In-memory relational substrate with provenance-annotated evaluation."""

from .algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    RowLinker,
    Scan,
    Select,
    Union,
    walk,
)
from .aggregates import AGGREGATES, AggSpec, GroupBy
from .catalog import Catalog, SourceMetadata
from .evaluator import Evaluator, Result
from .predicates import (
    And,
    AttrCompare,
    Compare,
    Contains,
    IsNull,
    Not,
    NotNull,
    Or,
    Predicate,
    eq,
)
from .relation import Relation, relation_from_dicts
from .rows import NULL, Row, TupleId
from .schema import (
    ANY,
    BUILTIN_TYPES,
    CITY,
    CURRENCY,
    DATE,
    LATITUDE,
    LONGITUDE,
    NAME,
    NUMBER,
    PLACE,
    PHONE,
    STATE,
    STREET,
    TEXT,
    URL,
    ZIPCODE,
    Attribute,
    BindingPattern,
    Schema,
    SemanticType,
    builtin_type,
    schema_of,
)

__all__ = [
    "ANY", "BUILTIN_TYPES", "CITY", "CURRENCY", "DATE", "LATITUDE", "LONGITUDE",
    "NAME", "NULL", "NUMBER", "PHONE", "PLACE", "STATE", "STREET", "TEXT", "URL", "ZIPCODE",
    "AGGREGATES", "AggSpec", "And", "AttrCompare", "Attribute", "BindingPattern", "Catalog", "Compare",
    "GroupBy",
    "Contains", "DependentJoin", "Distinct", "Evaluator", "IsNull", "Join",
    "Limit", "Not", "NotNull", "Or", "Plan", "Predicate", "Project",
    "RecordLinkJoin", "Relation", "Rename", "Result", "Row", "RowLinker", "Scan",
    "Schema", "Select", "SemanticType", "SourceMetadata", "TupleId", "Union",
    "builtin_type", "eq", "relation_from_dicts", "schema_of", "walk",
]
