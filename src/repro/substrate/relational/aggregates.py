"""Grouping and aggregation.

Section 5 ("Complex functions / transforms"): "Sometimes the user will want
to apply complex operations that are difficult to demonstrate: for
instance, perform an aggregation or evaluate an arithmetic expression."
This module supplies the relational side of that: a ``GroupBy`` plan node
with the standard aggregate functions, evaluated with provenance (a group's
output tuple is ⊗-derived from every input tuple in the group... which in
how-provenance is the product of the contributing variables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ...errors import EvaluationError
from ...provenance.expressions import Provenance, times
from .algebra import Plan
from .catalog import Catalog
from .rows import Row
from .schema import ANY, NUMBER, Attribute, Schema


def _numeric(values: list[Any]) -> list[float]:
    out = []
    for value in values:
        if value is None:
            continue
        try:
            out.append(float(value))
        except (TypeError, ValueError):
            raise EvaluationError(f"non-numeric value in numeric aggregate: {value!r}")
    return out


def agg_count(values: list[Any]) -> int:
    return sum(1 for value in values if value is not None)


def agg_sum(values: list[Any]) -> float | None:
    nums = _numeric(values)
    return sum(nums) if nums else None


def agg_avg(values: list[Any]) -> float | None:
    nums = _numeric(values)
    return sum(nums) / len(nums) if nums else None


def agg_min(values: list[Any]) -> Any:
    present = [value for value in values if value is not None]
    return min(present) if present else None


def agg_max(values: list[Any]) -> Any:
    present = [value for value in values if value is not None]
    return max(present) if present else None


def agg_count_distinct(values: list[Any]) -> int:
    return len({value for value in values if value is not None})


AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "count_distinct": agg_count_distinct,
}

_NUMERIC_AGGS = {"count", "sum", "avg", "count_distinct"}


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column: ``fn(attribute) AS alias``."""

    fn: str
    attribute: str
    alias: str

    def __post_init__(self) -> None:
        if self.fn not in AGGREGATES:
            raise EvaluationError(
                f"unknown aggregate {self.fn!r} (have: {sorted(AGGREGATES)})"
            )

    def __str__(self) -> str:
        return f"{self.fn}({self.attribute}) AS {self.alias}"


@dataclass(frozen=True)
class GroupBy(Plan):
    """Group rows by key attributes and compute aggregates per group.

    With an empty ``keys`` tuple the whole input is one group (global
    aggregation). Output schema: keys followed by aggregate aliases.
    """

    child: Plan
    keys: tuple[str, ...]
    aggregates: tuple[AggSpec, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        object.__setattr__(self, "aggregates", tuple(self.aggregates))
        if not self.aggregates and not self.keys:
            raise EvaluationError("GroupBy needs keys or aggregates")
        aliases = [spec.alias for spec in self.aggregates]
        if len(set(aliases) | set(self.keys)) != len(aliases) + len(self.keys):
            raise EvaluationError("duplicate output names in GroupBy")

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        attrs = [child_schema.attribute(key) for key in self.keys]
        for spec in self.aggregates:
            child_schema.position(spec.attribute)  # validate it exists
            semantic = NUMBER if spec.fn in _NUMERIC_AGGS else ANY
            attrs.append(Attribute(spec.alias, semantic))
        return Schema(attrs)

    def describe(self) -> str:
        keys = ", ".join(self.keys) or "(all)"
        aggs = ", ".join(str(spec) for spec in self.aggregates)
        return f"GroupBy[{keys}; {aggs}]"


def evaluate_groupby(
    plan: GroupBy,
    child_rows: Iterable[tuple[Row, Provenance]],
    catalog: Catalog,
) -> list[tuple[Row, Provenance]]:
    """Evaluator hook for :class:`GroupBy` (wired into the Evaluator)."""
    schema = plan.output_schema(catalog)
    groups: dict[tuple, list[tuple[Row, Provenance]]] = {}
    order: list[tuple] = []
    for row, prov in child_rows:
        key = tuple(row[k] for k in plan.keys)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((row, prov))
    out: list[tuple[Row, Provenance]] = []
    for key in order:
        members = groups[key]
        values = list(key)
        for spec in plan.aggregates:
            column = [row[spec.attribute] for row, _ in members]
            values.append(AGGREGATES[spec.fn](column))
        prov = times(*(member_prov for _, member_prov in members))
        out.append((Row(schema, values), prov))
    return out


def evaluate_groupby_columnar(plan: GroupBy, child, schema: Schema):
    """Batch-at-a-time :class:`GroupBy` over a columnar child batch.

    Groups by gathering directly from the child's column arrays (no Row
    allocation, attribute positions resolved once) and produces output
    columns in place. Semantics — group order (first appearance), member
    order, aggregate values, and the ⊗-combined provenance per group —
    match :func:`evaluate_groupby` exactly.
    """
    from .columns import ColumnBatch

    key_columns = [child.column(name) for name in plan.keys]
    agg_columns = [child.column(spec.attribute) for spec in plan.aggregates]
    groups: dict[tuple, list[int]] = {}
    order: list[tuple] = []
    for index in range(child.n_rows):
        key = tuple(column[index] for column in key_columns)
        members = groups.get(key)
        if members is None:
            groups[key] = [index]
            order.append(key)
        else:
            members.append(index)
    out_columns: list[list[Any]] = [[] for _ in schema.names]
    n_keys = len(plan.keys)
    agg_fns = [AGGREGATES[spec.fn] for spec in plan.aggregates]
    provs: list[Provenance] = []
    child_provs = child.provs
    for key in order:
        members = groups[key]
        for position, value in enumerate(key):
            out_columns[position].append(value)
        for offset, (fn, column) in enumerate(zip(agg_fns, agg_columns)):
            out_columns[n_keys + offset].append(fn([column[i] for i in members]))
        provs.append(times(*(child_provs[i] for i in members)))
    return ColumnBatch(schema, out_columns, provs)
