"""Plan evaluation with provenance annotation.

The evaluator plays the role of ORCHESTRA in CopyCat (Section 2.3): it
executes logical plans over the catalog and annotates every answer with a
how-provenance expression, so "feedback on auto-complete data" can be
converted "into feedback over the queries that created the data".

Evaluation is eager and tuple-at-a-time; relations at the paper's target
scale ("KB or MB of data, but probably not GB") comfortably fit in memory.

Incremental evaluation (the interactivity fix): expensive nodes — joins,
dependent joins, record-link joins, unions, grouping — consult a
shared-subplan result cache keyed on ``(structural fingerprint,
catalog.version)``, so the many candidate plans produced per suggestion
refresh evaluate their common join prefix once, and a refresh with an
unchanged catalog is nearly free. Streaming nodes (scan/select/project/
rename/limit) stay lazy and uncached, preserving ``Limit``
short-circuiting. See :mod:`repro.cache`.

Columnar batch execution (``REPRO_COLUMNAR``, on by default): plans whose
every node the :class:`ColumnarEngine` supports are precompiled — once per
``(plan fingerprint, catalog version)`` — into closures over per-column
value arrays (:mod:`.columns`), with attribute positions resolved at
compile time from the analyzer's bottom-up schema inference and predicates
vectorized by :func:`.predicates.compile_predicate`. The row path is kept
verbatim as the semantic reference: any plan the engine cannot compile
(``Limit`` short-circuiting, unknown node/predicate subclasses, failed
schema inference) falls back to it, and ``REPRO_COLUMNAR=0`` reproduces it
bit-for-bit — rows, provenance, degradations, service-call counts, cache
and blocking decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ...analysis.config import ANALYSIS
from ...cache.config import CACHE
from ...cache.fingerprint import plan_fingerprint, uncovered_fields
from ...cache.tiers import CacheTiers
from ...drift.config import DRIFT
from ...drift.quarantine import QUARANTINE_NOTE
from ...errors import EvaluationError, ServiceLookupFailed
from ...obs import METRICS
from ...provenance.expressions import Provenance, Var, plus, times
from ...resilience.degrade import Degradation, degraded_source
from ...server.config import OVERLOAD
from ...server.overload import LEVEL_NORMAL, check_deadline
from .algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    Scan,
    Select,
    Union,
    walk,
)
from .catalog import Catalog
from .columns import ColumnBatch
from .config import COLUMNAR
from .predicates import compile_predicate
from .rows import Row, TupleId
from .schema import Schema

AnnotatedRow = tuple[Row, Provenance]


@dataclass
class Result:
    """An evaluated plan: schema plus provenance-annotated rows.

    ``degraded`` records the service failures absorbed while evaluating
    (graceful degradation): the affected rows are present with null service
    outputs and a ``degraded:<Service>`` provenance marker instead of the
    whole evaluation raising.
    """

    schema: Schema
    rows: list[AnnotatedRow]
    degraded: tuple[Degradation, ...] = ()
    # Lazily-built row → ⊕-combined-provenance index shared by
    # provenance_of and merged (each lookup used to be a linear scan).
    _prov_index: dict[Row, Provenance] | None = field(
        default=None, repr=False, compare=False
    )
    _prov_order: list[Row] = field(default_factory=list, repr=False, compare=False)
    _prov_len: int = field(default=-1, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def plain_rows(self) -> list[Row]:
        return [row for row, _ in self.rows]

    def dicts(self) -> list[dict[str, Any]]:
        return [row.as_dict() for row, _ in self.rows]

    def _index(self) -> dict[Row, Provenance]:
        """The row→provenance index, (re)built when the rows changed."""
        if self._prov_index is None or self._prov_len != len(self.rows):
            order: list[Row] = []
            merged: dict[Row, Provenance] = {}
            for row, prov in self.rows:
                if row in merged:
                    merged[row] = plus(merged[row], prov)
                else:
                    merged[row] = prov
                    order.append(row)
            self._prov_index = merged
            self._prov_order = order
            self._prov_len = len(self.rows)
        return self._prov_index

    def provenance_of(self, row: Row) -> Provenance:
        """Combined provenance of every occurrence of *row* in the result."""
        prov = self._index().get(row)
        if prov is None:
            raise EvaluationError(f"row not present in result: {row!r}")
        return prov

    def merged(self) -> "Result":
        """Set-semantics view: duplicates merged, provenance ⊕-combined."""
        index = self._index()
        return Result(
            self.schema,
            [(row, index[row]) for row in self._prov_order],
            degraded=self.degraded,
        )

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    def degraded_services(self) -> tuple[str, ...]:
        """Sorted names of the services whose failures this result absorbed."""
        return tuple(sorted({note.service for note in self.degraded}))


#: Node kinds worth caching: they materialize inputs and/or do superlinear
#: or service-calling work. Streaming nodes (Scan/Select/Project/Rename/
#: Limit) are excluded so laziness — notably Limit short-circuiting — is
#: preserved and cheap nodes don't churn the LRU.
_CACHEABLE_NODES = frozenset(
    {"Join", "DependentJoin", "RecordLinkJoin", "Union", "Distinct", "GroupBy"}
)


class Evaluator:
    """Evaluates :class:`~repro.substrate.relational.algebra.Plan` trees."""

    def __init__(self, catalog: Catalog, tiers: CacheTiers | None = None):
        self.catalog = catalog
        #: every memo this evaluation stack consults. Private by default
        #: (historical behavior); the session server passes one shared
        #: bundle so tenants amortize each other's work.
        self.tiers = tiers if tiers is not None else CacheTiers()
        self.plan_cache = self.tiers.plan
        self.columnar = ColumnarEngine(self)
        # Service failures absorbed during the current run() (graceful
        # degradation); attached to the Result and reset per run.
        self._degraded: list[Degradation] = []
        # Brownout service level, propagated from the owning session
        # (set_service_level): "degraded" sheds dependent-join backend
        # calls through the same null-padded degradation path above.
        self.service_level = LEVEL_NORMAL
        # Snapshot isolation: run() pins the catalog version and cache scope
        # once, so every cache probe inside one evaluation addresses the
        # same snapshot even if another thread bumps the catalog mid-run.
        self._run_version: Any = None
        self._run_scope: Any = None

    # -- snapshot pinning ----------------------------------------------------
    def _active_version(self) -> Any:
        version = self._run_version
        return version if version is not None else self.catalog.version

    def _active_scope(self) -> Any:
        scope = self._run_scope
        return scope if scope is not None else self.catalog.cache_scope

    def run(self, plan: Plan) -> Result:
        check_deadline("evaluator.run")
        schema = plan.output_schema(self.catalog)
        self._degraded = []
        self._run_version = self.catalog.version
        self._run_scope = self.catalog.cache_scope
        try:
            if not self.tiers.shared:
                return self._run_pinned(plan, schema)
            # Single-flight on the root plan: when N tenants miss the shared
            # tier on the same plan simultaneously, one computes (and
            # populates the tier) while the rest wait, then re-evaluate
            # against warm entries — without this, a cold start pays N× the
            # work under the GIL and sharing buys nothing.
            try:
                fingerprint = plan_fingerprint(plan)
            except TypeError:
                return self._run_pinned(plan, schema)
            with self.tiers.flight((self._run_scope, fingerprint, self._run_version)):
                return self._run_pinned(plan, schema)  # lint: allow=CONC004 -- single-flight deliberately computes under the per-key lock; only leaf metrics emit inside
        finally:
            self._run_version = None
            self._run_scope = None

    def _run_pinned(self, plan: Plan, schema: Schema) -> Result:
        if COLUMNAR.enabled:
            thunk = self.columnar.compiled(plan)
            if thunk is not None:
                if METRICS.enabled:
                    METRICS.inc("columnar.plans")
                batch = thunk(self)
                return Result(
                    schema, batch.to_annotated(), degraded=tuple(self._degraded)
                )
            if METRICS.enabled:
                METRICS.inc("columnar.fallbacks")
        rows = list(self._eval(plan))
        return Result(schema, rows, degraded=tuple(self._degraded))

    # -- dispatch -----------------------------------------------------------
    def _eval(self, plan: Plan) -> Iterable[AnnotatedRow]:
        # Cooperative cancellation, once per plan node: an expired request
        # deadline stops consuming the worker at the next node boundary.
        check_deadline("evaluator.node")
        kind = type(plan).__name__
        method = getattr(self, f"_eval_{kind.lower()}", None)
        if method is None:
            raise EvaluationError(f"no evaluator for plan node {kind}")
        if not CACHE.plan or kind not in _CACHEABLE_NODES:
            return method(plan)
        try:
            fingerprint = plan_fingerprint(plan)
        except TypeError:
            # A plan node with no registered fingerprint (e.g. a subclass
            # reusing a cacheable name) must evaluate uncached: reusing the
            # parent's fingerprint would alias cache entries across types.
            if METRICS.enabled:
                METRICS.inc("analysis.fingerprint_unregistered")
            return method(plan)
        version = self._active_version()
        scope = self._active_scope()
        cached = self.plan_cache.get(fingerprint, version, scope=scope)
        if cached is not None:
            return cached
        degraded_before = len(self._degraded)
        rows = list(method(plan))
        # A degraded evaluation is transient by nature: caching it would
        # keep serving the partial result after the service recovers, the
        # same poisoning the service memo guards against.
        if len(self._degraded) != degraded_before:
            if METRICS.enabled:
                METRICS.inc("cache.plan.degraded_uncached")
        elif self._cache_admissible(plan):
            self.plan_cache.put(fingerprint, version, rows, scope=scope)
        return rows

    @staticmethod
    def _cache_admissible(plan: Plan) -> bool:
        """Admission gate: refuse to cache a plan whose fingerprint has
        field gaps anywhere in the tree — two plans differing only in an
        uncovered field would share the entry. Field coverage is recomputed
        (not memoized per class) so test-defined subclasses stay collectable.
        """
        if not ANALYSIS.enabled or not ANALYSIS.gate_cache:
            return True
        for node in walk(plan):
            if uncovered_fields(type(node)):
                if METRICS.enabled:
                    METRICS.inc("analysis.cache_gate_rejections")
                return False
        return True

    def _eval_scan(self, plan: Scan) -> Iterable[AnnotatedRow]:
        annotated = self.catalog.relation(plan.source).annotated()
        notes = self.catalog.metadata(plan.source).notes
        if DRIFT.enabled:
            quarantined = notes.get(QUARANTINE_NOTE)
            if quarantined is not None:
                # A quarantined source serves its last-known-good rows, but
                # the result is flagged so suggestions built from it are
                # rank-penalized and DEGRADED-marked like a dead service's.
                self._degraded.append(
                    Degradation(
                        service=plan.source,
                        reason=f"source quarantined: {quarantined}",
                    )
                )
        # Cross-learner feedback (paper §5 "Feedback interaction"): tuple
        # demotions can mark specific base rows as distrusted; scans skip
        # them so every downstream suggestion reflects the feedback.
        distrusted = notes.get("distrusted_rows")
        if not distrusted:
            return annotated
        return [
            (row, prov)
            for index, (row, prov) in enumerate(annotated)
            if index not in distrusted
        ]

    def _eval_select(self, plan: Select) -> Iterable[AnnotatedRow]:
        for row, prov in self._eval(plan.child):
            if plan.predicate.matches(row):
                yield row, prov

    def _eval_project(self, plan: Project) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield row.project(plan.names, target), prov

    def _eval_rename(self, plan: Rename) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield Row(target, row.values), prov

    def _eval_join(self, plan: Join) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        right_schema = plan.right.output_schema(self.catalog)
        left_keys = tuple(left for left, _ in plan.conditions)
        right_keys = tuple(right for _, right in plan.conditions)
        # Hash join on the conjunction of all conditions.
        index: dict[tuple[Any, ...], list[AnnotatedRow]] = {}
        for row, prov in right_rows:
            key = tuple(row[name] for name in right_keys)
            if any(part is None for part in key):
                continue
            index.setdefault(key, []).append((row, prov))
        kept_right = [name for name in right_schema.names if name not in set(right_keys)]
        for row, prov in left_rows:
            key = tuple(row[name] for name in left_keys)
            if any(part is None for part in key):
                continue
            for other, other_prov in index.get(key, []):
                values = list(row.values) + [other[name] for name in kept_right]
                yield Row(target, values), times(prov, other_prov)

    def _eval_dependentjoin(self, plan: DependentJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        service = self.catalog.service(plan.service)
        input_map = dict(plan.input_map)
        # Identical bindings across child rows hit the service once: the
        # (outputs, ids) pair per distinct binding is computed on first use
        # and replayed for duplicates — independent of (and on top of) the
        # service's own invoke memoization.
        seen: dict[tuple[Any, ...], list[tuple[list[Any], Any]]] = {}
        output_names = service.output_names
        null_outputs = [None] * len(output_names)
        # Brownout: shed every backend call through the degradation branch
        # below — a fast, rank-penalized partial answer instead of a queue
        # of service round-trips. The level cannot change mid-run (it is
        # set between requests inside the tenant's serialized stream).
        browned_out = OVERLOAD.enabled and self.service_level != LEVEL_NORMAL
        for row, prov in self._eval(plan.child):
            check_deadline("evaluator.dependent_join")
            inputs = {svc_input: row[child_attr] for svc_input, child_attr in input_map.items()}
            if any(value is None for value in inputs.values()):
                continue
            try:
                binding = tuple(sorted(inputs.items()))
                expansions = seen.get(binding)
            except TypeError:  # unhashable input value: invoke directly
                binding, expansions = None, None
            if expansions is None:
                try:
                    if browned_out:
                        if METRICS.enabled:
                            METRICS.inc("overload.brownout_skips")
                        raise ServiceLookupFailed(
                            f"service {plan.service!r} not consulted under brownout",
                            service=plan.service,
                            transient=True,
                        )
                    invoked = service.invoke(inputs)
                except ServiceLookupFailed as exc:
                    # Graceful degradation: keep the row, null the service
                    # outputs, and mark its provenance with a pseudo-source
                    # naming the failed service. Failed bindings are never
                    # recorded in `seen`, so a later duplicate may recover.
                    self._degraded.append(
                        Degradation(service=plan.service, reason=str(exc))
                    )
                    if METRICS.enabled:
                        METRICS.inc("resilience.degraded_rows")
                    marker = Var(TupleId(degraded_source(plan.service), 0))
                    values = list(row.values) + null_outputs
                    yield Row(target, values), times(prov, marker)
                    continue
                expansions = []
                for result in invoked:
                    result_id = service.result_tuple_id(result)
                    expansions.append(
                        ([result[name] for name in output_names], result_id)
                    )
                if binding is not None:
                    seen[binding] = expansions
            for out_values, result_id in expansions:
                values = list(row.values) + out_values
                yield Row(target, values), times(prov, Var(result_id))

    def _eval_recordlinkjoin(self, plan: RecordLinkJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        candidates = self._link_candidates(plan, left_rows, right_rows)
        score = plan.linker.score
        for i, (row, prov) in enumerate(left_rows):
            if plan.best_only:
                # Single max pass (no sort): ties keep the earliest right
                # row, matching the previous stable sort-then-slice.
                best: AnnotatedRow | None = None
                best_score = float("-inf")
                for j in candidates(i):
                    other, other_prov = right_rows[j]
                    current = score(row, other)
                    if current >= plan.threshold and current > best_score:
                        best, best_score = (other, other_prov), current
                matched = [best] if best is not None else []
            else:
                matched = [
                    right_rows[j]
                    for j in candidates(i)
                    if score(row, right_rows[j][0]) >= plan.threshold
                ]
            for other, other_prov in matched:
                values = list(row.values) + list(other.values)
                yield Row(target, values), times(prov, other_prov)

    def _link_candidates(self, plan: RecordLinkJoin, left_rows, right_rows):
        """Right-row candidate indices per left index: blocked or full.

        Routes through :func:`repro.linking.blocking.candidate_pairs` when
        the linker exposes block-key attribute pairs and the cross product
        is large enough to be worth pruning (blocking is an approximation:
        pairs sharing no token are never scored). Otherwise every left row
        considers every right row.
        """
        n_pairs = len(left_rows) * len(right_rows)
        pairs = None
        if CACHE.blocking and n_pairs >= CACHE.blocking_min_pairs:
            attr_pairs = plan.linker.block_attribute_pairs()
            if attr_pairs:
                from ...linking.blocking import candidate_pairs, token_block_key

                key_fns = [
                    (token_block_key(left), token_block_key(right))
                    for left, right in attr_pairs
                ]
                blocked = candidate_pairs(
                    [row for row, _ in left_rows],
                    [row for row, _ in right_rows],
                    key_fns,
                )
                pairs = {}
                for i, j in blocked:
                    pairs.setdefault(i, []).append(j)
                if METRICS.enabled:
                    METRICS.inc("cache.blocking.joins")
                    METRICS.inc("cache.blocking.pairs_pruned", n_pairs - len(blocked))
        if pairs is None:
            all_right = range(len(right_rows))
            return lambda i: all_right
        empty: list[int] = []
        return lambda i: pairs.get(i, empty)

    def _eval_union(self, plan: Union) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for part in plan.parts:
            for row, prov in self._eval(part):
                yield row.pad_to(target), prov

    def _eval_distinct(self, plan: Distinct) -> Iterable[AnnotatedRow]:
        inner = Result(plan.output_schema(self.catalog), list(self._eval(plan.child)))
        return iter(inner.merged().rows)

    def _eval_groupby(self, plan) -> Iterable[AnnotatedRow]:
        from .aggregates import evaluate_groupby

        return iter(evaluate_groupby(plan, self._eval(plan.child), self.catalog))

    def _eval_limit(self, plan: Limit) -> Iterable[AnnotatedRow]:
        # Stop *exactly* at count: pulling even one extra child row could
        # mean an extra service invocation under a dependent join.
        if plan.count <= 0:
            return
        emitted = 0
        for row, prov in self._eval(plan.child):
            yield row, prov
            emitted += 1
            if emitted >= plan.count:
                break


# -- columnar batch execution --------------------------------------------------

#: Negative compile-memo entry: the plan was analyzed and found unsupported,
#: so repeated runs skip straight to the row path without re-walking it.
_UNSUPPORTED = object()
_MISS = object()

#: A compiled plan: a closure producing the result batch for the evaluator
#: it is passed. Thunks are *context-threaded* — they capture no evaluator
#: or catalog, only compile-time-resolved positions/schemas — so one
#: compiled closure in a shared tier serves every tenant on the same cache
#: scope, each execution reading the invoking evaluator's catalog state
#: (metadata notes, service objects) and degradation list.
BatchThunk = Callable[["Evaluator"], ColumnBatch]


class _Unsupported(Exception):
    """Internal: the plan contains a node the columnar engine cannot run."""


def _batch_rows(batch: ColumnBatch) -> list[Row]:
    """Materialize plain Rows from a batch (record-link scoring only)."""
    schema = batch.schema
    from_values = Row.from_values
    if not batch.columns:
        return [from_values(schema, ()) for _ in range(batch.n_rows)]
    return [from_values(schema, values) for values in zip(*batch.columns)]


def _column_or_nulls(batch: ColumnBatch, name: str) -> list[Any]:
    """A column by name, or all-``None`` when the schema lacks it.

    Mirrors the ``row.get(attribute)`` default inside ``token_block_key``:
    a missing blocking attribute blocks nothing rather than erroring.
    """
    if name in batch.schema:
        return batch.column(name)
    return [None] * batch.n_rows


class ColumnarEngine:
    """Compiles whole plan trees into batch-at-a-time closures.

    Compilation resolves everything resolvable once per ``(plan
    fingerprint, catalog version)``: per-node output schemas (via the
    analyzer's bottom-up inference), attribute positions, predicate mask
    functions, join key/kept-column indices. The resulting closure tree
    moves whole columns per operator and allocates Rows only at the
    ``Result`` boundary (and for record-link scoring, whose linkers take
    Rows by contract).

    Parity contract: for every supported plan the closure produces exactly
    the rows, provenance expressions, degradation notes, service-invocation
    sequence, and cache/blocking decisions of the row path. Anything it
    cannot guarantee that for — ``Limit`` (whose short-circuit changes how
    many service calls happen), unregistered node types, predicate
    subclasses, failed schema inference — compiles to "unsupported" and the
    whole plan runs row-at-a-time.
    """

    def __init__(self, evaluator: Evaluator):
        from .aggregates import GroupBy

        self._evaluator = evaluator
        self.catalog = evaluator.catalog
        # Compiled closures per (scope, fingerprint, version); negative
        # results are memoized too, so known-unsupported plans pay one dict
        # probe. Lives in the evaluator's cache-tier bundle, so under the
        # session server one tenant's compilation is every tenant's hit.
        self._compile_memo = evaluator.tiers.compile
        # Raw relation transposes per (scope, source, version). Notes-driven
        # filtering (distrusted rows) and quarantine degradations are applied
        # per evaluation, after the memo, so feedback that edits metadata
        # without committing rows is always honored.
        self._scan_memo = evaluator.tiers.scan
        self._analyzer = None
        self._dispatch: dict[type, Callable[..., BatchThunk]] = {
            Scan: self._compile_scan,
            Select: self._compile_select,
            Project: self._compile_project,
            Rename: self._compile_rename,
            Join: self._compile_join,
            DependentJoin: self._compile_dependentjoin,
            RecordLinkJoin: self._compile_recordlinkjoin,
            Union: self._compile_union,
            Distinct: self._compile_distinct,
            GroupBy: self._compile_groupby,
        }

    # -- entry ---------------------------------------------------------------
    def compiled(self, plan: Plan) -> BatchThunk | None:
        """The compiled closure for *plan*, or ``None`` when unsupported."""
        try:
            fingerprint = plan_fingerprint(plan)
        except TypeError:
            # An unregistered node type anywhere in the tree: exactly the
            # plans the exact-type dispatch below could not compile anyway,
            # and without a fingerprint the memo has no sound key.
            return None
        evaluator = self._evaluator
        version = evaluator._active_version()
        key = (evaluator._active_scope(), fingerprint, version)
        thunk = self._compile_memo.get(key, _MISS)
        if thunk is _MISS:
            thunk = self._compile_root(plan, version)
            self._compile_memo.put(
                key, _UNSUPPORTED if thunk is None else thunk
            )
        return None if thunk is _UNSUPPORTED else thunk

    def _compile_root(self, plan: Plan, version: Any) -> BatchThunk | None:
        schemas = self._infer_schemas(plan)
        try:
            return self._compile(plan, schemas, version)
        except _Unsupported:
            return None

    def _infer_schemas(self, plan: Plan) -> dict[int, Schema | None]:
        if self._analyzer is None:
            # Local import: ``repro.analysis`` imports sibling modules at
            # package-import time, so importing it at this module's top
            # level would cycle when the analysis CLI loads first.
            from ...analysis.plan_analyzer import PlanAnalyzer

            self._analyzer = PlanAnalyzer(self.catalog)
        return self._analyzer.infer_schemas(plan)

    def _compile(
        self, plan: Plan, schemas: dict[int, Schema | None], version: Any
    ) -> BatchThunk:
        schema = schemas.get(id(plan))
        if schema is None:
            raise _Unsupported(f"no inferred schema for {type(plan).__name__}")
        compiler = self._dispatch.get(type(plan))
        if compiler is None:
            raise _Unsupported(type(plan).__name__)
        thunk = compiler(plan, schemas, version)
        if type(plan).__name__ in _CACHEABLE_NODES:
            thunk = self._cached(plan, version, thunk)
        return thunk

    def _cached(self, plan: Plan, version: Any, inner: BatchThunk) -> BatchThunk:
        """Wrap a cacheable node's closure with the shared-subplan cache.

        Same policy as the row path, against mode-tagged batch entries:
        consulted only while ``CACHE.plan`` is on, degraded evaluations are
        never stored, and the analyzer's admission gate applies. The root
        fingerprint succeeded, so this node's cannot raise.
        """
        fingerprint = plan_fingerprint(plan)

        def thunk(ev: Evaluator) -> ColumnBatch:
            if not CACHE.plan:
                return inner(ev)
            scope = ev._active_scope()
            cached = ev.plan_cache.get_batch(fingerprint, version, scope=scope)
            if cached is not None:
                return cached
            degraded_before = len(ev._degraded)
            batch = inner(ev)
            if len(ev._degraded) != degraded_before:
                if METRICS.enabled:
                    METRICS.inc("cache.plan.degraded_uncached")
            elif ev._cache_admissible(plan):
                ev.plan_cache.put_batch(fingerprint, version, batch, scope=scope)
            return batch

        return thunk

    # -- per-node compilers ---------------------------------------------------
    def _compile_scan(self, plan: Scan, schemas, version) -> BatchThunk:
        source = plan.source

        def thunk(ev: Evaluator) -> ColumnBatch:
            batch = ev.columnar._scan_batch(source, version)
            notes = ev.catalog.metadata(source).notes
            if DRIFT.enabled:
                quarantined = notes.get(QUARANTINE_NOTE)
                if quarantined is not None:
                    ev._degraded.append(
                        Degradation(
                            service=source,
                            reason=f"source quarantined: {quarantined}",
                        )
                    )
            distrusted = notes.get("distrusted_rows")
            if not distrusted:
                return batch
            return batch.gather(
                [index for index in range(batch.n_rows) if index not in distrusted]
            )

        return thunk

    def _scan_batch(self, source: str, version: Any) -> ColumnBatch:
        key = (self._evaluator._active_scope(), source, version)
        batch = self._scan_memo.get(key, _MISS)
        if batch is _MISS:
            relation = self.catalog.relation(source)
            batch = ColumnBatch.from_relation_rows(
                source, relation.schema, relation.rows()
            )
            self._scan_memo.put(key, batch)
        return batch

    def _compile_select(self, plan: Select, schemas, version) -> BatchThunk:
        child = self._compile(plan.child, schemas, version)
        mask_fn = compile_predicate(plan.predicate, schemas[id(plan.child)])
        if mask_fn is None:
            # Unknown predicate subclass, or an attribute the row path would
            # only fault on lazily — either way row-at-a-time owns it.
            raise _Unsupported(f"predicate {plan.predicate}")

        def thunk(ev: Evaluator) -> ColumnBatch:
            batch = child(ev)
            mask = mask_fn(batch.columns, batch.n_rows)
            keep = [index for index, flag in enumerate(mask) if flag]
            if len(keep) == batch.n_rows:
                return batch
            return batch.gather(keep)

        return thunk

    def _compile_project(self, plan: Project, schemas, version) -> BatchThunk:
        child = self._compile(plan.child, schemas, version)
        child_schema = schemas[id(plan.child)]
        target = schemas[id(plan)]
        positions = [child_schema.position(name) for name in plan.names]

        def thunk(ev: Evaluator) -> ColumnBatch:
            batch = child(ev)
            columns = batch.columns
            return ColumnBatch(
                target, [columns[position] for position in positions], batch.provs
            )

        return thunk

    def _compile_rename(self, plan: Rename, schemas, version) -> BatchThunk:
        child = self._compile(plan.child, schemas, version)
        target = schemas[id(plan)]

        def thunk(ev: Evaluator) -> ColumnBatch:
            return child(ev).with_schema(target)

        return thunk

    def _compile_join(self, plan: Join, schemas, version) -> BatchThunk:
        left = self._compile(plan.left, schemas, version)
        right = self._compile(plan.right, schemas, version)
        left_schema = schemas[id(plan.left)]
        right_schema = schemas[id(plan.right)]
        target = schemas[id(plan)]
        left_positions = [
            left_schema.position(name) for name, _ in plan.conditions
        ]
        right_positions = [
            right_schema.position(name) for _, name in plan.conditions
        ]
        right_key_names = {name for _, name in plan.conditions}
        kept_right = [
            position
            for position, name in enumerate(right_schema.names)
            if name not in right_key_names
        ]

        def thunk(ev: Evaluator) -> ColumnBatch:
            left_batch, right_batch = left(ev), right(ev)
            right_key_cols = [right_batch.columns[p] for p in right_positions]
            index: dict[tuple[Any, ...], list[int]] = {}
            for j in range(right_batch.n_rows):
                key = tuple(col[j] for col in right_key_cols)
                if any(part is None for part in key):
                    continue
                index.setdefault(key, []).append(j)
            left_key_cols = [left_batch.columns[p] for p in left_positions]
            left_idx: list[int] = []
            right_idx: list[int] = []
            for i in range(left_batch.n_rows):
                key = tuple(col[i] for col in left_key_cols)
                if any(part is None for part in key):
                    continue
                for j in index.get(key, ()):
                    left_idx.append(i)
                    right_idx.append(j)
            columns = [[col[i] for i in left_idx] for col in left_batch.columns]
            columns += [
                [right_batch.columns[p][j] for j in right_idx] for p in kept_right
            ]
            left_provs, right_provs = left_batch.provs, right_batch.provs
            provs = [
                times(left_provs[i], right_provs[j])
                for i, j in zip(left_idx, right_idx)
            ]
            return ColumnBatch(target, columns, provs)

        return thunk

    def _compile_dependentjoin(
        self, plan: DependentJoin, schemas, version
    ) -> BatchThunk:
        child = self._compile(plan.child, schemas, version)
        child_schema = schemas[id(plan.child)]
        target = schemas[id(plan)]
        # Same dict() pass as the row path: duplicate service inputs keep
        # their first position and last binding.
        input_positions = [
            (svc_input, child_schema.position(child_attr))
            for svc_input, child_attr in dict(plan.input_map).items()
        ]
        service_name = plan.service

        def thunk(ev: Evaluator) -> ColumnBatch:
            batch = child(ev)
            # Resolved per evaluation (not at compile) so a re-registered
            # service object is picked up exactly as the row path would.
            service = ev.catalog.service(service_name)
            output_names = service.output_names
            input_cols = [
                (svc_input, batch.columns[position])
                for svc_input, position in input_positions
            ]
            seen: dict[tuple[Any, ...], list[tuple[list[Any], Any]]] = {}
            keep_idx: list[int] = []
            out_cols: list[list[Any]] = [[] for _ in output_names]
            provs: list[Provenance] = []
            child_provs = batch.provs
            # Mirrors the row path: brownout sheds calls into degradation,
            # and the deadline is polled every 64 rows (cheap enough for
            # the batch loop, fine-grained enough to stop abandoned work).
            browned_out = OVERLOAD.enabled and ev.service_level != LEVEL_NORMAL
            for i in range(batch.n_rows):
                if not i & 63:
                    check_deadline("evaluator.dependent_join")
                inputs = {name: col[i] for name, col in input_cols}
                if any(value is None for value in inputs.values()):
                    continue
                try:
                    binding = tuple(sorted(inputs.items()))
                    expansions = seen.get(binding)
                except TypeError:  # unhashable input value: invoke directly
                    binding, expansions = None, None
                if expansions is None:
                    try:
                        if browned_out:
                            if METRICS.enabled:
                                METRICS.inc("overload.brownout_skips")
                            raise ServiceLookupFailed(
                                f"service {service_name!r} not consulted "
                                "under brownout",
                                service=service_name,
                                transient=True,
                            )
                        invoked = service.invoke(inputs)
                    except ServiceLookupFailed as exc:
                        ev._degraded.append(
                            Degradation(service=service_name, reason=str(exc))
                        )
                        if METRICS.enabled:
                            METRICS.inc("resilience.degraded_rows")
                        marker = Var(TupleId(degraded_source(service_name), 0))
                        keep_idx.append(i)
                        for column in out_cols:
                            column.append(None)
                        provs.append(times(child_provs[i], marker))
                        continue
                    expansions = []
                    for result in invoked:
                        result_id = service.result_tuple_id(result)
                        expansions.append(
                            ([result[name] for name in output_names], result_id)
                        )
                    if binding is not None:
                        seen[binding] = expansions
                for out_values, result_id in expansions:
                    keep_idx.append(i)
                    for column, value in zip(out_cols, out_values):
                        column.append(value)
                    provs.append(times(child_provs[i], Var(result_id)))
            columns = [[col[i] for i in keep_idx] for col in batch.columns]
            columns += out_cols
            return ColumnBatch(target, columns, provs)

        return thunk

    def _compile_recordlinkjoin(
        self, plan: RecordLinkJoin, schemas, version
    ) -> BatchThunk:
        left = self._compile(plan.left, schemas, version)
        right = self._compile(plan.right, schemas, version)
        target = schemas[id(plan)]
        linker = plan.linker
        threshold = plan.threshold
        best_only = plan.best_only

        def thunk(ev: Evaluator) -> ColumnBatch:
            left_batch, right_batch = left(ev), right(ev)
            # Linkers score Rows by contract, so both sides materialize —
            # but through the trusted constructor, and blocking keys come
            # straight off the column arrays.
            left_rows = _batch_rows(left_batch)
            right_rows = _batch_rows(right_batch)
            candidates = ev.columnar._link_candidates_batch(plan, left_batch, right_batch)
            score = linker.score
            left_idx: list[int] = []
            right_idx: list[int] = []
            for i, row in enumerate(left_rows):
                if best_only:
                    # Single max pass, ties keep the earliest right row —
                    # identical to the row path.
                    best_j = -1
                    best_score = float("-inf")
                    for j in candidates(i):
                        current = score(row, right_rows[j])
                        if current >= threshold and current > best_score:
                            best_j, best_score = j, current
                    matched = [best_j] if best_j >= 0 else []
                else:
                    matched = [
                        j
                        for j in candidates(i)
                        if score(row, right_rows[j]) >= threshold
                    ]
                for j in matched:
                    left_idx.append(i)
                    right_idx.append(j)
            columns = [[col[i] for i in left_idx] for col in left_batch.columns]
            columns += [[col[j] for j in right_idx] for col in right_batch.columns]
            left_provs, right_provs = left_batch.provs, right_batch.provs
            provs = [
                times(left_provs[i], right_provs[j])
                for i, j in zip(left_idx, right_idx)
            ]
            return ColumnBatch(target, columns, provs)

        return thunk

    def _link_candidates_batch(
        self, plan: RecordLinkJoin, left_batch: ColumnBatch, right_batch: ColumnBatch
    ):
        """Batch twin of :meth:`Evaluator._link_candidates`.

        Same gate (``CACHE.blocking``, pair-count floor, linker-derived
        attribute pairs) and same candidate sets — the key sets are computed
        per column instead of per row, then fed to the shared
        ``candidate_pairs_from_keys`` core.
        """
        n_pairs = left_batch.n_rows * right_batch.n_rows
        pairs = None
        if CACHE.blocking and n_pairs >= CACHE.blocking_min_pairs:
            attr_pairs = plan.linker.block_attribute_pairs()
            if attr_pairs:
                from ...linking.blocking import (
                    candidate_pairs_from_keys,
                    column_token_keys,
                )

                left_keys = [
                    column_token_keys(_column_or_nulls(left_batch, left_attr))
                    for left_attr, _ in attr_pairs
                ]
                right_keys = [
                    column_token_keys(_column_or_nulls(right_batch, right_attr))
                    for _, right_attr in attr_pairs
                ]
                blocked = candidate_pairs_from_keys(left_keys, right_keys)
                pairs = {}
                for i, j in blocked:
                    pairs.setdefault(i, []).append(j)
                if METRICS.enabled:
                    METRICS.inc("cache.blocking.joins")
                    METRICS.inc("cache.blocking.pairs_pruned", n_pairs - len(blocked))
        if pairs is None:
            all_right = range(right_batch.n_rows)
            return lambda i: all_right
        empty: list[int] = []
        return lambda i: pairs.get(i, empty)

    def _compile_union(self, plan: Union, schemas, version) -> BatchThunk:
        parts = [self._compile(part, schemas, version) for part in plan.parts]
        target = schemas[id(plan)]
        # Position of each target attribute in each part (None => pad with
        # NULL), replacing the row path's per-row ``pad_to`` dict lookups.
        mappings = []
        for part in plan.parts:
            part_schema = schemas[id(part)]
            mappings.append(
                [
                    part_schema.position(name) if name in part_schema else None
                    for name in target.names
                ]
            )

        def thunk(ev: Evaluator) -> ColumnBatch:
            columns: list[list[Any]] = [[] for _ in target.names]
            provs: list[Provenance] = []
            for part_thunk, mapping in zip(parts, mappings):
                batch = part_thunk(ev)
                for k, position in enumerate(mapping):
                    if position is None:
                        columns[k].extend([None] * batch.n_rows)
                    else:
                        columns[k].extend(batch.columns[position])
                provs.extend(batch.provs)
            return ColumnBatch(target, columns, provs)

        return thunk

    def _compile_distinct(self, plan: Distinct, schemas, version) -> BatchThunk:
        child = self._compile(plan.child, schemas, version)

        def thunk(ev: Evaluator) -> ColumnBatch:
            batch = child(ev)
            columns = batch.columns
            provs = batch.provs
            # First-seen order with ⊕-merged provenance, exactly like
            # Result.merged() over the row path's output.
            first_seen: dict[tuple[Any, ...], int] = {}
            keep: list[int] = []
            merged_provs: list[Provenance] = []
            for i in range(batch.n_rows):
                key = tuple(column[i] for column in columns)
                position = first_seen.get(key)
                if position is None:
                    first_seen[key] = len(keep)
                    keep.append(i)
                    merged_provs.append(provs[i])
                else:
                    merged_provs[position] = plus(merged_provs[position], provs[i])
            return ColumnBatch(
                batch.schema,
                [[column[i] for i in keep] for column in columns],
                merged_provs,
            )

        return thunk

    def _compile_groupby(self, plan, schemas, version) -> BatchThunk:
        from .aggregates import evaluate_groupby_columnar

        child = self._compile(plan.child, schemas, version)
        target = schemas[id(plan)]

        def thunk(ev: Evaluator) -> ColumnBatch:
            return evaluate_groupby_columnar(plan, child(ev), target)

        return thunk
