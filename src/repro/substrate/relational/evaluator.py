"""Plan evaluation with provenance annotation.

The evaluator plays the role of ORCHESTRA in CopyCat (Section 2.3): it
executes logical plans over the catalog and annotates every answer with a
how-provenance expression, so "feedback on auto-complete data" can be
converted "into feedback over the queries that created the data".

Evaluation is eager and tuple-at-a-time; relations at the paper's target
scale ("KB or MB of data, but probably not GB") comfortably fit in memory.

Incremental evaluation (the interactivity fix): expensive nodes — joins,
dependent joins, record-link joins, unions, grouping — consult a
shared-subplan result cache keyed on ``(structural fingerprint,
catalog.version)``, so the many candidate plans produced per suggestion
refresh evaluate their common join prefix once, and a refresh with an
unchanged catalog is nearly free. Streaming nodes (scan/select/project/
rename/limit) stay lazy and uncached, preserving ``Limit``
short-circuiting. See :mod:`repro.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ...analysis.config import ANALYSIS
from ...cache.config import CACHE
from ...cache.fingerprint import plan_fingerprint, uncovered_fields
from ...cache.plan_cache import PlanResultCache
from ...drift.config import DRIFT
from ...drift.quarantine import QUARANTINE_NOTE
from ...errors import EvaluationError, ServiceLookupFailed
from ...obs import METRICS
from ...provenance.expressions import Provenance, Var, plus, times
from ...resilience.degrade import Degradation, degraded_source
from .algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    Scan,
    Select,
    Union,
    walk,
)
from .catalog import Catalog
from .rows import Row, TupleId
from .schema import Schema

AnnotatedRow = tuple[Row, Provenance]


@dataclass
class Result:
    """An evaluated plan: schema plus provenance-annotated rows.

    ``degraded`` records the service failures absorbed while evaluating
    (graceful degradation): the affected rows are present with null service
    outputs and a ``degraded:<Service>`` provenance marker instead of the
    whole evaluation raising.
    """

    schema: Schema
    rows: list[AnnotatedRow]
    degraded: tuple[Degradation, ...] = ()
    # Lazily-built row → ⊕-combined-provenance index shared by
    # provenance_of and merged (each lookup used to be a linear scan).
    _prov_index: dict[Row, Provenance] | None = field(
        default=None, repr=False, compare=False
    )
    _prov_order: list[Row] = field(default_factory=list, repr=False, compare=False)
    _prov_len: int = field(default=-1, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def plain_rows(self) -> list[Row]:
        return [row for row, _ in self.rows]

    def dicts(self) -> list[dict[str, Any]]:
        return [row.as_dict() for row, _ in self.rows]

    def _index(self) -> dict[Row, Provenance]:
        """The row→provenance index, (re)built when the rows changed."""
        if self._prov_index is None or self._prov_len != len(self.rows):
            order: list[Row] = []
            merged: dict[Row, Provenance] = {}
            for row, prov in self.rows:
                if row in merged:
                    merged[row] = plus(merged[row], prov)
                else:
                    merged[row] = prov
                    order.append(row)
            self._prov_index = merged
            self._prov_order = order
            self._prov_len = len(self.rows)
        return self._prov_index

    def provenance_of(self, row: Row) -> Provenance:
        """Combined provenance of every occurrence of *row* in the result."""
        prov = self._index().get(row)
        if prov is None:
            raise EvaluationError(f"row not present in result: {row!r}")
        return prov

    def merged(self) -> "Result":
        """Set-semantics view: duplicates merged, provenance ⊕-combined."""
        index = self._index()
        return Result(
            self.schema,
            [(row, index[row]) for row in self._prov_order],
            degraded=self.degraded,
        )

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    def degraded_services(self) -> tuple[str, ...]:
        """Sorted names of the services whose failures this result absorbed."""
        return tuple(sorted({note.service for note in self.degraded}))


#: Node kinds worth caching: they materialize inputs and/or do superlinear
#: or service-calling work. Streaming nodes (Scan/Select/Project/Rename/
#: Limit) are excluded so laziness — notably Limit short-circuiting — is
#: preserved and cheap nodes don't churn the LRU.
_CACHEABLE_NODES = frozenset(
    {"Join", "DependentJoin", "RecordLinkJoin", "Union", "Distinct", "GroupBy"}
)


class Evaluator:
    """Evaluates :class:`~repro.substrate.relational.algebra.Plan` trees."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.plan_cache = PlanResultCache()
        # Service failures absorbed during the current run() (graceful
        # degradation); attached to the Result and reset per run.
        self._degraded: list[Degradation] = []

    def run(self, plan: Plan) -> Result:
        schema = plan.output_schema(self.catalog)
        self._degraded = []
        rows = list(self._eval(plan))
        return Result(schema, rows, degraded=tuple(self._degraded))

    # -- dispatch -----------------------------------------------------------
    def _eval(self, plan: Plan) -> Iterable[AnnotatedRow]:
        kind = type(plan).__name__
        method = getattr(self, f"_eval_{kind.lower()}", None)
        if method is None:
            raise EvaluationError(f"no evaluator for plan node {kind}")
        if not CACHE.plan or kind not in _CACHEABLE_NODES:
            return method(plan)
        try:
            fingerprint = plan_fingerprint(plan)
        except TypeError:
            # A plan node with no registered fingerprint (e.g. a subclass
            # reusing a cacheable name) must evaluate uncached: reusing the
            # parent's fingerprint would alias cache entries across types.
            if METRICS.enabled:
                METRICS.inc("analysis.fingerprint_unregistered")
            return method(plan)
        version = self.catalog.version
        cached = self.plan_cache.get(fingerprint, version)
        if cached is not None:
            return cached
        degraded_before = len(self._degraded)
        rows = list(method(plan))
        # A degraded evaluation is transient by nature: caching it would
        # keep serving the partial result after the service recovers, the
        # same poisoning the service memo guards against.
        if len(self._degraded) != degraded_before:
            if METRICS.enabled:
                METRICS.inc("cache.plan.degraded_uncached")
        elif self._cache_admissible(plan):
            self.plan_cache.put(fingerprint, version, rows)
        return rows

    @staticmethod
    def _cache_admissible(plan: Plan) -> bool:
        """Admission gate: refuse to cache a plan whose fingerprint has
        field gaps anywhere in the tree — two plans differing only in an
        uncovered field would share the entry. Field coverage is recomputed
        (not memoized per class) so test-defined subclasses stay collectable.
        """
        if not ANALYSIS.enabled or not ANALYSIS.gate_cache:
            return True
        for node in walk(plan):
            if uncovered_fields(type(node)):
                if METRICS.enabled:
                    METRICS.inc("analysis.cache_gate_rejections")
                return False
        return True

    def _eval_scan(self, plan: Scan) -> Iterable[AnnotatedRow]:
        annotated = self.catalog.relation(plan.source).annotated()
        notes = self.catalog.metadata(plan.source).notes
        if DRIFT.enabled:
            quarantined = notes.get(QUARANTINE_NOTE)
            if quarantined is not None:
                # A quarantined source serves its last-known-good rows, but
                # the result is flagged so suggestions built from it are
                # rank-penalized and DEGRADED-marked like a dead service's.
                self._degraded.append(
                    Degradation(
                        service=plan.source,
                        reason=f"source quarantined: {quarantined}",
                    )
                )
        # Cross-learner feedback (paper §5 "Feedback interaction"): tuple
        # demotions can mark specific base rows as distrusted; scans skip
        # them so every downstream suggestion reflects the feedback.
        distrusted = notes.get("distrusted_rows")
        if not distrusted:
            return annotated
        return [
            (row, prov)
            for index, (row, prov) in enumerate(annotated)
            if index not in distrusted
        ]

    def _eval_select(self, plan: Select) -> Iterable[AnnotatedRow]:
        for row, prov in self._eval(plan.child):
            if plan.predicate.matches(row):
                yield row, prov

    def _eval_project(self, plan: Project) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield row.project(plan.names, target), prov

    def _eval_rename(self, plan: Rename) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield Row(target, row.values), prov

    def _eval_join(self, plan: Join) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        right_schema = plan.right.output_schema(self.catalog)
        left_keys = tuple(left for left, _ in plan.conditions)
        right_keys = tuple(right for _, right in plan.conditions)
        # Hash join on the conjunction of all conditions.
        index: dict[tuple[Any, ...], list[AnnotatedRow]] = {}
        for row, prov in right_rows:
            key = tuple(row[name] for name in right_keys)
            if any(part is None for part in key):
                continue
            index.setdefault(key, []).append((row, prov))
        kept_right = [name for name in right_schema.names if name not in set(right_keys)]
        for row, prov in left_rows:
            key = tuple(row[name] for name in left_keys)
            if any(part is None for part in key):
                continue
            for other, other_prov in index.get(key, []):
                values = list(row.values) + [other[name] for name in kept_right]
                yield Row(target, values), times(prov, other_prov)

    def _eval_dependentjoin(self, plan: DependentJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        service = self.catalog.service(plan.service)
        input_map = dict(plan.input_map)
        # Identical bindings across child rows hit the service once: the
        # (outputs, ids) pair per distinct binding is computed on first use
        # and replayed for duplicates — independent of (and on top of) the
        # service's own invoke memoization.
        seen: dict[tuple[Any, ...], list[tuple[list[Any], Any]]] = {}
        output_names = service.output_names
        null_outputs = [None] * len(output_names)
        for row, prov in self._eval(plan.child):
            inputs = {svc_input: row[child_attr] for svc_input, child_attr in input_map.items()}
            if any(value is None for value in inputs.values()):
                continue
            try:
                binding = tuple(sorted(inputs.items()))
                expansions = seen.get(binding)
            except TypeError:  # unhashable input value: invoke directly
                binding, expansions = None, None
            if expansions is None:
                try:
                    invoked = service.invoke(inputs)
                except ServiceLookupFailed as exc:
                    # Graceful degradation: keep the row, null the service
                    # outputs, and mark its provenance with a pseudo-source
                    # naming the failed service. Failed bindings are never
                    # recorded in `seen`, so a later duplicate may recover.
                    self._degraded.append(
                        Degradation(service=plan.service, reason=str(exc))
                    )
                    if METRICS.enabled:
                        METRICS.inc("resilience.degraded_rows")
                    marker = Var(TupleId(degraded_source(plan.service), 0))
                    values = list(row.values) + null_outputs
                    yield Row(target, values), times(prov, marker)
                    continue
                expansions = []
                for result in invoked:
                    result_id = service.result_tuple_id(result)
                    expansions.append(
                        ([result[name] for name in output_names], result_id)
                    )
                if binding is not None:
                    seen[binding] = expansions
            for out_values, result_id in expansions:
                values = list(row.values) + out_values
                yield Row(target, values), times(prov, Var(result_id))

    def _eval_recordlinkjoin(self, plan: RecordLinkJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        candidates = self._link_candidates(plan, left_rows, right_rows)
        score = plan.linker.score
        for i, (row, prov) in enumerate(left_rows):
            if plan.best_only:
                # Single max pass (no sort): ties keep the earliest right
                # row, matching the previous stable sort-then-slice.
                best: AnnotatedRow | None = None
                best_score = float("-inf")
                for j in candidates(i):
                    other, other_prov = right_rows[j]
                    current = score(row, other)
                    if current >= plan.threshold and current > best_score:
                        best, best_score = (other, other_prov), current
                matched = [best] if best is not None else []
            else:
                matched = [
                    right_rows[j]
                    for j in candidates(i)
                    if score(row, right_rows[j][0]) >= plan.threshold
                ]
            for other, other_prov in matched:
                values = list(row.values) + list(other.values)
                yield Row(target, values), times(prov, other_prov)

    def _link_candidates(self, plan: RecordLinkJoin, left_rows, right_rows):
        """Right-row candidate indices per left index: blocked or full.

        Routes through :func:`repro.linking.blocking.candidate_pairs` when
        the linker exposes block-key attribute pairs and the cross product
        is large enough to be worth pruning (blocking is an approximation:
        pairs sharing no token are never scored). Otherwise every left row
        considers every right row.
        """
        n_pairs = len(left_rows) * len(right_rows)
        pairs = None
        if CACHE.blocking and n_pairs >= CACHE.blocking_min_pairs:
            attr_pairs = plan.linker.block_attribute_pairs()
            if attr_pairs:
                from ...linking.blocking import candidate_pairs, token_block_key

                key_fns = [
                    (token_block_key(left), token_block_key(right))
                    for left, right in attr_pairs
                ]
                blocked = candidate_pairs(
                    [row for row, _ in left_rows],
                    [row for row, _ in right_rows],
                    key_fns,
                )
                pairs = {}
                for i, j in blocked:
                    pairs.setdefault(i, []).append(j)
                if METRICS.enabled:
                    METRICS.inc("cache.blocking.joins")
                    METRICS.inc("cache.blocking.pairs_pruned", n_pairs - len(blocked))
        if pairs is None:
            all_right = range(len(right_rows))
            return lambda i: all_right
        empty: list[int] = []
        return lambda i: pairs.get(i, empty)

    def _eval_union(self, plan: Union) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for part in plan.parts:
            for row, prov in self._eval(part):
                yield row.pad_to(target), prov

    def _eval_distinct(self, plan: Distinct) -> Iterable[AnnotatedRow]:
        inner = Result(plan.output_schema(self.catalog), list(self._eval(plan.child)))
        return iter(inner.merged().rows)

    def _eval_groupby(self, plan) -> Iterable[AnnotatedRow]:
        from .aggregates import evaluate_groupby

        return iter(evaluate_groupby(plan, self._eval(plan.child), self.catalog))

    def _eval_limit(self, plan: Limit) -> Iterable[AnnotatedRow]:
        # Stop *exactly* at count: pulling even one extra child row could
        # mean an extra service invocation under a dependent join.
        if plan.count <= 0:
            return
        emitted = 0
        for row, prov in self._eval(plan.child):
            yield row, prov
            emitted += 1
            if emitted >= plan.count:
                break
