"""Plan evaluation with provenance annotation.

The evaluator plays the role of ORCHESTRA in CopyCat (Section 2.3): it
executes logical plans over the catalog and annotates every answer with a
how-provenance expression, so "feedback on auto-complete data" can be
converted "into feedback over the queries that created the data".

Evaluation is eager and tuple-at-a-time; relations at the paper's target
scale ("KB or MB of data, but probably not GB") comfortably fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ...errors import EvaluationError
from ...provenance.expressions import Provenance, Var, plus, times
from .algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    Scan,
    Select,
    Union,
)
from .catalog import Catalog
from .rows import Row
from .schema import Schema

AnnotatedRow = tuple[Row, Provenance]


@dataclass
class Result:
    """An evaluated plan: schema plus provenance-annotated rows."""

    schema: Schema
    rows: list[AnnotatedRow]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def plain_rows(self) -> list[Row]:
        return [row for row, _ in self.rows]

    def dicts(self) -> list[dict[str, Any]]:
        return [row.as_dict() for row, _ in self.rows]

    def provenance_of(self, row: Row) -> Provenance:
        """Combined provenance of every occurrence of *row* in the result."""
        matches = [prov for candidate, prov in self.rows if candidate == row]
        if not matches:
            raise EvaluationError(f"row not present in result: {row!r}")
        return plus(*matches)

    def merged(self) -> "Result":
        """Set-semantics view: duplicates merged, provenance ⊕-combined."""
        order: list[Row] = []
        merged: dict[Row, Provenance] = {}
        for row, prov in self.rows:
            if row in merged:
                merged[row] = plus(merged[row], prov)
            else:
                merged[row] = prov
                order.append(row)
        return Result(self.schema, [(row, merged[row]) for row in order])


class Evaluator:
    """Evaluates :class:`~repro.substrate.relational.algebra.Plan` trees."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def run(self, plan: Plan) -> Result:
        schema = plan.output_schema(self.catalog)
        rows = list(self._eval(plan))
        return Result(schema, rows)

    # -- dispatch -----------------------------------------------------------
    def _eval(self, plan: Plan) -> Iterable[AnnotatedRow]:
        method = getattr(self, f"_eval_{type(plan).__name__.lower()}", None)
        if method is None:
            raise EvaluationError(f"no evaluator for plan node {type(plan).__name__}")
        return method(plan)

    def _eval_scan(self, plan: Scan) -> Iterable[AnnotatedRow]:
        annotated = self.catalog.relation(plan.source).annotated()
        # Cross-learner feedback (paper §5 "Feedback interaction"): tuple
        # demotions can mark specific base rows as distrusted; scans skip
        # them so every downstream suggestion reflects the feedback.
        distrusted = self.catalog.metadata(plan.source).notes.get("distrusted_rows")
        if not distrusted:
            return annotated
        return [
            (row, prov)
            for index, (row, prov) in enumerate(annotated)
            if index not in distrusted
        ]

    def _eval_select(self, plan: Select) -> Iterable[AnnotatedRow]:
        for row, prov in self._eval(plan.child):
            if plan.predicate.matches(row):
                yield row, prov

    def _eval_project(self, plan: Project) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield row.project(plan.names, target), prov

    def _eval_rename(self, plan: Rename) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for row, prov in self._eval(plan.child):
            yield Row(target, row.values), prov

    def _eval_join(self, plan: Join) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        right_schema = plan.right.output_schema(self.catalog)
        left_keys = tuple(left for left, _ in plan.conditions)
        right_keys = tuple(right for _, right in plan.conditions)
        # Hash join on the conjunction of all conditions.
        index: dict[tuple[Any, ...], list[AnnotatedRow]] = {}
        for row, prov in right_rows:
            key = tuple(row[name] for name in right_keys)
            if any(part is None for part in key):
                continue
            index.setdefault(key, []).append((row, prov))
        kept_right = [name for name in right_schema.names if name not in set(right_keys)]
        for row, prov in left_rows:
            key = tuple(row[name] for name in left_keys)
            if any(part is None for part in key):
                continue
            for other, other_prov in index.get(key, []):
                values = list(row.values) + [other[name] for name in kept_right]
                yield Row(target, values), times(prov, other_prov)

    def _eval_dependentjoin(self, plan: DependentJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        service = self.catalog.service(plan.service)
        input_map = dict(plan.input_map)
        for row, prov in self._eval(plan.child):
            inputs = {svc_input: row[child_attr] for svc_input, child_attr in input_map.items()}
            if any(value is None for value in inputs.values()):
                continue
            for result in service.invoke(inputs):
                result_id = service.result_tuple_id(result)
                values = list(row.values) + [result[name] for name in service.output_names]
                yield Row(target, values), times(prov, Var(result_id))

    def _eval_recordlinkjoin(self, plan: RecordLinkJoin) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        left_rows = list(self._eval(plan.left))
        right_rows = list(self._eval(plan.right))
        for row, prov in left_rows:
            scored: list[tuple[float, AnnotatedRow]] = []
            for other, other_prov in right_rows:
                score = plan.linker.score(row, other)
                if score >= plan.threshold:
                    scored.append((score, (other, other_prov)))
            if not scored:
                continue
            if plan.best_only:
                scored.sort(key=lambda pair: -pair[0])
                scored = scored[:1]
            for _, (other, other_prov) in scored:
                values = list(row.values) + list(other.values)
                yield Row(target, values), times(prov, other_prov)

    def _eval_union(self, plan: Union) -> Iterable[AnnotatedRow]:
        target = plan.output_schema(self.catalog)
        for part in plan.parts:
            for row, prov in self._eval(part):
                yield row.pad_to(target), prov

    def _eval_distinct(self, plan: Distinct) -> Iterable[AnnotatedRow]:
        inner = Result(plan.output_schema(self.catalog), list(self._eval(plan.child)))
        return iter(inner.merged().rows)

    def _eval_groupby(self, plan) -> Iterable[AnnotatedRow]:
        from .aggregates import evaluate_groupby

        return iter(evaluate_groupby(plan, self._eval(plan.child), self.catalog))

    def _eval_limit(self, plan: Limit) -> Iterable[AnnotatedRow]:
        emitted = 0
        for row, prov in self._eval(plan.child):
            if emitted >= plan.count:
                break
            emitted += 1
            yield row, prov
