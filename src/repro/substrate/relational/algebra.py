"""Logical query plans.

Plans are immutable operator trees. The operator set matches what CopyCat's
integration learner emits (Section 4): scans of catalog sources, selections,
projections, equijoins (conjunction of all shared-attribute predicates),
*dependent joins* that feed attributes into a bound service (the Figure 2
Zipcode Resolver pattern), record-linking joins (approximate joins), unions
with null padding, and renames.

``output_schema(catalog)`` computes the schema bottom-up so the workspace
and suggestion machinery can reason about plans without executing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ...errors import EvaluationError, SchemaError
from .predicates import Predicate
from .rows import Row
from .schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .catalog import Catalog


class Plan:
    """Base class for logical plan nodes."""

    def output_schema(self, catalog: "Catalog") -> Schema:
        raise NotImplementedError

    def children(self) -> tuple["Plan", ...]:
        return ()

    def sources(self) -> frozenset[str]:
        """Names of every base source/service mentioned in the plan."""
        out: set[str] = set()
        self._collect_sources(out)
        return frozenset(out)

    def _collect_sources(self, out: set[str]) -> None:
        for child in self.children():
            child._collect_sources(out)

    def describe(self) -> str:
        """One-line human-readable description (used in explanations)."""
        raise NotImplementedError

    def render(self, indent: int = 0) -> str:
        """Multi-line indented tree rendering."""
        lines = [" " * indent + self.describe()]
        for child in self.children():
            lines.append(child.render(indent + 2))
        return "\n".join(lines)


@dataclass(frozen=True)
class Scan(Plan):
    """Scan a named base relation from the catalog."""

    source: str

    def output_schema(self, catalog: "Catalog") -> Schema:
        return catalog.relation(self.source).schema

    def _collect_sources(self, out: set[str]) -> None:
        out.add(self.source)

    def describe(self) -> str:
        return f"Scan({self.source})"


@dataclass(frozen=True)
class Select(Plan):
    child: Plan
    predicate: Predicate

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.child.output_schema(catalog)

    def describe(self) -> str:
        return f"Select[{self.predicate}]"


@dataclass(frozen=True)
class Project(Plan):
    child: Plan
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.child.output_schema(catalog).project(self.names)

    def describe(self) -> str:
        return f"Project[{', '.join(self.names)}]"


@dataclass(frozen=True)
class Rename(Plan):
    child: Plan
    mapping: tuple[tuple[str, str], ...]  # (old, new) pairs

    def __post_init__(self) -> None:
        object.__setattr__(self, "mapping", tuple(tuple(pair) for pair in self.mapping))

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.child.output_schema(catalog).rename(dict(self.mapping))

    def describe(self) -> str:
        pairs = ", ".join(f"{old}->{new}" for old, new in self.mapping)
        return f"Rename[{pairs}]"


@dataclass(frozen=True)
class Join(Plan):
    """Equijoin on the conjunction of ``conditions`` (left attr, right attr).

    The paper's default: "If sets of sources have multiple attributes in
    common, we restrict the queries to match on all the attributes (i.e., we
    take the conjunction of all possible join predicates)." (Section 4.1)
    """

    left: Plan
    right: Plan
    conditions: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(tuple(c) for c in self.conditions))
        if not self.conditions:
            raise EvaluationError("Join requires at least one equality condition")

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_schema(self, catalog: "Catalog") -> Schema:
        left_schema = self.left.output_schema(catalog)
        right_schema = self.right.output_schema(catalog)
        right_join_attrs = {right for _, right in self.conditions}
        remaining = [
            attr for attr in right_schema if attr.name not in right_join_attrs
        ]
        return left_schema.concat(Schema(remaining), disambiguate=True)

    def describe(self) -> str:
        conds = " AND ".join(f"{l}={r}" for l, r in self.conditions)
        return f"Join[{conds}]"


@dataclass(frozen=True)
class DependentJoin(Plan):
    """Feed child attributes into a bound service; append its outputs.

    ``input_map`` maps each *service input* attribute to the child attribute
    providing its value — the directed arrows in the Figure 2 explanation
    pane ("The Street and City values are fed into the Zipcode Resolver").
    """

    child: Plan
    service: str
    input_map: tuple[tuple[str, str], ...]  # (service input, child attribute)

    def __post_init__(self) -> None:
        object.__setattr__(self, "input_map", tuple(tuple(pair) for pair in self.input_map))

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def _collect_sources(self, out: set[str]) -> None:
        out.add(self.service)
        super()._collect_sources(out)

    def output_schema(self, catalog: "Catalog") -> Schema:
        child_schema = self.child.output_schema(catalog)
        service = catalog.service(self.service)
        mapped_inputs = {service_input for service_input, _ in self.input_map}
        missing = [name for name in service.input_names if name not in mapped_inputs]
        if missing:
            raise SchemaError(
                f"dependent join on {self.service!r} leaves inputs unbound: {missing}"
            )
        for service_input, child_attr in self.input_map:
            if child_attr not in child_schema:
                raise SchemaError(
                    f"dependent join binds {service_input!r} from missing child "
                    f"attribute {child_attr!r}"
                )
        outputs = [service.schema.attribute(name) for name in service.output_names]
        return child_schema.concat(Schema(outputs), disambiguate=True)

    def describe(self) -> str:
        binds = ", ".join(f"{svc}<-{attr}" for svc, attr in self.input_map)
        return f"DependentJoin[{self.service}; {binds}]"


@dataclass(frozen=True)
class RecordLinkJoin(Plan):
    """Approximate join: link left rows to best-matching right rows.

    ``linker`` scores a (left_row, right_row) pair; pairs scoring at or above
    ``threshold`` are linked. With ``best_only`` each left row keeps only its
    highest-scoring match (the Example 1 contact-matching behaviour).
    """

    left: Plan
    right: Plan
    linker: "RowLinker"
    threshold: float = 0.5
    best_only: bool = True

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.left.output_schema(catalog).concat(
            self.right.output_schema(catalog), disambiguate=True
        )

    def describe(self) -> str:
        mode = "best" if self.best_only else "all"
        return f"RecordLinkJoin[{self.linker.describe()}; >= {self.threshold}; {mode}]"


class RowLinker:
    """Interface for record-linking scorers used by :class:`RecordLinkJoin`."""

    def score(self, left: Row, right: Row) -> float:
        raise NotImplementedError

    def block_attribute_pairs(self) -> tuple[tuple[str, str], ...] | None:
        """(left attr, right attr) pairs usable as blocking keys, if any.

        When a linker compares known attribute pairs, the evaluator can
        route large record-link joins through token blocking
        (:func:`repro.linking.blocking.candidate_pairs`) instead of the
        full cross product. ``None`` (the default) means "not derivable":
        the join always scores every pair.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Union(Plan):
    """Union with null padding onto the merged (homogeneous) schema."""

    parts: tuple[Plan, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))
        if not self.parts:
            raise EvaluationError("Union requires at least one input")

    def children(self) -> tuple[Plan, ...]:
        return self.parts

    def output_schema(self, catalog: "Catalog") -> Schema:
        merged = self.parts[0].output_schema(catalog)
        for part in self.parts[1:]:
            merged = merged.merge_for_union(part.output_schema(catalog))
        return merged

    def describe(self) -> str:
        return f"Union[{len(self.parts)} inputs]"


@dataclass(frozen=True)
class Distinct(Plan):
    """Set semantics: merge duplicate rows, ⊕-combining their provenance."""

    child: Plan

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.child.output_schema(catalog)

    def describe(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class Limit(Plan):
    child: Plan
    count: int

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def output_schema(self, catalog: "Catalog") -> Schema:
        return self.child.output_schema(catalog)

    def describe(self) -> str:
        return f"Limit[{self.count}]"


def walk(plan: Plan) -> Iterable[Plan]:
    """Pre-order traversal of a plan tree."""
    yield plan
    for child in plan.children():
        yield from walk(child)
