"""Columnar batches: per-column value arrays for batch-at-a-time evaluation.

The row-at-a-time evaluator allocates a :class:`~repro.substrate.relational.
rows.Row` per tuple per operator and resolves attribute positions through a
dict on every access. A :class:`ColumnBatch` stores the same annotated
relation transposed — one plain Python list per attribute, plus a parallel
list of provenance expressions — so operators move whole columns with list
comprehensions (C-speed loops), projections become list picks, and renames
are free. Rows are materialized exactly once, at the batch → ``Result``
boundary.

Batches are immutable by contract: operators never mutate a column list in
place, so columns (and whole batches, via the scan-transpose and plan
caches) can be shared between batches without copying.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ...provenance.expressions import Provenance, Var
from ...util.text import INTERN
from .config import COLUMNAR
from .rows import Row, TupleId
from .schema import Schema

AnnotatedRow = tuple[Row, Provenance]


class ColumnBatch:
    """A schema, one value list per attribute, and per-row provenance.

    ``columns[k][i]`` is row *i*'s value for attribute ``schema.names[k]``;
    ``provs[i]`` is row *i*'s provenance expression. ``n_rows`` is stored
    explicitly so zero-attribute schemas (possible after degenerate
    projections) still know their cardinality.
    """

    __slots__ = ("schema", "columns", "provs", "n_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[list[Any]],
        provs: list[Provenance],
    ):
        self.schema = schema
        self.columns = list(columns)
        self.provs = provs
        self.n_rows = len(provs)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_annotated(
        cls, schema: Schema, annotated: Iterable[AnnotatedRow]
    ) -> "ColumnBatch":
        """Transpose ``(Row, Provenance)`` pairs into column arrays."""
        provs: list[Provenance] = []
        value_rows: list[tuple[Any, ...]] = []
        for row, prov in annotated:
            value_rows.append(row.values)
            provs.append(prov)
        if value_rows:
            columns = [list(col) for col in zip(*value_rows)]
        else:
            columns = [[] for _ in schema.names]
        return cls(schema, columns, provs)

    @classmethod
    def from_relation_rows(
        cls, source: str, schema: Schema, rows: Sequence[Row]
    ) -> "ColumnBatch":
        """Transpose a base relation, interning string cells via the pool."""
        if rows:
            columns = [list(col) for col in zip(*[row.values for row in rows])]
        else:
            columns = [[] for _ in schema.names]
        if COLUMNAR.intern:
            columns = [INTERN.intern_all(column) for column in columns]
        provs: list[Provenance] = [
            Var(TupleId(source, index)) for index in range(len(rows))
        ]
        return cls(schema, columns, provs)

    # -- protocol ------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_rows

    def column(self, name: str) -> list[Any]:
        """The value list for attribute *name*."""
        return self.columns[self.schema.position(name)]

    def row_values(self, index: int) -> tuple[Any, ...]:
        return tuple(column[index] for column in self.columns)

    # -- derivations ---------------------------------------------------------
    def gather(self, indices: Sequence[int], schema: Schema | None = None) -> "ColumnBatch":
        """A new batch keeping ``indices`` rows, in the given order."""
        provs = self.provs
        return ColumnBatch(
            schema if schema is not None else self.schema,
            [[column[i] for i in indices] for column in self.columns],
            [provs[i] for i in indices],
        )

    def with_schema(self, schema: Schema) -> "ColumnBatch":
        """Rename/retype: same columns and provenance under a new schema."""
        return ColumnBatch(schema, self.columns, self.provs)

    # -- materialization -----------------------------------------------------
    def to_annotated(self) -> list[AnnotatedRow]:
        """Materialize ``(Row, Provenance)`` pairs — the Result boundary.

        The single place columnar evaluation allocates Row objects; uses
        the trusted constructor (values are already schema-shaped).
        """
        schema = self.schema
        from_values = Row.from_values
        if not self.columns:
            return [(from_values(schema, ()), prov) for prov in self.provs]
        return [
            (from_values(schema, values), prov)
            for values, prov in zip(zip(*self.columns), self.provs)
        ]

    def __repr__(self) -> str:
        return (
            f"ColumnBatch({self.n_rows} rows × {len(self.columns)} cols, "
            f"{self.schema!r})"
        )
