"""Columnar-evaluation configuration: one process-wide switch set.

Mirrors :mod:`repro.cache.config` / :mod:`repro.resilience.config`: a
singleton (:data:`COLUMNAR`) of plain attributes that the evaluator's hot
path reads directly, with programmatic overrides for tests and benchmarks
(:meth:`ColumnarConfig.disabled`, :meth:`ColumnarConfig.overridden`) and
environment variables read once at import:

- ``REPRO_COLUMNAR=0`` disables columnar batch evaluation entirely — every
  plan takes the row-at-a-time path and behaves exactly as before this
  layer existed (the CI ``columnar-parity`` job runs tier-1 this way);
- ``REPRO_COLUMNAR_COMPILE_CAPACITY`` bounds the compiled-plan memo
  (closures precompiled per ``(fingerprint, catalog.version)``);
- ``REPRO_COLUMNAR_SCAN_CAPACITY`` bounds the scan-transpose cache
  (per-source column arrays, keyed on ``(source, catalog.version)``);
- ``REPRO_COLUMNAR_INTERN=0`` turns off string interning in scan
  transposition (values pass through untouched).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


class ColumnarConfig:
    """Mutable knobs for the columnar batch evaluator."""

    def __init__(self) -> None:
        #: master switch; off reproduces row-at-a-time behavior bit-for-bit.
        self.enabled = _env_flag("REPRO_COLUMNAR", True)
        #: compiled-plan memo entries (closures per fingerprint × version).
        self.compile_capacity = _env_int("REPRO_COLUMNAR_COMPILE_CAPACITY", 512)
        #: scan-transpose cache entries (column arrays per source × version).
        self.scan_capacity = _env_int("REPRO_COLUMNAR_SCAN_CAPACITY", 128)
        #: intern string cell values while transposing scans.
        self.intern = _env_flag("REPRO_COLUMNAR_INTERN", True)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = ("enabled", "compile_capacity", "scan_capacity", "intern")

    @contextmanager
    def disabled(self):
        """Temporarily force the row-at-a-time path."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown columnar knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"ColumnarConfig({state}, compile={self.compile_capacity}, "
            f"scan={self.scan_capacity}, intern={'on' if self.intern else 'off'})"
        )


#: The process-wide columnar configuration the evaluator consults.
COLUMNAR = ColumnarConfig()
