"""In-memory relations.

A :class:`Relation` is a named, schema-typed bag of rows. Base relations are
what the catalog stores for imported sources; every row has a stable
:class:`~repro.substrate.relational.rows.TupleId` used as its provenance
variable.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ...errors import SchemaError
from ...provenance.expressions import Provenance, Var
from .rows import Row, TupleId
from .schema import Schema


class Relation:
    """A named bag of rows over a fixed schema."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row | Mapping[str, Any] | Iterable[Any]] = ()):
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        for row in rows:
            self.add(row)

    # -- mutation -------------------------------------------------------------
    def add(self, row: Row | Mapping[str, Any] | Iterable[Any]) -> TupleId:
        """Append a row (coercing dicts/sequences) and return its TupleId."""
        if isinstance(row, Row):
            if row.schema.names != self.schema.names:
                raise SchemaError(
                    f"row schema {row.schema.names} does not match relation "
                    f"{self.name!r} schema {self.schema.names}"
                )
            coerced = Row(self.schema, row.values)
        else:
            coerced = Row(self.schema, row)
        self._rows.append(coerced)
        return TupleId(self.name, len(self._rows) - 1)

    def extend(self, rows: Iterable[Row | Mapping[str, Any] | Iterable[Any]]) -> list[TupleId]:
        return [self.add(row) for row in rows]

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def rows(self) -> list[Row]:
        return list(self._rows)

    def tuple_id(self, index: int) -> TupleId:
        if not 0 <= index < len(self._rows):
            raise IndexError(f"{self.name}: row index {index} out of range")
        return TupleId(self.name, index)

    def annotated(self) -> list[tuple[Row, Provenance]]:
        """Rows paired with their provenance variables."""
        return [
            (row, Var(TupleId(self.name, index))) for index, row in enumerate(self._rows)
        ]

    def column(self, attribute: str) -> list[Any]:
        """All values of one attribute, in row order."""
        position = self.schema.position(attribute)
        return [row.values[position] for row in self._rows]

    def distinct_values(self, attribute: str) -> set[Any]:
        return set(self.column(attribute))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self._rows)} rows, {self.schema!r})"


def relation_from_dicts(name: str, schema: Schema, dicts: Iterable[Mapping[str, Any]]) -> Relation:
    """Build a relation from an iterable of attribute→value mappings."""
    return Relation(name, schema, dicts)
