"""Service registry: the set of predefined services CopyCat knows about.

Section 2.1: "CopyCat has existing knowledge of several data sources and Web
services". The registry bundles construction of the standard service suite
over one gazetteer and registers them into a catalog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..relational.catalog import Catalog, SourceMetadata

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...resilience.faults import FaultPolicy
from .base import Service
from .conversion import make_currency_converter, make_unit_converter
from .directory import make_forward_directory, make_reverse_directory
from .gazetteer import Gazetteer
from .geocode import make_geocoder, make_place_resolver
from .zipcode import make_city_zip_directory, make_zipcode_resolver


class ServiceRegistry:
    """Builds and tracks the predefined service suite."""

    def __init__(self, gazetteer: Gazetteer):
        self.gazetteer = gazetteer
        self._services: dict[str, Service] = {}

    def add(self, service: Service) -> Service:
        self._services[service.name] = service
        return service

    def get(self, name: str) -> Service:
        return self._services[name]

    def names(self) -> list[str]:
        return sorted(self._services)

    def services(self) -> list[Service]:
        return [self._services[name] for name in self.names()]

    # -- standard suite ------------------------------------------------------
    def install_location_services(self) -> "ServiceRegistry":
        self.add(make_zipcode_resolver(self.gazetteer))
        self.add(make_geocoder(self.gazetteer))
        self.add(make_city_zip_directory(self.gazetteer))
        return self

    def install_conversion_services(self) -> "ServiceRegistry":
        self.add(make_currency_converter())
        self.add(make_unit_converter())
        return self

    def install_place_resolver(self, places: Mapping[str, Mapping[str, Any]]) -> "ServiceRegistry":
        self.add(make_place_resolver(places))
        return self

    def install_directories(self, contacts: Sequence[Mapping[str, str]]) -> "ServiceRegistry":
        self.add(make_reverse_directory(contacts))
        self.add(make_forward_directory(contacts))
        return self

    def register_all(self, catalog: Catalog) -> None:
        """Register every built service into *catalog* as predefined."""
        for service in self.services():
            catalog.add_service(
                service, metadata=SourceMetadata(origin="predefined"), replace=True
            )

    # -- fault injection (repro.resilience) ----------------------------------
    def inject_faults(self, policy: "FaultPolicy") -> "ServiceRegistry":
        """Wrap every registered service's backend with *policy*.

        Per-instance alternative to arming the global
        :data:`repro.resilience.FAULTS` injector: only this registry's
        services fail, and :meth:`clear_faults` restores them.
        """
        for service in self.services():
            policy.wrap(service)
        return self

    def clear_faults(self) -> "ServiceRegistry":
        """Undo :meth:`inject_faults` on every registered service."""
        from ...resilience.faults import FaultPolicy

        for service in self.services():
            FaultPolicy.unwrap(service)
        return self
