"""Geocoding and address-resolution services.

Example 1: the integrator copies a shelter name "into Google Maps to get its
full address and geocode ... In some cases the shelter name may be ambiguous
and might return multiple answers: here CopyCat would show the alternatives
and allow the integrator to select the appropriate location."

Two services are provided:

- :func:`make_geocoder` — (Street, City) → (Lat, Lon), exact, functional.
- :func:`make_place_resolver` — Name → (Street, City, Lat, Lon): a fuzzy
  place-name lookup with controllable ambiguity (several candidate rows for
  a sufficiently generic query), modeling the map-site search box.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ...util.strings import token_jaccard
from ..relational.schema import (
    CITY,
    LATITUDE,
    LONGITUDE,
    NAME,
    STREET,
    Attribute,
    BindingPattern,
    Schema,
)
from .base import Service, TableBackedService
from .gazetteer import Gazetteer

GEOCODER_NAME = "Geocoder"
PLACE_RESOLVER_NAME = "PlaceResolver"


def make_geocoder(gazetteer: Gazetteer, name: str = GEOCODER_NAME) -> TableBackedService:
    """(Street, City) → (Lat, Lon) over the gazetteer."""
    schema = Schema(
        [
            Attribute("Street", STREET),
            Attribute("City", CITY),
            Attribute("Lat", LATITUDE),
            Attribute("Lon", LONGITUDE),
        ]
    )
    table = [
        {
            "Street": address.street,
            "City": address.city,
            "Lat": address.lat,
            "Lon": address.lon,
        }
        for address in gazetteer.addresses
    ]
    return TableBackedService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Street", "City")),
        table=table,
        cost=1.0,
    )


class PlaceResolver(Service):
    """Fuzzy place-name search: Name → (Street, City, Lat, Lon).

    ``places`` maps a place name to its address; lookups match on token
    overlap so a partial query like ``"Monarch High"`` finds
    ``"Monarch High School"``, and a generic query like ``"Community
    Center"`` returns *multiple* candidates (the paper's ambiguity case).
    """

    def __init__(
        self,
        places: Mapping[str, Mapping[str, Any]],
        name: str = PLACE_RESOLVER_NAME,
        min_overlap: float = 0.5,
        max_results: int = 5,
    ):
        schema = Schema(
            [
                Attribute("Name", NAME),
                Attribute("Street", STREET),
                Attribute("City", CITY),
                Attribute("Lat", LATITUDE),
                Attribute("Lon", LONGITUDE),
            ]
        )
        super().__init__(name, schema, BindingPattern(inputs=("Name",)), cost=1.2)
        self._places = {place: dict(info) for place, info in places.items()}
        self._min_overlap = min_overlap
        self._max_results = max_results

    def _lookup(self, inputs: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        query = str(inputs["Name"])
        scored: list[tuple[float, str]] = []
        for place in self._places:
            if place.lower() == query.lower():
                scored.append((1.01, place))  # exact match outranks everything
                continue
            overlap = token_jaccard(place, query)
            if overlap >= self._min_overlap:
                scored.append((overlap, place))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        out = []
        for _, place in scored[: self._max_results]:
            info = self._places[place]
            out.append(
                {
                    "Street": info["Street"],
                    "City": info["City"],
                    "Lat": info["Lat"],
                    "Lon": info["Lon"],
                }
            )
        return out


def make_place_resolver(
    places: Mapping[str, Mapping[str, Any]], name: str = PLACE_RESOLVER_NAME
) -> PlaceResolver:
    """Build a :class:`PlaceResolver` from ``{place name: address info}``."""
    return PlaceResolver(places, name=name)
