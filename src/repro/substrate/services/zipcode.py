"""The zip-code resolver service of Figure 2.

"CopyCat has existing knowledge of several data sources and Web services,
including a zip code resolver that uses Google Maps to find zip codes using
address information." (Section 2.1). Modeled as a bound relation
``ZipcodeResolver(Street^, City^, Zip)`` over the gazetteer.
"""

from __future__ import annotations

from ..relational.schema import (
    CITY,
    STREET,
    ZIPCODE,
    Attribute,
    BindingPattern,
    Schema,
)
from .base import TableBackedService
from .gazetteer import Gazetteer

ZIP_RESOLVER_NAME = "ZipcodeResolver"


def make_zipcode_resolver(gazetteer: Gazetteer, name: str = ZIP_RESOLVER_NAME) -> TableBackedService:
    """Build the (Street, City) → Zip resolver from the gazetteer."""
    schema = Schema(
        [
            Attribute("Street", STREET),
            Attribute("City", CITY),
            Attribute("Zip", ZIPCODE),
        ]
    )
    table = [
        {"Street": address.street, "City": address.city, "Zip": address.zip}
        for address in gazetteer.addresses
    ]
    return TableBackedService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Street", "City")),
        table=table,
        cost=1.0,
    )


def make_city_zip_directory(gazetteer: Gazetteer, name: str = "CityZipDirectory") -> TableBackedService:
    """A coarser resolver: City → all of its Zip codes (ambiguous outputs).

    Used to exercise the "multiple answers" path: a city with several zip
    codes returns several rows, and the user must disambiguate.
    """
    schema = Schema([Attribute("City", CITY), Attribute("Zip", ZIPCODE)])
    table = [
        {"City": city, "Zip": zip_code}
        for city in gazetteer.cities
        for zip_code in gazetteer.zips_for_city(city)
    ]
    return TableBackedService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("City",)),
        table=table,
        cost=1.5,
    )
