"""Simulated web services with input binding restrictions."""

from .base import FunctionService, Service, TableBackedService
from .conversion import (
    EXCHANGE_RATES_USD,
    UNIT_TO_BASE,
    make_currency_converter,
    make_unit_converter,
)
from .directory import make_forward_directory, make_reverse_directory
from .gazetteer import Address, Gazetteer
from .geocode import PlaceResolver, make_geocoder, make_place_resolver
from .registry import ServiceRegistry
from .zipcode import make_city_zip_directory, make_zipcode_resolver

__all__ = [
    "Address", "EXCHANGE_RATES_USD", "FunctionService", "Gazetteer",
    "PlaceResolver", "Service", "ServiceRegistry", "TableBackedService",
    "UNIT_TO_BASE", "make_city_zip_directory", "make_currency_converter",
    "make_forward_directory", "make_geocoder", "make_place_resolver",
    "make_reverse_directory", "make_unit_converter", "make_zipcode_resolver",
]
