"""Currency and unit conversion services.

Section 4: "Predefined services include ... currency and unit conversion."
And the demo plan (Section 8): "including joins, unions, and unit
conversion." These are :class:`FunctionService`s — pure computations with
binding restrictions, exercising the non-lookup service path.
"""

from __future__ import annotations

from ..relational.schema import CURRENCY, NUMBER, TEXT, Attribute, BindingPattern, Schema
from .base import FunctionService

#: Fixed exchange rates (USD per unit), frozen for reproducibility. Rates are
#: era-appropriate (late 2008) but their exact values are immaterial.
EXCHANGE_RATES_USD = {
    "USD": 1.0,
    "EUR": 1.39,
    "GBP": 1.47,
    "CAD": 0.82,
    "JPY": 0.0110,
    "MXN": 0.073,
}

#: Linear length/weight/volume conversions to a base unit.
UNIT_TO_BASE = {
    # length (base: meter)
    "m": ("length", 1.0),
    "km": ("length", 1000.0),
    "mi": ("length", 1609.344),
    "ft": ("length", 0.3048),
    "yd": ("length", 0.9144),
    # weight (base: kilogram)
    "kg": ("weight", 1.0),
    "lb": ("weight", 0.45359237),
    "oz": ("weight", 0.028349523),
    "ton": ("weight", 907.18474),
    # volume (base: liter)
    "l": ("volume", 1.0),
    "gal": ("volume", 3.785411784),
    "qt": ("volume", 0.946352946),
}


def _convert_currency(Amount, From, To):
    try:
        amount = float(Amount)
    except (TypeError, ValueError):
        return []
    rates = EXCHANGE_RATES_USD
    src, dst = str(From).upper(), str(To).upper()
    if src not in rates or dst not in rates:
        return []
    converted = amount * rates[src] / rates[dst]
    return [{"Converted": round(converted, 4)}]


def make_currency_converter(name: str = "CurrencyConverter") -> FunctionService:
    """(Amount, From, To) → Converted using frozen exchange rates."""
    schema = Schema(
        [
            Attribute("Amount", CURRENCY),
            Attribute("From", TEXT),
            Attribute("To", TEXT),
            Attribute("Converted", CURRENCY),
        ]
    )
    return FunctionService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Amount", "From", "To")),
        fn=_convert_currency,
        cost=1.0,
    )


def _convert_unit(Value, From, To):
    try:
        value = float(Value)
    except (TypeError, ValueError):
        return []
    src = UNIT_TO_BASE.get(str(From).lower())
    dst = UNIT_TO_BASE.get(str(To).lower())
    if src is None or dst is None or src[0] != dst[0]:
        return []
    converted = value * src[1] / dst[1]
    return [{"Converted": round(converted, 6)}]


def make_unit_converter(name: str = "UnitConverter") -> FunctionService:
    """(Value, From, To) → Converted across length/weight/volume units."""
    schema = Schema(
        [
            Attribute("Value", NUMBER),
            Attribute("From", TEXT),
            Attribute("To", TEXT),
            Attribute("Converted", NUMBER),
        ]
    )
    return FunctionService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Value", "From", "To")),
        fn=_convert_unit,
        cost=1.0,
    )
