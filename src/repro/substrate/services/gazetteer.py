"""Synthetic gazetteer: the geography all location services agree on.

The paper's services (zip-code resolver, geocoder, address resolution) are
all views over one underlying world. Generating that world once — addresses
with street, city, state, zip, latitude, longitude — guarantees the
simulated services are mutually consistent, which the model learner's
*functional source description* component relies on ("compares the inputs
and outputs of the new source to the existing sources", Section 3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...data.names import SEED_CITIES, generated_city_names, street_address
from ...util.rng import derive_rng, make_rng


@dataclass(frozen=True)
class Address:
    """One gazetteer entry."""

    street: str
    city: str
    state: str
    zip: str
    lat: float
    lon: float

    def key(self) -> tuple[str, str]:
        return (self.street.lower(), self.city.lower())


class Gazetteer:
    """A deterministic synthetic world of addresses around Broward County."""

    STATE = "FL"

    def __init__(
        self,
        n_cities: int = 12,
        streets_per_city: int = 40,
        seed: int | random.Random | None = None,
    ):
        rng = make_rng(seed)
        extra_needed = max(0, n_cities - len(SEED_CITIES))
        self.cities: list[str] = list(SEED_CITIES[:n_cities]) + generated_city_names(
            extra_needed, derive_rng(rng, "cities")
        )
        self._zip_by_city: dict[str, list[str]] = {}
        self._addresses: list[Address] = []
        self._by_key: dict[tuple[str, str], Address] = {}

        zip_rng = derive_rng(rng, "zips")
        next_zip = 33060
        for city in self.cities:
            count = zip_rng.randint(1, 3)
            zips = []
            for _ in range(count):
                zips.append(f"{next_zip:05d}")
                next_zip += zip_rng.randint(1, 4)
            self._zip_by_city[city] = zips

        addr_rng = derive_rng(rng, "addresses")
        for city_index, city in enumerate(self.cities):
            # Anchor each city at a distinct lat/lon cell near (26.2, -80.2).
            base_lat = 26.0 + 0.05 * (city_index % 7) + 0.01 * (city_index // 7)
            base_lon = -80.3 + 0.04 * (city_index % 5) + 0.015 * (city_index // 5)
            streets_seen: set[str] = set()
            while len(streets_seen) < streets_per_city:
                street = street_address(addr_rng)
                if street in streets_seen:
                    continue
                streets_seen.add(street)
                address = Address(
                    street=street,
                    city=city,
                    state=self.STATE,
                    zip=addr_rng.choice(self._zip_by_city[city]),
                    lat=round(base_lat + addr_rng.uniform(-0.02, 0.02), 6),
                    lon=round(base_lon + addr_rng.uniform(-0.02, 0.02), 6),
                )
                self._addresses.append(address)
                self._by_key[address.key()] = address

    # -- lookups ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._addresses)

    @property
    def addresses(self) -> list[Address]:
        return list(self._addresses)

    def lookup(self, street: str, city: str) -> Address | None:
        return self._by_key.get((street.strip().lower(), city.strip().lower()))

    def zips_for_city(self, city: str) -> list[str]:
        return list(self._zip_by_city.get(city, []))

    def addresses_in(self, city: str) -> list[Address]:
        return [address for address in self._addresses if address.city == city]

    def sample(self, count: int, seed: int | random.Random | None = None, cities: list[str] | None = None) -> list[Address]:
        """Sample *count* distinct addresses (optionally restricted by city)."""
        rng = make_rng(seed)
        pool = (
            [a for a in self._addresses if a.city in set(cities)]
            if cities is not None
            else list(self._addresses)
        )
        if count > len(pool):
            raise ValueError(f"cannot sample {count} from {len(pool)} addresses")
        return rng.sample(pool, count)
