"""Phone directory services.

Section 2.3 (model learner): "a phone number might be looked up in a reverse
directory to find a person". Forward (Name → Phone) and reverse
(Phone → Name) directories over the same contact list, so the source
description learner can discover that one is the inverse of the other.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..relational.schema import NAME, PHONE, Attribute, BindingPattern, Schema
from .base import TableBackedService

REVERSE_DIRECTORY_NAME = "ReverseDirectory"
FORWARD_DIRECTORY_NAME = "PhoneDirectory"


def make_reverse_directory(
    contacts: Sequence[Mapping[str, str]], name: str = REVERSE_DIRECTORY_NAME
) -> TableBackedService:
    """Phone → Name lookup. *contacts* rows need ``Name`` and ``Phone``."""
    schema = Schema([Attribute("Phone", PHONE), Attribute("Name", NAME)])
    table = [{"Phone": row["Phone"], "Name": row["Name"]} for row in contacts]
    return TableBackedService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Phone",)),
        table=table,
        cost=1.0,
    )


def make_forward_directory(
    contacts: Sequence[Mapping[str, str]], name: str = FORWARD_DIRECTORY_NAME
) -> TableBackedService:
    """Name → Phone lookup over the same contacts."""
    schema = Schema([Attribute("Name", NAME), Attribute("Phone", PHONE)])
    table = [{"Name": row["Name"], "Phone": row["Phone"]} for row in contacts]
    return TableBackedService(
        name=name,
        schema=schema,
        binding=BindingPattern(inputs=("Name",)),
        table=table,
        cost=1.0,
    )
