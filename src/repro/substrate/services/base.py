"""Service abstraction: relations with input binding restrictions.

Section 4 of the paper: "Services can be modeled as relations that take
input parameters (i.e., ... they have input binding restrictions). Predefined
services include record-linking functions, address resolution, geocoding, and
currency and unit conversion. We also model Web forms as services that
require inputs."

A :class:`Service` exposes a schema and a binding pattern; :meth:`invoke`
takes bound input values and returns the matching output rows. Results are
deterministic, and may contain *multiple* rows when the lookup is ambiguous —
the paper's geocoding example ("the shelter name may be ambiguous and might
return multiple answers").
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from ...analysis.concurrency.runtime import make_lock
from ...cache.config import CACHE
from ...cache.lru import LRUCache
from ...errors import (
    BindingError,
    CircuitOpenError,
    DeadlineExceededError,
    ServiceError,
    ServiceLookupFailed,
    TransientServiceError,
)
from ...obs import METRICS
from ...resilience.breaker import CircuitBreaker, ServiceHealth
from ...resilience.config import RESILIENCE
from ...resilience.faults import FAULTS
from ...resilience.retry import Deadline, RetryPolicy
from ...util.rng import derive_rng, make_rng
from ..relational.rows import TupleId
from ..relational.schema import BindingPattern, Schema


class Service:
    """Abstract simulated web service / Web form."""

    def __init__(self, name: str, schema: Schema, binding: BindingPattern, cost: float = 1.0):
        binding.validate(schema)
        if binding.is_free:
            raise ServiceError(f"service {name!r} must declare at least one input binding")
        self.name = name
        self.schema = schema
        self.binding = binding
        #: Default invocation cost used when the source graph seeds edge weights.
        self.cost = cost
        self._call_count = 0
        self._backend_calls = 0
        # Invoke memoization (repro.cache): full result rows per bound-input
        # tuple. Deterministic services make this safe; invalidate_cache()
        # is the explicit escape hatch for subclasses whose backing data
        # changes.
        self._memo = LRUCache(CACHE.service_capacity, metrics_prefix="service.cache")
        # Interning table assigning stable TupleIds to distinct results, so
        # provenance over service outputs is well-defined and repeatable.
        # Guarded by _lock: a service object may be shared by concurrent
        # sessions (the server's frozen base registers one instance), and
        # two tenants racing the same new result must agree on one id.
        self._result_ids: dict[tuple[Any, ...], TupleId] = {}
        self._lock = make_lock("Service._lock")
        # Resilience state (repro.resilience): a circuit breaker gating the
        # backend, an operational-health ledger the integration learner
        # reads, and a per-invocation counter seeding backoff jitter.
        self.breaker = CircuitBreaker(name)
        self.health = ServiceHealth()
        self._resilient_invocations = 0
        # Installed by FaultPolicy.wrap(); None = _lookup is unwrapped.
        self._fault_wrapped = None

    # -- public API ------------------------------------------------------------
    @property
    def input_names(self) -> tuple[str, ...]:
        return self.binding.inputs

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(name for name in self.schema.names if name not in self.binding.inputs)

    @property
    def call_count(self) -> int:
        """Number of :meth:`invoke` calls made (used by latency accounting)."""
        return self._call_count

    @property
    def backend_calls(self) -> int:
        """Actual backend lookups performed (invokes minus memo hits)."""
        return self._backend_calls

    def invoke(self, inputs: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Invoke the service with *inputs* bound.

        Returns a list of full-schema row dicts (inputs echoed + outputs).
        An empty list is a *definitive* no-match — the dependent join treats
        it as "no answer for these inputs" and it is memoizable. A backend
        *failure* is different: under the resilient path
        (:data:`repro.resilience.RESILIENCE` enabled) transient errors are
        retried with seeded exponential backoff inside a per-invocation
        deadline, gated by this service's circuit breaker; once the budget
        is exhausted :class:`ServiceLookupFailed` is raised, and — unlike a
        definitive no-match — is **never** cached, so a flaky moment cannot
        poison the memo. Repeated successful invocations with the same
        bound inputs are served from a per-service LRU memo
        (:data:`repro.cache.CACHE` ``.service``) without touching the
        backend.
        """
        self.binding.check_bound(inputs.keys())
        with self._lock:
            self._call_count += 1
        memo_key: tuple[Any, ...] | None = None
        if CACHE.service:
            try:
                memo_key = tuple(inputs[name] for name in self.binding.inputs)
                cached = self._memo.get(memo_key)
            except TypeError:  # unhashable input value: skip memoization
                memo_key, cached = None, None
            if cached is not None:
                if METRICS.enabled:
                    METRICS.inc("service.calls")
                    METRICS.inc("service." + self.name + ".calls")
                    METRICS.inc("service." + self.name + ".cache_hits")
                return [dict(row) for row in cached]
        start = time.perf_counter() if METRICS.enabled else 0.0
        with self._lock:
            self._backend_calls += 1
        bound = {name: inputs[name] for name in self.binding.inputs}
        try:
            if RESILIENCE.enabled:
                results = self._resilient_lookup(bound)
            else:
                results = self._raw_lookup(bound)
        except ServiceLookupFailed:
            self.health.lookups_failed += 1
            if METRICS.enabled:
                METRICS.inc("service.calls")
                METRICS.inc("service." + self.name + ".calls")
                METRICS.inc("resilience.lookups_failed")
                METRICS.inc("service." + self.name + ".failures")
            raise  # transient failures are never memoized (no poisoning)
        if METRICS.enabled:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            METRICS.inc("service.calls")
            METRICS.inc("service." + self.name + ".calls")
            METRICS.observe("service." + self.name + ".latency_ms", elapsed_ms)
            if not results:
                METRICS.inc("service." + self.name + ".misses")
        rows: list[dict[str, Any]] = []
        for result in results:
            row = {name: inputs[name] for name in self.binding.inputs}
            for name in self.output_names:
                if name not in result:
                    raise ServiceError(
                        f"service {self.name!r} result missing output {name!r}"
                    )
                row[name] = result[name]
            rows.append(row)
        if memo_key is not None:
            self._memo.put(memo_key, [dict(row) for row in rows])
        return rows

    # -- resilient backend path -----------------------------------------------
    #: injectable sleeper (tests replace it to run backoff schedules dry).
    _sleep = staticmethod(time.sleep)

    def _raw_lookup(self, bound: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        """One bare backend call, with any armed fault policy applied."""
        if FAULTS.active is not None:
            FAULTS.before_call(self, sleep=self._sleep)
        return self._lookup(bound)

    def _resilient_lookup(self, bound: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        """Backend call with breaker gating, retries, and a deadline.

        Raises :class:`ServiceLookupFailed` (or its ``CircuitOpenError`` /
        ``DeadlineExceededError`` refinements) once the budget is spent;
        callers that want graceful degradation catch exactly that type.
        Programming errors (:class:`BindingError`, malformed-result
        :class:`ServiceError`) propagate untouched and do not trip the
        breaker.
        """
        if not self.breaker.allow():
            self.health.short_circuits += 1
            if METRICS.enabled:
                METRICS.inc("resilience.breaker.short_circuits")
                METRICS.inc("resilience.breaker." + self.name + ".short_circuits")
            raise CircuitOpenError(
                f"service {self.name!r} circuit breaker is open", service=self.name
            )
        with self._lock:
            self._resilient_invocations += 1
        policy = RetryPolicy.from_config()
        deadline = Deadline(RESILIENCE.deadline_ms)
        rng = None  # jitter stream derived lazily, only when a retry happens
        attempt = 0
        while True:
            attempt += 1
            try:
                results = self._raw_lookup(bound)
            except TransientServiceError as exc:
                self.health.failures += 1
                self.breaker.record_failure()
                if METRICS.enabled:
                    METRICS.inc("resilience.transient_faults")
                if attempt >= policy.max_attempts:
                    raise ServiceLookupFailed(
                        f"service {self.name!r} failed after {attempt} attempts: {exc}",
                        service=self.name,
                        transient=True,
                    ) from exc
                if rng is None:
                    rng = derive_rng(
                        make_rng(RESILIENCE.seed), self.name, self._resilient_invocations
                    )
                delay_ms = policy.backoff_ms(attempt, rng)
                if deadline.expired or not deadline.allows_delay(delay_ms):
                    if METRICS.enabled:
                        METRICS.inc("resilience.deadline_expired")
                    raise DeadlineExceededError(
                        f"service {self.name!r} deadline "
                        f"({RESILIENCE.deadline_ms:g}ms) exhausted after "
                        f"{attempt} attempts",
                        service=self.name,
                    ) from exc
                self.health.retries += 1
                if METRICS.enabled:
                    METRICS.inc("resilience.retries")
                    METRICS.inc("resilience." + self.name + ".retries")
                if delay_ms > 0.0:
                    self._sleep(delay_ms / 1000.0)
            except ServiceLookupFailed as exc:
                # Persistent failure (dead backend): no point retrying.
                self.health.failures += 1
                self.breaker.record_failure()
                if exc.service is None:
                    exc.service = self.name
                raise
            except (BindingError, ServiceError):
                raise  # caller/contract bug, not backend weather
            except (KeyboardInterrupt, SystemExit):
                raise  # never absorb interpreter-shutdown signals
            except Exception as exc:  # backend blew up: surface as a failure
                self.health.failures += 1
                self.breaker.record_failure()
                if METRICS.enabled:
                    METRICS.inc("resilience.backend_errors")
                    METRICS.inc("resilience.backend_errors." + type(exc).__name__)
                raise ServiceLookupFailed(
                    f"service {self.name!r} backend error: {exc}",
                    service=self.name,
                ) from exc
            else:
                self.health.successes += 1
                self.breaker.record_success()
                return results

    def health_stats(self) -> dict[str, int | float | str]:
        """Operational snapshot: health counters plus breaker state."""
        return {
            "successes": self.health.successes,
            "failures": self.health.failures,
            "lookups_failed": self.health.lookups_failed,
            "retries": self.health.retries,
            "short_circuits": self.health.short_circuits,
            "failure_rate": self.health.failure_rate(),
            "breaker_state": self.breaker.state,
            "breaker_opened": self.breaker.times_opened,
        }

    # -- memoization ----------------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        """Per-service memo counters: hits / misses / evictions / size."""
        return self._memo.stats()

    def invalidate_cache(self) -> None:
        """Explicitly drop memoized results (backing data changed)."""
        self._memo.clear()

    def result_tuple_id(self, row: Mapping[str, Any]) -> TupleId:
        """Stable provenance id for a full-schema result *row*.

        Ids are assigned in first-seen order, under the lock: concurrent
        tenants sharing one service object always agree on the id of a
        result, though *which* result gets which ordinal depends on arrival
        order (which is why the bit-for-bit parity benchmark runs tenants
        over relations-only catalogs, where no such ordering exists).
        """
        key = tuple(row[name] for name in self.schema.names)
        with self._lock:
            tid = self._result_ids.get(key)
            if tid is None:
                tid = TupleId(self.name, len(self._result_ids))
                self._result_ids[key] = tid
        return tid

    # -- subclass hook --------------------------------------------------------
    def _lookup(self, inputs: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        """Produce output rows (dicts over :attr:`output_names`) for *inputs*."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.binding})"


class TableBackedService(Service):
    """A service implemented as an exact-match lookup into a fixed table.

    Rows are full-schema dicts. ``invoke`` matches on the binding inputs with
    optional value normalization (case-insensitive string compare by
    default), modeling form-backed sites and resolver services.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        binding: BindingPattern,
        table: Sequence[Mapping[str, Any]],
        cost: float = 1.0,
        normalize_keys: bool = True,
    ):
        super().__init__(name, schema, binding, cost=cost)
        self._normalize = normalize_keys
        self._index: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for raw in table:
            missing = [name for name in schema.names if name not in raw]
            if missing:
                raise ServiceError(f"service {name!r} table row missing {missing}")
            row = {attr: raw[attr] for attr in schema.names}
            key = self._key(row)
            self._index.setdefault(key, []).append(row)

    def _normalize_value(self, value: Any) -> Any:
        if self._normalize and isinstance(value, str):
            return value.strip().lower()
        return value

    def _key(self, values: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(self._normalize_value(values[name]) for name in self.binding.inputs)

    def _lookup(self, inputs: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        try:
            key = self._key(inputs)
        except KeyError as exc:
            # exc.args[0] is the missing attribute name itself; interpolating
            # the exception would add the repr's stray quotes.
            raise BindingError(
                f"service {self.name!r} missing bound input: {exc.args[0]}"
            ) from None
        return [
            {name: row[name] for name in self.output_names}
            for row in self._index.get(key, [])
        ]

    def all_rows(self) -> list[dict[str, Any]]:
        """Every row in the backing table (used by source-description learning)."""
        out: list[dict[str, Any]] = []
        for rows in self._index.values():
            out.extend(dict(row) for row in rows)
        return out


class FunctionService(Service):
    """A service implemented by a pure Python function over the inputs."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        binding: BindingPattern,
        fn,
        cost: float = 1.0,
    ):
        super().__init__(name, schema, binding, cost=cost)
        self._fn = fn

    def _lookup(self, inputs: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
        for name in self.binding.inputs:
            if name not in inputs:
                raise BindingError(
                    f"service {self.name!r} missing bound input: {name}"
                )
        result = self._fn(**inputs)
        if result is None:
            return []
        if isinstance(result, Mapping):
            return [result]
        return list(result)
