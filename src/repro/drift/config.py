"""Drift-layer configuration: one process-wide switch set, env-overridable.

Mirrors :mod:`repro.resilience.config`: a singleton (:data:`DRIFT`) of plain
attributes that hot call sites read directly, with programmatic overrides
for tests (:meth:`DriftConfig.disabled`, :meth:`DriftConfig.overridden`) and
environment variables read once at import:

- ``REPRO_DRIFT=0`` disables the drift detection / verification /
  self-healing layer entirely (extraction, commit, and resync behave
  exactly as before this layer existed);
- ``REPRO_DRIFT_TYPE_THRESHOLD`` is the per-column token-pattern similarity
  below which an extraction is declared drifted (Section 3.2's statistical
  distribution matching, applied defensively);
- ``REPRO_DRIFT_MIN_ROW_FRACTION`` / ``REPRO_DRIFT_MAX_ROW_MULTIPLE`` bound
  record-count sanity relative to the induction-time row count;
- ``REPRO_DRIFT_MIN_EXAMPLE_COVERAGE`` is the fraction of stored user
  examples that must still be extractable (anchored by value);
- ``REPRO_DRIFT_PENALTY`` / ``REPRO_QUARANTINE_PENALTY`` control how hard
  drift history and wholesale quarantine push a source's edges up in the
  source graph (the analogue of ``REPRO_FAILURE_PENALTY`` for services);
- ``REPRO_QUARANTINE_TRUST_FACTOR`` scales a source's trust down when its
  re-induction fails and it is quarantined wholesale.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw is not None else default


class DriftConfig:
    """Mutable knobs for drift verification, healing, and quarantine."""

    def __init__(self) -> None:
        #: master switch; off reproduces the pre-drift-layer behavior
        #: bit-for-bit (no verification, no healing, no quarantine).
        self.enabled = _env_flag("REPRO_DRIFT", True)
        #: per-column similarity vs. the induction-time type signature below
        #: which the column's token-pattern distribution counts as diverged.
        self.type_divergence_threshold = _env_float("REPRO_DRIFT_TYPE_THRESHOLD", 0.5)
        #: a re-extraction yielding fewer than this fraction of the
        #: induction-time row count is suspicious (template loss, truncation).
        self.min_row_fraction = _env_float("REPRO_DRIFT_MIN_ROW_FRACTION", 0.5)
        #: ... and more than this multiple is suspicious too (rule suddenly
        #: matching chrome or other columns).
        self.max_row_multiple = _env_float("REPRO_DRIFT_MAX_ROW_MULTIPLE", 3.0)
        #: fraction of the stored user examples that must re-extract,
        #: matched by value (the landmark-coverage check).
        self.min_example_coverage = _env_float("REPRO_DRIFT_MIN_EXAMPLE_COVERAGE", 0.5)
        #: extra edge cost per unit drift rate (drift events / resyncs) on a
        #: source's graph edges; the analogue of ``failure_penalty``.
        self.drift_penalty = _env_float("REPRO_DRIFT_PENALTY", 1.0)
        #: flat extra edge cost for a quarantined source — above the default
        #: relevance threshold (2.0), so quarantined sources stop being
        #: suggested at all until they heal.
        self.quarantine_penalty = _env_float("REPRO_QUARANTINE_PENALTY", 2.5)
        #: multiplicative trust hit when a source is quarantined wholesale.
        self.quarantine_trust_factor = _env_float("REPRO_QUARANTINE_TRUST_FACTOR", 0.5)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = (
        "enabled", "type_divergence_threshold", "min_row_fraction",
        "max_row_multiple", "min_example_coverage", "drift_penalty",
        "quarantine_penalty", "quarantine_trust_factor",
    )

    @contextmanager
    def disabled(self):
        """Temporarily turn the drift layer off."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown drift knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, float | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"DriftConfig({state}, type_threshold="
            f"{self.type_divergence_threshold:g}, rows=[{self.min_row_fraction:g}x,"
            f" {self.max_row_multiple:g}x])"
        )


#: The process-wide drift configuration every layer consults.
DRIFT = DriftConfig()
