"""Wrapper-extraction verification against the induction-time hypothesis.

The paper's wrappers are induced once and then trusted forever; real sources
re-template, reorder fields, and emit malformed rows. This module makes every
extraction *checkable*: at induction (commit) time we snapshot what the
wrapper produced — arity, row count, the user's example rows, and a
per-column :class:`~repro.learning.model.patterns.TypeSignature` (Section
3.2's statistical distribution matching) — and every later extraction is
verified against that snapshot:

- **row-level validation** catches individually malformed rows (wrong arity,
  all-blank, markup remnants, control characters, runaway lengths) so they
  can be quarantined instead of committed;
- **record-count sanity** catches wholesale collapse or explosion of the
  match set;
- **example (landmark) coverage** checks that the user's own example rows —
  anchored by *value*, not position — still extract;
- **per-column distribution matching** compares each extracted column's
  token-pattern distribution to the induction-time signature, which is what
  catches silent field reorders: positions still extract, but the street
  column suddenly "looks like" names.

All thresholds come from :data:`repro.drift.config.DRIFT`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..learning.model.patterns import TypeSignature
from ..util.text import is_blank
from .config import DRIFT

#: Longest plausible extracted cell; beyond this the rule is eating template.
MAX_CELL_LEN = 200


@dataclass(frozen=True)
class RowViolation:
    """One extracted row that failed row-level validation."""

    index: int
    row: tuple[str, ...]
    reason: str

    def __str__(self) -> str:
        return f"row {self.index}: {self.reason}"


@dataclass(frozen=True)
class InductionSnapshot:
    """What the wrapper produced when it was induced (the baseline)."""

    source: str
    arity: int
    n_rows: int
    signatures: tuple[TypeSignature, ...]
    examples: tuple[tuple[str, ...], ...]


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of verifying one extraction against a snapshot."""

    source: str
    n_extracted: int
    valid_rows: tuple[tuple[str, ...], ...]
    violations: tuple[RowViolation, ...]
    reasons: tuple[str, ...]
    column_scores: tuple[float | None, ...]
    example_coverage: float

    @property
    def drifted(self) -> bool:
        """True when the extraction no longer matches the induced hypothesis.

        Row-level violations alone are *not* drift — they are quarantined
        individually; drift means the wrapper itself stopped fitting.
        """
        return bool(self.reasons)


def snapshot_extraction(
    source: str,
    rows: Sequence[Sequence[str]],
    examples: Sequence[Sequence[str]] = (),
) -> InductionSnapshot:
    """Snapshot an accepted extraction as the verification baseline."""
    string_rows = [[str(cell) for cell in row] for row in rows]
    if string_rows:
        arity = len(string_rows[0])
    elif examples:
        arity = len(examples[0])
    else:
        arity = 0
    signatures = []
    for j in range(arity):
        column = [row[j] for row in string_rows if j < len(row) and not is_blank(row[j])]
        signatures.append(TypeSignature.from_values(column))
    return InductionSnapshot(
        source=source,
        arity=arity,
        n_rows=len(string_rows),
        signatures=tuple(signatures),
        examples=tuple(tuple(str(cell) for cell in example) for example in examples),
    )


def validate_row(row: Sequence[str], arity: int) -> str | None:
    """Row-level validation: the reason this row is malformed, or ``None``."""
    cells = ["" if cell is None else str(cell) for cell in row]
    if len(cells) != arity:
        return f"arity {len(cells)} != expected {arity}"
    if cells and all(is_blank(cell) for cell in cells):
        return "all cells blank"
    for position, cell in enumerate(cells):
        if "<" in cell or ">" in cell:
            return f"markup remnant in column {position}: {cell[:40]!r}"
        if len(cell) > MAX_CELL_LEN:
            return f"column {position} overlong ({len(cell)} chars)"
        if any(ord(ch) < 32 and ch != "\t" for ch in cell):
            return f"control characters in column {position}"
    return None


def validate_rows(
    rows: Sequence[Sequence[str]], arity: int
) -> tuple[list[list[str]], list[RowViolation]]:
    """Split *rows* into (valid, violations) under row-level validation."""
    valid: list[list[str]] = []
    violations: list[RowViolation] = []
    for index, row in enumerate(rows):
        reason = validate_row(row, arity)
        if reason is None:
            valid.append(["" if cell is None else str(cell) for cell in row])
        else:
            violations.append(
                RowViolation(
                    index=index,
                    row=tuple("" if cell is None else str(cell) for cell in row),
                    reason=reason,
                )
            )
    return valid, violations


def example_coverage(
    examples: Sequence[Sequence[str]], rows: Sequence[Sequence[str]]
) -> float:
    """Fraction of example rows whose values all occur somewhere in *rows*.

    Value-anchored, position-free: a reordered or re-templated page still
    covers an example as long as every one of its cell values survives.
    """
    if not examples:
        return 1.0
    haystack = {str(cell) for row in rows for cell in row}
    covered = 0
    for example in examples:
        cells = [str(cell) for cell in example if not is_blank(str(cell))]
        if cells and all(cell in haystack for cell in cells):
            covered += 1
    return covered / len(examples)


def verify_extraction(
    snapshot: InductionSnapshot,
    rows: Sequence[Sequence[str]],
    check_counts: bool = True,
    check_examples: bool = True,
) -> VerificationReport:
    """Verify one extraction against the induction-time *snapshot*.

    ``check_counts=False`` relaxes record-count sanity (used when judging a
    *re-induction*, where the source may have legitimately shrunk);
    ``check_examples=False`` likewise skips landmark coverage when the
    examples were already filtered to survivors.
    """
    valid, violations = validate_rows(rows, snapshot.arity)
    reasons: list[str] = []

    if not rows:
        reasons.append("extraction produced no rows")
    elif violations and len(violations) * 2 > len(rows):
        reasons.append(
            f"{len(violations)} of {len(rows)} extracted rows are malformed"
        )

    if check_counts and snapshot.n_rows:
        if len(valid) < DRIFT.min_row_fraction * snapshot.n_rows:
            reasons.append(
                f"row count collapsed: {len(valid)} valid vs {snapshot.n_rows} "
                f"at induction (min fraction {DRIFT.min_row_fraction:g})"
            )
        elif len(valid) > DRIFT.max_row_multiple * snapshot.n_rows:
            reasons.append(
                f"row count exploded: {len(valid)} valid vs {snapshot.n_rows} "
                f"at induction (max multiple {DRIFT.max_row_multiple:g})"
            )

    coverage = example_coverage(snapshot.examples, valid)
    if check_examples and snapshot.examples and coverage < DRIFT.min_example_coverage:
        reasons.append(
            f"landmark coverage lost: only {coverage:.0%} of the user's "
            f"example rows still extract (min {DRIFT.min_example_coverage:.0%})"
        )

    column_scores: list[float | None] = []
    for j, signature in enumerate(snapshot.signatures):
        column = [row[j] for row in valid if not is_blank(row[j])]
        if signature.n_values == 0 or not column:
            column_scores.append(None)
            continue
        score = signature.similarity(column)
        column_scores.append(score)
        if score < DRIFT.type_divergence_threshold:
            reasons.append(
                f"column {j} token-pattern distribution diverged "
                f"(similarity {score:.2f} < {DRIFT.type_divergence_threshold:g})"
            )

    return VerificationReport(
        source=snapshot.source,
        n_extracted=len(rows),
        valid_rows=tuple(tuple(row) for row in valid),
        violations=tuple(violations),
        reasons=tuple(reasons),
        column_scores=tuple(column_scores),
        example_coverage=coverage,
    )
