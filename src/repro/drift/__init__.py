"""Source drift: detection, wrapper verification, and self-healing.

The paper's wrappers are induced once from a copy-paste demonstration and
then trusted forever; real sources re-template, reorder fields, and emit
junk. This package closes that gap in three layers:

- :mod:`~repro.drift.verify` — every extraction is validated against the
  induced structural hypothesis (arity, landmark/example coverage,
  record-count sanity) and against Section 3.2's statistical distribution
  matching: each column's token-pattern distribution is compared to the
  induction-time :class:`~repro.learning.model.patterns.TypeSignature`;
- :mod:`~repro.drift.healing` — on detected drift, the wrapper is re-induced
  from the stored user examples (anchored by value, not position), falling
  back to the sequential-covering landmark path; on success the wrapper is
  swapped in place, ``Catalog.version`` bumps so plan/result caches
  invalidate, and a ``reinduced:<Source>`` provenance note is recorded;
- :mod:`~repro.drift.quarantine` — rows failing row-level validation are
  quarantined with provenance rather than committed; sources whose
  re-induction fails are quarantined wholesale and degrade exactly like
  failing services (rank-penalized, ``DEGRADED``-flagged, folded into
  source-graph edge costs via
  :meth:`~repro.learning.integration.learner.IntegrationLearner.absorb_drift_events`).

:mod:`~repro.drift.perturb` is the deterministic, seeded page-perturbation
harness the tests and the ``drift_recovery`` benchmark drive. ``REPRO_DRIFT=0``
(:data:`~repro.drift.config.DRIFT`) restores the prior trust-forever
behavior bit-for-bit.
"""

from __future__ import annotations

from .config import DRIFT, DriftConfig
from .healing import WrapperRecord, apply_wrapper, record_wrapper, refetch_event, reinduce_wrapper
from .perturb import PERTURBATIONS, RECOVERABLE, UNRECOVERABLE, PerturbationResult, perturb_page
from .quarantine import (
    DRIFT_EVENTS_NOTE,
    DRIFT_RESYNCS_NOTE,
    PROVENANCE_NOTE,
    QUARANTINE_NOTE,
    QuarantinedRow,
    QuarantineLog,
    add_provenance_note,
    drift_rate,
    note_drift_event,
    note_resync,
    quarantine_reason,
    quarantine_source_in_catalog,
    release_source_in_catalog,
)
from .verify import (
    InductionSnapshot,
    RowViolation,
    VerificationReport,
    example_coverage,
    snapshot_extraction,
    validate_row,
    validate_rows,
    verify_extraction,
)

__all__ = [
    "DRIFT",
    "DRIFT_EVENTS_NOTE",
    "DRIFT_RESYNCS_NOTE",
    "DriftConfig",
    "InductionSnapshot",
    "PERTURBATIONS",
    "PROVENANCE_NOTE",
    "PerturbationResult",
    "QUARANTINE_NOTE",
    "QuarantineLog",
    "QuarantinedRow",
    "RECOVERABLE",
    "RowViolation",
    "UNRECOVERABLE",
    "VerificationReport",
    "WrapperRecord",
    "add_provenance_note",
    "apply_wrapper",
    "drift_rate",
    "drift_stats_line",
    "example_coverage",
    "note_drift_event",
    "note_resync",
    "perturb_page",
    "quarantine_reason",
    "quarantine_source_in_catalog",
    "record_wrapper",
    "refetch_event",
    "reinduce_wrapper",
    "release_source_in_catalog",
    "snapshot_extraction",
    "validate_row",
    "validate_rows",
    "verify_extraction",
]


def drift_stats_line(metrics=None) -> str:
    """One-line summary of the drift counters (``--trace`` output)."""
    from ..obs import METRICS

    m = metrics or METRICS
    resyncs = int(m.counter_value("drift.resyncs"))
    clean = int(m.counter_value("drift.resyncs_clean"))
    detected = int(m.counter_value("drift.detected"))
    reinduced = int(m.counter_value("drift.reinduced"))
    sources_quarantined = int(m.counter_value("drift.sources_quarantined"))
    rows_quarantined = int(m.counter_value("drift.rows_quarantined"))
    empty_cells = int(m.counter_value("structure.empty_cells_dropped"))
    line = (
        f"drift: resyncs {resyncs} (clean {clean}) · detected {detected} · "
        f"reinduced {reinduced} · quarantined sources {sources_quarantined} "
        f"rows {rows_quarantined} · empty cells dropped {empty_cells}"
    )
    if not DRIFT.enabled:
        line += " · disabled"
    return line
