"""Self-healing wrappers: re-apply, and on drift re-induce from examples.

The structure learner induces a wrapper once, at commit time; this module
keeps enough of that induction around — the copy event (with its live
document container), the user's example rows, and the winning hypothesis's
descriptor — to do two things later:

- :func:`apply_wrapper` re-runs the committed wrapper against the *current*
  document: the expert committee proposes candidates again and we look for
  the recorded (origin, width) region, projecting through the recorded
  column map; fallback wrappers re-run the sequential-covering landmark
  path. A missing region raises
  :class:`~repro.errors.NoHypothesisError` — structural drift.
- :func:`reinduce_wrapper` heals: it filters the stored user examples to
  those whose *values* still occur in the live document (anchored by value,
  not position — Section 3.1's "we do not need to know exactly where the
  data was cut-and-pasted from" applies to re-induction too), re-runs the
  full generalization (experts, clustering, projection search, and the
  sequential-covering fallback in ``wrapper_induction.py``), and accepts
  the first hypothesis whose output still matches the induction-time type
  profile. Unrecoverable drift (no surviving examples, no hypothesis, or
  nothing type-consistent) raises ``NoHypothesisError`` for the caller to
  quarantine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import TYPE_CHECKING

from ..errors import NoHypothesisError
from ..learning.structure.wrapper_induction import induce_table
from ..substrate.documents.clipboard import CopyEvent
from ..util.text import is_blank
from .verify import InductionSnapshot, VerificationReport, snapshot_extraction, verify_extraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..learning.structure.learner import StructureLearner


@dataclass
class WrapperRecord:
    """Everything needed to re-apply or re-induce one source's wrapper."""

    source: str
    event: CopyEvent
    examples: list[list[str]]
    origin: str
    n_columns: int
    column_map: tuple[int, ...]
    via_fallback: bool
    snapshot: InductionSnapshot
    reinductions: int = 0

    def describe(self) -> str:
        mechanism = "landmark-rules" if self.via_fallback else "projection"
        return (
            f"{self.source}: {mechanism} over {self.origin or 'document'} "
            f"cols{list(self.column_map)} ({self.snapshot.n_rows} rows at "
            f"induction, reinduced {self.reinductions}x)"
        )


def record_wrapper(
    source: str,
    event: CopyEvent,
    hypothesis,
    examples,
    committed_rows,
) -> WrapperRecord:
    """Build the wrapper record for a just-committed source."""
    return WrapperRecord(
        source=source,
        event=event,
        examples=[[str(cell) for cell in row] for row in examples],
        origin=hypothesis.candidate.origin,
        n_columns=hypothesis.candidate.n_columns,
        column_map=tuple(hypothesis.column_map),
        via_fallback=hypothesis.via_fallback,
        snapshot=snapshot_extraction(source, committed_rows, examples=examples),
    )


def refetch_event(record: WrapperRecord) -> CopyEvent:
    """The stored copy event rebound to the document's *current* state.

    Pages are re-fetched from the containing website (a replaced page means
    the stored DOM handle is stale); sheets and text documents are live
    handles already.
    """
    context = record.event.context
    container = context.container
    if container is not None and context.url is not None and hasattr(container, "fetch"):
        page = container.fetch(context.url)
        if page is not context.document:
            context = dataclass_replace(context, document=page)
    return dataclass_replace(record.event, context=context)


def _matching_candidate(candidates, record: WrapperRecord):
    """The candidate carrying the recorded template region, or ``None``.

    Clustering merges identical record sets under a ``|``-joined origin, so
    membership is checked against the split set, along with the region width
    the column map was induced for.
    """
    wanted = set(record.origin.split("|"))
    for candidate in candidates:
        if candidate.n_columns != record.n_columns:
            continue
        if wanted & set(candidate.origin.split("|")):
            return candidate
    return None


def apply_wrapper(
    learner: "StructureLearner", record: WrapperRecord, event: CopyEvent
) -> list[list[str]]:
    """Re-run the committed wrapper against the event's current document.

    Raises :class:`NoHypothesisError` when the recorded template region no
    longer exists (re-templating, layout shifts) — structural drift.
    """
    candidates, serialized = learner.ranked_candidates(event)
    if record.via_fallback:
        if serialized is None:
            raise NoHypothesisError(
                f"{record.source}: landmark wrapper needs a serializable document"
            )
        return induce_table(serialized, record.examples)
    candidate = _matching_candidate(candidates, record)
    if candidate is None:
        raise NoHypothesisError(
            f"{record.source}: template region {record.origin!r} "
            f"({record.n_columns} columns) no longer present in the document"
        )
    return [[row[c] for c in record.column_map] for row in candidate.records]


def _document_corpus(serialized: str | None, candidates) -> str:
    """Searchable text of the live document for value-anchoring examples."""
    if serialized is not None:
        return serialized
    cells = [
        cell
        for candidate in candidates
        for row in candidate.records
        for cell in row
    ]
    return "\n".join(cells)


def reinduce_wrapper(
    learner: "StructureLearner", record: WrapperRecord, event: CopyEvent
) -> tuple[WrapperRecord, VerificationReport]:
    """Heal a drifted wrapper by re-inducing from the stored user examples.

    Returns the replacement record plus the verification report of the new
    extraction (judged against the *old* snapshot with record-count checks
    relaxed — a source may legitimately shrink). Raises
    :class:`NoHypothesisError` when the drift is unrecoverable.
    """
    candidates, serialized = learner.ranked_candidates(event)
    corpus = _document_corpus(serialized, candidates)
    surviving = [
        example
        for example in record.examples
        if all(str(cell) in corpus for cell in example if not is_blank(str(cell)))
    ]
    if not surviving:
        raise NoHypothesisError(
            f"{record.source}: none of the {len(record.examples)} stored user "
            f"examples survive in the live document (values gone)"
        )
    result = learner.generalize(event, surviving)
    failures: list[str] = []
    for hypothesis in result.hypotheses:
        rows = hypothesis.rows()
        report = verify_extraction(
            record.snapshot, rows, check_counts=False, check_examples=False
        )
        if report.drifted:
            failures.extend(report.reasons)
            continue
        healed = WrapperRecord(
            source=record.source,
            event=event,
            examples=record.examples,
            origin=hypothesis.candidate.origin,
            n_columns=hypothesis.candidate.n_columns,
            column_map=tuple(hypothesis.column_map),
            via_fallback=hypothesis.via_fallback,
            snapshot=snapshot_extraction(
                record.source, report.valid_rows, examples=record.snapshot.examples
            ),
            reinductions=record.reinductions + 1,
        )
        return healed, report
    detail = f"; rejected hypotheses: {failures[:3]}" if failures else ""
    raise NoHypothesisError(
        f"{record.source}: re-induction from {len(surviving)} surviving "
        f"example(s) produced no hypothesis matching the induction-time "
        f"type profile{detail}"
    )
