"""Deterministic, seeded page perturbations: the drift test harness.

Each perturbation mutates one listing page of a simulated
:class:`~repro.substrate.documents.website.Website` the way real sources
drift, and reports the rows a perfect re-extraction should now produce:

- ``retemplate`` — the CMS switches layout (table → list → divs) keeping
  the data; the induced template region disappears, re-induction from the
  stored examples recovers.
- ``reorder_fields`` — same layout, columns rotated; positions still
  extract, but the per-column token-pattern distributions diverge (the
  Section 3.2 check) and value-anchored re-induction finds the new map.
- ``churn_classes`` — CSS class churn plus an injected sidebar widget that
  shifts the template-region index; the recorded region goes stale,
  re-induction re-locates it.
- ``inject_junk_rows`` — malformed records (blank, markup remnants, wrong
  arity) appear inside the list; row-level validation quarantines them and
  the clean rows commit.
- ``truncate_records`` — most records vanish; record-count sanity flags the
  collapse, re-induction re-baselines on what remains.
- ``wipe_values`` — every value is replaced with garbage (unrecoverable:
  no stored example survives).
- ``blank_page`` — the page is replaced by a maintenance notice
  (unrecoverable: nothing to induce from).

Every function is deterministic in its seed; two runs drift identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import DocumentError
from ..substrate.documents.dom import DomNode, document, element
from ..substrate.documents.render import ListingTemplate
from ..substrate.documents.website import Page, Website
from ..util.rng import derive_rng, make_rng

#: perturbation kinds a healthy self-healing loop should recover from.
RECOVERABLE = (
    "retemplate",
    "reorder_fields",
    "churn_classes",
    "inject_junk_rows",
    "truncate_records",
)
#: kinds that destroy the data itself; the only safe outcome is quarantine.
UNRECOVERABLE = ("wipe_values", "blank_page")


@dataclass(frozen=True)
class PerturbationResult:
    """What one perturbation did, and what extraction should now yield."""

    kind: str
    url: str
    expected_rows: tuple[tuple[str, ...], ...]
    recoverable: bool


# -- page scraping helpers ----------------------------------------------------
def _listing_container(dom: DomNode) -> DomNode:
    nodes = dom.find_where(lambda n: "listing" in n.css_classes)
    if not nodes:
        raise DocumentError("page has no listing container to perturb")
    return nodes[0]


def _record_nodes(container: DomNode) -> list[DomNode]:
    return [child for child in container.children if "record" in child.css_classes]


def _record_values(node: DomNode) -> list[str]:
    if node.tag == "tr":
        return [cell.text_content() for cell in node.find_all("td")]
    if node.tag == "li":
        return [span.text_content() for span in node.find_all("span")]
    return [
        child.text_content()
        for child in node.find_all("div")
        if "field" in child.css_classes
    ]


def _listing_rows(dom: DomNode) -> tuple[str, list[str], list[list[str]]]:
    """(style, column names, record rows) scraped from a rendered listing."""
    container = _listing_container(dom)
    style = {"table": "table", "ul": "ul", "ol": "ul"}.get(container.tag, "div")
    rows = [_record_values(node) for node in _record_nodes(container)]
    rows = [row for row in rows if row]
    headers = [th.text_content() for th in container.find_all("th")]
    width = len(rows[0]) if rows else len(headers)
    if len(headers) != width:
        headers = [f"c{i}" for i in range(width)]
    return style, headers, rows


def _render(
    columns: list[str],
    rows: list[list[str]],
    style: str,
    title: str,
    seed: int,
    record_class: str = "record",
) -> DomNode:
    template = ListingTemplate(
        columns=columns, style=style, record_class=record_class, noise=0, seed=seed
    )
    records = [dict(zip(columns, row)) for row in rows]
    return template.render(records, title=title or "Listing")


# -- perturbations ------------------------------------------------------------
def retemplate(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    style, columns, rows = _listing_rows(page.dom)
    new_style = {"table": "ul", "ul": "div", "div": "table"}[style]
    dom = _render(columns, rows, new_style, page.title, seed=rng.randrange(2**31))
    return dom, rows


def reorder_fields(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    style, columns, rows = _listing_rows(page.dom)
    rotated = [row[1:] + row[:1] for row in rows]
    dom = _render(
        columns[1:] + columns[:1], rotated, style, page.title, seed=rng.randrange(2**31)
    )
    # A perfect re-extraction restores the *original* column order: the
    # user's examples anchor the projection by value.
    return dom, rows


def churn_classes(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    _, _, rows = _listing_rows(page.dom)
    suffix = f"{rng.randrange(16**4):04x}"
    renames = {"record": f"itm-{suffix}", "listing": f"grid-{suffix}", "ad": f"promo-{suffix}"}
    for node in page.dom.iter():
        classes = node.attrs.get("class")
        if not classes:
            continue
        node.attrs["class"] = " ".join(
            renames.get(token, token) for token in classes.split()
        )
    # Layout shift: a sidebar widget lands before the listing, so the
    # listing is no longer the page's first template region.
    widget = element(
        "table",
        element("tr", element("td", "Mon"), element("td", "72")),
        element("tr", element("td", "Tue"), element("td", "68")),
        element("tr", element("td", "Wed"), element("td", "71")),
        cls=f"wx-{suffix}",
    )
    body = page.dom.find("body") if page.dom.find_all("body") else page.dom
    body.children.insert(0, widget)
    widget.parent = body
    return page.dom, rows


def inject_junk_rows(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    _, _, rows = _listing_rows(page.dom)
    container = _listing_container(page.dom)
    style = container.tag
    width = len(rows[0]) if rows else 3
    junk_rows = [
        [""] * width,                                        # blank record
        ["<b>404</b>"] + ["Server Error"] * (width - 1),     # markup remnant
    ]
    for junk in junk_rows:
        if style == "table":
            node = element(
                "tr", *[element("td", value) for value in junk], cls="record"
            )
        elif style in ("ul", "ol"):
            node = element(
                "li",
                *[element("span", value, cls=f"f{i}") for i, value in enumerate(junk)],
                cls="record",
            )
        else:
            node = element(
                "div",
                *[
                    element("div", value, cls=f"field f{i}")
                    for i, value in enumerate(junk)
                ],
                cls="record",
            )
        container.append(node)
    if style == "table":  # a wrong-arity straggler too
        container.append(
            element("tr", element("td", "See also"), element("td", "Archive"), cls="record")
        )
    return page.dom, rows


def truncate_records(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    _, _, rows = _listing_rows(page.dom)
    container = _listing_container(page.dom)
    records = _record_nodes(container)
    keep = max(2, int(len(records) * 0.4))
    if keep >= len(records):
        keep = max(1, len(records) - 1)
    for node in records[keep:]:
        container.children.remove(node)
    return page.dom, rows[:keep]


def wipe_values(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    container = _listing_container(page.dom)
    for node in _record_nodes(container):
        for leaf in node.text_leaves():
            leaf.text = "".join(rng.choice("0123456789abcdef") for _ in range(10))
    return page.dom, []


def blank_page(page: Page, rng) -> tuple[DomNode, list[list[str]]]:
    dom = document(
        element("h1", "Scheduled maintenance"),
        element("div", "This page is temporarily unavailable.", cls="notice"),
        title=page.title or "Maintenance",
    )
    return dom, []


PERTURBATIONS: dict[str, Callable] = {
    "retemplate": retemplate,
    "reorder_fields": reorder_fields,
    "churn_classes": churn_classes,
    "inject_junk_rows": inject_junk_rows,
    "truncate_records": truncate_records,
    "wipe_values": wipe_values,
    "blank_page": blank_page,
}


def perturb_page(
    website: Website, url: str, kind: str, seed: int = 0
) -> PerturbationResult:
    """Apply one named perturbation to *url* in place, deterministically."""
    try:
        perturbation = PERTURBATIONS[kind]
    except KeyError:
        raise DocumentError(
            f"unknown perturbation {kind!r}; known: {sorted(PERTURBATIONS)}"
        ) from None
    page = website.fetch(url)
    rng = derive_rng(make_rng(seed), kind)
    new_dom, expected = perturbation(page, rng)
    website.replace_page(url, new_dom, title=page.title)
    return PerturbationResult(
        kind=kind,
        url=website.absolute(url),
        expected_rows=tuple(tuple(row) for row in expected),
        recoverable=kind in RECOVERABLE,
    )
