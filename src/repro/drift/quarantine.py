"""Quarantine: malformed rows and wholesale-drifted sources, with provenance.

Two granularities, mirroring how PR 3 treats failing services:

- **row quarantine** — extracted rows failing row-level validation are held
  in the session's :class:`QuarantineLog` with a provenance string
  (``Source[idx]``) and a reason, instead of being committed to the catalog
  where they would poison the type learner and every downstream suggestion;
- **source quarantine** — a source whose re-induction failed is marked in
  its catalog :class:`~repro.substrate.relational.catalog.SourceMetadata`
  notes, its trust is scaled down, and scans of it surface a
  :class:`~repro.resilience.degrade.Degradation` so its suggestions are
  rank-penalized and ``DEGRADED``-flagged exactly like a dead service's.

Every state change here bumps ``Catalog.version``: the PR 2 fingerprint
caches key results on it, so a cache can never serve rows extracted by a
wrapper that has since been declared stale, re-induced, or quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..substrate.relational.catalog import Catalog
from .config import DRIFT

#: metadata-notes keys the drift layer maintains on catalog sources.
QUARANTINE_NOTE = "quarantined"
DRIFT_EVENTS_NOTE = "drift_events"
DRIFT_RESYNCS_NOTE = "drift_resyncs"
PROVENANCE_NOTE = "provenance"


@dataclass(frozen=True)
class QuarantinedRow:
    """One extracted row held out of the catalog, with provenance."""

    source: str
    row: tuple[str, ...]
    reason: str
    provenance: str

    def __str__(self) -> str:
        return f"{self.provenance}: {self.reason}"


class QuarantineLog:
    """The session's record of everything held back by verification."""

    def __init__(self) -> None:
        self._rows: list[QuarantinedRow] = []
        self._sources: dict[str, str] = {}

    # -- rows ---------------------------------------------------------------
    def add_row(self, source: str, row, reason: str, provenance: str) -> QuarantinedRow:
        entry = QuarantinedRow(
            source=source,
            row=tuple("" if cell is None else str(cell) for cell in row),
            reason=reason,
            provenance=provenance,
        )
        self._rows.append(entry)
        return entry

    def rows(self, source: str | None = None) -> list[QuarantinedRow]:
        if source is None:
            return list(self._rows)
        return [entry for entry in self._rows if entry.source == source]

    def clear_rows(self, source: str) -> int:
        """Drop a source's quarantined rows (after a successful resync)."""
        kept = [entry for entry in self._rows if entry.source != source]
        dropped = len(self._rows) - len(kept)
        self._rows = kept
        return dropped

    # -- sources -------------------------------------------------------------
    def quarantine_source(self, source: str, reason: str) -> None:
        self._sources[source] = reason

    def release_source(self, source: str) -> None:
        self._sources.pop(source, None)

    def is_quarantined(self, source: str) -> bool:
        return source in self._sources

    def sources(self) -> dict[str, str]:
        return dict(self._sources)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"QuarantineLog({len(self._rows)} rows, "
            f"{len(self._sources)} sources)"
        )


# -- catalog-side drift bookkeeping -------------------------------------------
#: monotonic counter bumped by every drift-note mutation below. Unlike
#: ``Catalog.version`` it also moves on mutations that deliberately do NOT
#: invalidate caches (``note_resync``), so ``(catalog.version, drift_epoch())``
#: is a complete O(1) staleness key for drift bookkeeping — the hot
#: suggestion path early-returns on it instead of re-scanning every
#: relation's notes per call. Drift notes must only be mutated through
#: these helpers for the key to stay sound.
_EPOCH = 0


def drift_epoch() -> int:
    """Current drift-note mutation epoch (monotonic, process-wide)."""
    return _EPOCH


def _touch() -> None:
    global _EPOCH
    _EPOCH += 1


def note_resync(catalog: Catalog, source: str) -> None:
    """Count one resync attempt against *source* (the drift-rate denominator)."""
    notes = catalog.metadata(source).notes
    notes[DRIFT_RESYNCS_NOTE] = notes.get(DRIFT_RESYNCS_NOTE, 0) + 1
    _touch()


def note_drift_event(catalog: Catalog, source: str) -> None:
    """Record one detected drift; bumps the version so caches invalidate."""
    notes = catalog.metadata(source).notes
    notes[DRIFT_EVENTS_NOTE] = notes.get(DRIFT_EVENTS_NOTE, 0) + 1
    _touch()
    catalog.bump_version()


def add_provenance_note(catalog: Catalog, source: str, note: str) -> None:
    """Append to a source's provenance trail (e.g. ``reinduced:<Source>``)."""
    notes = catalog.metadata(source).notes
    notes.setdefault(PROVENANCE_NOTE, []).append(note)
    _touch()
    catalog.bump_version()


def quarantine_source_in_catalog(catalog: Catalog, source: str, reason: str) -> None:
    """Mark *source* quarantined: note + trust hit + version bump."""
    metadata = catalog.metadata(source)
    metadata.notes[QUARANTINE_NOTE] = reason
    metadata.trust = max(0.05, metadata.trust * DRIFT.quarantine_trust_factor)
    _touch()
    catalog.bump_version()


def release_source_in_catalog(catalog: Catalog, source: str) -> None:
    """Lift a source's quarantine (it healed); bumps the version."""
    notes = catalog.metadata(source).notes
    if notes.pop(QUARANTINE_NOTE, None) is not None:
        _touch()
        catalog.bump_version()


def quarantine_reason(catalog: Catalog, source: str) -> str | None:
    """The reason *source* is quarantined, or ``None``."""
    return catalog.metadata(source).notes.get(QUARANTINE_NOTE)


def drift_rate(catalog: Catalog, source: str) -> float:
    """Observed drift rate for a source, in [0, 1].

    Analogue of a service's failure rate: detected drift events over resync
    attempts (+1, so a single healed drift decays as clean resyncs accrue).
    """
    notes = catalog.metadata(source).notes
    events = notes.get(DRIFT_EVENTS_NOTE, 0)
    if not events:
        return 0.0
    resyncs = notes.get(DRIFT_RESYNCS_NOTE, 0)
    return min(1.0, events / (resyncs + 1))
