"""Declared metric names: the single registry every instrument must be in.

Four fast-moving layers (obs, cache, resilience, drift) each grew their
own ``METRICS`` names; nothing ever checked that a counter incremented in
one module is spelled the same way the ``--trace`` summary or a dashboard
reads it back. This registry makes the namespace explicit: every counter,
gauge, and histogram the codebase emits is declared here, and the repo
linter (REPRO002 in :mod:`repro.analysis.lint.rules`) fails CI when an
``METRICS.inc(...)`` call site uses a name no declared pattern covers.

Patterns may contain ``*``, which matches exactly one dot-free segment —
``service.*.calls`` covers ``service.ZipcodeResolver.calls``. Call sites
that build names dynamically (``"service." + self.name + ".calls"``) are
checked by shape: the literal fragments must line up with some declared
pattern.
"""

from __future__ import annotations

import re

#: Counters: monotonically increasing event counts.
DECLARED_COUNTERS: dict[str, str] = {
    # -- analysis (static plan checks) -------------------------------------
    "analysis.plans_checked": "plans statically analyzed before evaluation",
    "analysis.errors": "error diagnostics raised by the plan analyzer",
    "analysis.warnings": "warning diagnostics emitted by the plan analyzer",
    "analysis.cache_gate_rejections": "plan-cache admissions refused (fingerprint field gap)",
    "analysis.fingerprint_unregistered": "fingerprint lookups on unregistered plan nodes",
    "analysis.memo.hits": "plan-analysis memo hits",
    "analysis.memo.misses": "plan-analysis memo misses",
    "analysis.memo.evictions": "plan-analysis memo evictions",
    # -- cache -------------------------------------------------------------
    "cache.blocking.joins": "record-link joins routed through token blocking",
    # -- columnar (batch execution) ----------------------------------------
    "columnar.plans": "plans executed by the columnar engine",
    "columnar.fallbacks": "plans sent down the row path (unsupported shape)",
    "columnar.compile.hits": "columnar compile-memo hits",
    "columnar.compile.misses": "columnar compile-memo misses",
    "columnar.compile.evictions": "columnar compile-memo evictions",
    "columnar.scan.hits": "scan-transpose cache hits",
    "columnar.scan.misses": "scan-transpose cache misses",
    "columnar.scan.evictions": "scan-transpose cache evictions",
    "text.normalize.hits": "normalize() memo hits",
    "text.normalize.misses": "normalize() memo misses",
    "text.normalize.evictions": "normalize() memo evictions",
    "cache.blocking.pairs_pruned": "candidate pairs blocking never scored",
    "cache.plan.degraded_uncached": "degraded results kept out of the plan cache",
    "cache.plan.hits": "plan-result cache hits",
    "cache.plan.misses": "plan-result cache misses",
    "cache.plan.evictions": "plan-result cache evictions",
    "service.cache.hits": "service memo hits",
    "service.cache.misses": "service memo misses",
    "service.cache.evictions": "service memo evictions",
    # -- drift -------------------------------------------------------------
    "drift.detected": "resyncs that failed verification",
    "drift.penalty_absorbed_edges": "source-graph edges repriced for drift history",
    "drift.reinduced": "wrappers healed by re-induction",
    "drift.resyncs": "resync_source calls",
    "drift.resyncs_clean": "resyncs whose extraction verified clean",
    "drift.rows_quarantined": "individual malformed rows quarantined",
    "drift.sources_quarantined": "sources quarantined wholesale",
    "drift.verifications": "extraction verifications run",
    # -- durability (write-ahead log + checkpoint/replay) --------------------
    "durability.actions_logged": "session actions appended to a write-ahead log",
    "durability.checkpoints": "action histories compacted into checkpoint files",
    "durability.log_truncations": "write-ahead logs truncated after a checkpoint",
    "durability.sessions_recovered": "sessions rebuilt from checkpoint + log tail",
    "durability.actions_replayed": "logged actions re-applied during recovery",
    "durability.replay_action_errors": "replayed actions that re-raised (as originally)",
    "durability.recovery_torn_records": "recoveries stopped at a torn final record",
    "durability.recovery_crc_failures": "recoveries stopped at a CRC/payload mismatch",
    "durability.recovery_truncated": "recoveries stopped at a garbage frame length",
    "durability.recovery_seq_gaps": "log tails dropped for a sequence gap",
    "durability.checkpoint_corrupt": "checkpoint files unreadable at recovery",
    "durability.fsync_failures": "log/checkpoint sync failures absorbed",
    "durability.faults_injected": "write faults injected by the seeded policy",
    # -- engine / session ---------------------------------------------------
    "engine.queries": "plans evaluated by the query engine",
    "session.columns_accepted": "column suggestions accepted",
    "session.columns_rejected": "column suggestions rejected",
    "session.pastes": "paste events processed",
    "session.sources_committed": "sources committed to the catalog",
    "session.suggestion_batches": "column-suggestion batches computed",
    "session.suggestions_produced": "column suggestions produced",
    "session.suggestions_reused": "suggestion batches served from the dirty-flag reuse",
    # -- learners -----------------------------------------------------------
    "experts.*.record_groups": "record groups seen per structure expert",
    "experts.*.records_seen": "records seen per structure expert",
    "experts.data-type.rescored": "candidates rescored by the data-type expert",
    "mira.updates": "MIRA weight updates",
    "mira.updates.*": "MIRA weight updates by feedback kind",
    "mira.edges_changed": "edge weights moved by MIRA updates",
    "steiner.exact_calls": "exact Steiner solver invocations",
    "steiner.heap_pushes": "Steiner search heap pushes",
    "steiner.mst_runs": "MST-approximation runs",
    "steiner.spcsh_calls": "SPCSH heuristic invocations",
    "steiner.spcsh_stretch_tightenings": "SPCSH stretch-bound tightenings",
    "steiner.subsets_explored": "terminal subsets explored by the exact solver",
    "structure.candidates": "wrapper candidates proposed",
    "structure.empty_cells_dropped": "empty cells dropped during extraction",
    "structure.expert.*.candidates": "wrapper candidates proposed per expert",
    "structure.fallback_attempts": "landmark-fallback induction attempts",
    "structure.generalize_calls": "generalize() calls on the structure learner",
    "types.learn_calls": "semantic-type learn calls",
    "types.recognize_calls": "semantic-type recognize calls",
    # -- resilience ----------------------------------------------------------
    "resilience.backend_errors": "unexpected backend exceptions converted to lookup failures",
    "resilience.backend_errors.*": "unexpected backend exceptions by exception type",
    "resilience.breaker.closed": "circuit breakers closed after recovery",
    "resilience.breaker.half_open": "circuit breakers probing half-open",
    "resilience.breaker.opened": "circuit breakers opened",
    "resilience.breaker.short_circuits": "calls rejected by an open breaker",
    "resilience.breaker.*.closed": "per-service breaker closes",
    "resilience.breaker.*.opened": "per-service breaker opens",
    "resilience.breaker.*.short_circuits": "per-service breaker rejections",
    "resilience.deadline_expired": "invocations abandoned at the deadline",
    "resilience.degraded_results": "results carrying degradation markers",
    "resilience.degraded_rows": "rows null-padded after a service failure",
    "resilience.degraded_suggestions": "suggestions rank-penalized for degradation",
    "resilience.health_absorbed_edges": "source-graph edges repriced for failure rates",
    "resilience.lookups_failed": "service lookups that exhausted their budget",
    "resilience.retries": "backend retries",
    "resilience.*.retries": "backend retries per service",
    "resilience.transient_faults": "transient backend faults observed",
    "service.calls": "service invocations",
    "service.*.calls": "invocations per service",
    "service.*.cache_hits": "memo hits per service",
    "service.*.failures": "failed lookups per service",
    "service.*.misses": "definitive empty results per service",
    # -- server (multi-tenant session manager) ------------------------------
    "server.sessions_created": "tenant sessions created by the session manager",
    "server.sessions_evicted": "sessions evicted by LRU capacity pressure",
    "server.sessions_expired": "sessions evicted by idle TTL",
    "server.requests": "requests dispatched through the session manager",
    "server.request_errors": "dispatched requests that raised",
    "server.requests_shed": "submits refused by admission control",
    "server.requests_stranded": "queued requests failed at manager shutdown",
    # -- overload protection (admission control + brownout) ------------------
    "overload.shed_queue": "submits refused with the tenant dispatch queue full",
    "overload.shed_inflight": "submits refused at the server-wide inflight watermark",
    "overload.shed_rate": "submits refused by the per-tenant token bucket",
    "overload.shed_early": "submits shed by the seeded pressure ramp",
    "overload.shed_deadline": "queued requests shed at dequeue with an expired deadline",
    "overload.canceled": "requests aborted at a cooperative deadline checkpoint",
    "overload.brownout_entered": "load-controller transitions into brownout",
    "overload.brownout_exited": "load-controller recoveries out of brownout",
    "overload.brownout_reuse": "suggestion batches served stale under brownout",
    "overload.brownout_skips": "dependent-join service calls shed under brownout",
}

#: Gauges: last-value-wins readings.
DECLARED_GAUGES: dict[str, str] = {
    "cache.plan.size": "current plan-result cache entry count",
    "columnar.intern.size": "strings held by the global interning pool",
    "overload.inflight": "admitted requests currently queued or running",
    "overload.level": "brownout level (0 normal, 1 degraded)",
    "server.sessions_active": "sessions currently registered with the manager",
    "text.normalize.eviction_rate": "normalize() memo evictions per miss",
}

#: Histograms / timers: value reservoirs (``observe`` / ``timer``).
DECLARED_HISTOGRAMS: dict[str, str] = {
    "engine.run_ms": "plan evaluation wall time",
    "mira.tau": "MIRA update step sizes",
    "overload.queue_wait_ms": "admission-to-execution wait per pooled request",
    "server.request_ms": "per-request wall time through the session manager",
    "service.*.latency_ms": "backend latency per service",
    "session.column_suggestions_ms": "column-suggestion batch wall time",
    "session.paste_ms": "paste handling wall time",
    "session.resync_ms": "resync_source wall time",
    "steiner.spcsh_pruned_nodes": "nodes pruned per SPCSH call",
    "types.learn_ms": "semantic-type learn wall time",
    "types.recognize_ms": "semantic-type recognize wall time",
}


def declared_patterns() -> dict[str, str]:
    """Every declared pattern (all three instrument kinds) -> description."""
    return {**DECLARED_COUNTERS, **DECLARED_GAUGES, **DECLARED_HISTOGRAMS}


def _pattern_regex(pattern: str) -> re.Pattern[str]:
    # ``*`` matches one dot-free segment; everything else is literal.
    return re.compile("[^.]+".join(re.escape(part) for part in pattern.split("*")))


def is_declared(name: str) -> bool:
    """True when the *literal* metric name matches a declared pattern."""
    return any(_pattern_regex(p).fullmatch(name) for p in declared_patterns())


def declared_samples() -> list[str]:
    """One concrete sample name per pattern (``*`` -> a placeholder segment).

    Dynamically-built call-site names (literal fragments with holes) are
    validated by matching their shape against these samples.
    """
    return [pattern.replace("*", "X") for pattern in declared_patterns()]
