"""Hierarchical tracing: spans, the tracer, and the disabled fast path.

A :class:`Span` records one named region of work — wall-clock time, CPU
time, free-form attributes, and child spans — so a paste, a query, or a
Steiner enumeration can be read back as a tree of where time went.

Design constraint (see ISSUE/ROADMAP): instrumentation rides the hot
paths, so the *disabled* path must cost almost nothing. The tracer is a
process-wide singleton whose ``span()`` returns one shared
:data:`NULL_SPAN` when disabled — one attribute check, no allocation, no
dict. Call sites that would compute an expensive attribute must guard on
``TRACER.enabled`` before computing it; ``Span.set`` on the null span is
a no-op but its *arguments* are still evaluated by Python.

Usage::

    from repro.obs import TRACER

    with TRACER.span("session.paste") as sp:
        ...
        sp.set("rows", len(pasted))

    @traced("engine.run")
    def run(...): ...
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Sequence


class Span:
    """One timed, attributed node in the trace tree."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "parent",
        "_start_wall",
        "_start_cpu",
        "wall_ms",
        "cpu_ms",
        "_tracer",
    )

    def __init__(self, name: str, tracer: "Tracer | None" = None):
        self.name = name
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.wall_ms: float | None = None
        self.cpu_ms: float | None = None
        self._start_wall = 0.0
        self._start_cpu = 0.0
        self._tracer = tracer

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Span":
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_ms = (time.perf_counter() - self._start_wall) * 1000.0
        self.cpu_ms = (time.process_time() - self._start_cpu) * 1000.0
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- attributes ----------------------------------------------------------
    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def is_recording(self) -> bool:
        return True

    # -- introspection -------------------------------------------------------
    def iter(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> "Span | None":
        """First span named *name* in this subtree (depth-first), or None."""
        for span in self.iter():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:
        timing = f"{self.wall_ms:.2f}ms" if self.wall_ms is not None else "open"
        return f"Span({self.name!r}, {timing}, {len(self.children)} children)"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def is_recording(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullSpan()"


#: Singleton handed out on every ``span()`` call while disabled.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; disabled by default.

    ``finished_roots`` holds every completed top-level span in completion
    order; an exporter reads them out (and ``clear()`` resets).
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.finished_roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span creation -------------------------------------------------------
    def span(self, name: str):
        """Open a span (context manager). Near-free when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tracer=self)

    # -- stack maintenance (called by Span) ----------------------------------
    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators, exceptions): unwind to it.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if span.parent is None:
            self.finished_roots.append(span)

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.finished_roots = []
        self._stack = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def roots(self) -> Sequence[Span]:
        return tuple(self.finished_roots)


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()


def traced(name: str | None = None, tracer: Tracer | None = None) -> Callable:
    """Decorator: wrap a function in a span named *name* (default qualname).

    The enabled check happens per call, so enabling tracing after import
    still takes effect; the disabled path is one flag test.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            t = tracer if tracer is not None else TRACER
            if not t.enabled:
                return fn(*args, **kwargs)
            with t.span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
