"""Zero-dependency observability: tracing, metrics, and exporters.

The substrate, learners, engine, and session are all instrumented
against the two process-wide singletons here — :data:`TRACER` and
:data:`METRICS` — which are **disabled by default** and cost one branch
per call site while off (no allocation on the disabled path).

Enable everything, run a workload, read it back::

    from repro import obs

    obs.enable()
    ...                               # any session / engine / learner work
    print("\\n".join(obs.render_span_tree(obs.TRACER.roots())))
    print(obs.METRICS.snapshot())
    obs.disable(); obs.reset()
"""

from __future__ import annotations

from .metrics import METRICS, Metrics, percentile
from .trace import NULL_SPAN, TRACER, Span, Tracer, traced
from .export import (
    observability_snapshot,
    render_span_tree,
    span_to_dict,
    spans_to_dicts,
    to_json,
)

__all__ = [
    "METRICS",
    "Metrics",
    "NULL_SPAN",
    "TRACER",
    "Span",
    "Tracer",
    "traced",
    "percentile",
    "observability_snapshot",
    "render_span_tree",
    "span_to_dict",
    "spans_to_dicts",
    "to_json",
    "enable",
    "disable",
    "reset",
]


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn observability on (both halves by default)."""
    if tracing:
        TRACER.enable()
    if metrics:
        METRICS.enable()


def disable() -> None:
    """Turn both halves off (collected data is kept until :func:`reset`)."""
    TRACER.disable()
    METRICS.disable()


def reset() -> None:
    """Drop every collected span and metric."""
    TRACER.clear()
    METRICS.reset()
