"""Exporters: span trees and metric snapshots as text or JSON.

The text renderer is what ``python -m repro --trace`` prints; the JSON
shapes are what ``benchmarks/common.write_report`` embeds in the
``benchmarks/reports/*.json`` siblings that CI diffs across commits.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .metrics import METRICS, Metrics
from .trace import TRACER, Span, Tracer


# -- span trees ---------------------------------------------------------------
def span_to_dict(span: Span) -> dict[str, Any]:
    """One span (and its subtree) as a JSON-ready dict."""
    return {
        "name": span.name,
        "wall_ms": span.wall_ms,
        "cpu_ms": span.cpu_ms,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in span.children],
    }


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    return [span_to_dict(span) for span in spans]


def render_span_tree(spans: Iterable[Span], indent: str = "  ") -> list[str]:
    """Indented text lines for a sequence of root spans."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        wall = f"{span.wall_ms:.2f}" if span.wall_ms is not None else "?"
        cpu = f"{span.cpu_ms:.2f}" if span.cpu_ms is not None else "?"
        attrs = ""
        if span.attributes:
            parts = ", ".join(f"{k}={v}" for k, v in span.attributes.items())
            attrs = f"  [{parts}]"
        lines.append(f"{indent * depth}{span.name}  wall={wall}ms cpu={cpu}ms{attrs}")
        for child in span.children:
            visit(child, depth + 1)

    for root in spans:
        visit(root, 0)
    return lines


# -- combined export ----------------------------------------------------------
def observability_snapshot(
    tracer: Tracer | None = None, metrics: Metrics | None = None
) -> dict[str, Any]:
    """Everything observed so far: span trees plus the metrics snapshot."""
    tracer = tracer if tracer is not None else TRACER
    metrics = metrics if metrics is not None else METRICS
    return {
        "spans": spans_to_dicts(tracer.roots()),
        "metrics": metrics.snapshot(),
    }


def to_json(
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    indent: int | None = 2,
) -> str:
    """The combined snapshot serialized as JSON text."""
    return json.dumps(observability_snapshot(tracer, metrics), indent=indent)
