"""The metrics half of the observability layer.

A :class:`Metrics` registry holds three instrument kinds:

- **counters** — monotonically increasing floats (``inc``);
- **gauges** — last-value-wins floats (``gauge``);
- **histograms** — full value reservoirs summarized as
  count / mean / p50 / p95 / max (``observe``).

Like the tracer, the registry is disabled by default and every mutator
starts with a single ``enabled`` test, so instrumented hot loops cost one
branch per call when observability is off. Truly inner loops (the Steiner
heap) accumulate into local ints and record once per call instead.

Thread safety: every enabled-path mutation and every reader runs under one
registry lock, so concurrent sessions (the multi-tenant server) never drop
increments to a shared counter or observe a half-appended histogram. The
disabled path is untouched — still a single ``enabled`` branch, no lock —
which is what keeps the <5% disabled-overhead assertion in
``tests/test_obs_overhead.py`` true.
"""

from __future__ import annotations

import math
import time
from typing import Any

from ..analysis.concurrency.runtime import make_lock


def percentile(values: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *values* by the nearest-rank method.

    Nearest-rank: the smallest value with at least ``ceil(q * n)`` values
    at or below it. ``q=0`` gives the minimum, ``q=1`` the maximum.
    """
    if not values:
        raise ValueError("percentile() of empty series")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q * len(ordered))
    return ordered[rank - 1]


class _Timer:
    """Context manager feeding one histogram observation (milliseconds)."""

    __slots__ = ("_metrics", "_name", "_start")

    def __init__(self, metrics: "Metrics", name: str):
        self._metrics = metrics
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._metrics.observe(self._name, (time.perf_counter() - self._start) * 1000.0)
        return False


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_TIMER = _NullTimer()


class Metrics:
    """Registry of counters, gauges, and histograms."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = make_lock("Metrics._lock")
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    # -- mutators ------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    def timer(self, name: str):
        """Time a ``with`` block into histogram *name* (ms); free when off."""
        if not self.enabled:
            return NULL_TIMER
        return _Timer(self, name)

    # -- readers -------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    def histogram_values(self, name: str) -> list[float]:
        with self._lock:
            return list(self._histograms.get(name, []))

    def histogram_summary(self, name: str) -> dict[str, float] | None:
        with self._lock:
            values = list(self._histograms.get(name, ()))
        if not values:
            return None
        return {
            "count": float(len(values)),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "max": max(values),
        }

    def names(self) -> list[str]:
        with self._lock:
            return sorted({*self._counters, *self._gauges, *self._histograms})

    # -- lifecycle -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of every instrument's current state."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            histogram_names = sorted(self._histograms)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: self.histogram_summary(name) for name in histogram_names
            },
        }


#: The process-wide registry every instrumented module shares.
METRICS = Metrics()
