"""Standard semirings for evaluating how-provenance expressions.

The same provenance expression answers several questions depending on the
semiring it is evaluated under (Green et al.'s framework, which ORCHESTRA
implements):

- **boolean**: is the tuple still derivable if some base tuples are deleted?
- **counting**: how many distinct derivations produce the tuple?
- **score** (Viterbi-like, max/.*): confidence of the best derivation, used to
  rank auto-complete suggestions from source trust scores.
- **tropical** (min/+): cost of the cheapest derivation, matching the additive
  edge-cost model of the integration learner (Section 4.2).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..substrate.relational.rows import TupleId
from .expressions import Provenance, SemiringOps

BOOLEAN = SemiringOps(zero=False, one=True, add=lambda a, b: a or b, mul=lambda a, b: a and b)
COUNTING = SemiringOps(zero=0, one=1, add=lambda a, b: a + b, mul=lambda a, b: a * b)
SCORE = SemiringOps(zero=0.0, one=1.0, add=max, mul=lambda a, b: a * b)
TROPICAL = SemiringOps(zero=float("inf"), one=0.0, add=min, mul=lambda a, b: a + b)


def _assignment(
    values: Mapping[TupleId, object] | Callable[[TupleId], object], default: object
) -> Callable[[TupleId], object]:
    if callable(values):
        return values
    return lambda tid: values.get(tid, default)


def is_derivable(expr: Provenance, present: set[TupleId] | frozenset[TupleId]) -> bool:
    """Boolean semiring: does the tuple survive if only *present* base tuples exist?"""
    return bool(expr.evaluate(lambda tid: tid in present, BOOLEAN))


def derivation_count(expr: Provenance, multiplicity: Mapping[TupleId, int] | None = None) -> int:
    """Counting semiring: number of derivations (bag semantics)."""
    if multiplicity is None:
        assign: Callable[[TupleId], object] = lambda tid: 1
    else:
        assign = _assignment(multiplicity, 1)
    return int(expr.evaluate(assign, COUNTING))  # type: ignore[arg-type]


def best_score(expr: Provenance, trust: Mapping[TupleId, float] | Callable[[TupleId], float]) -> float:
    """Score semiring: confidence of the best derivation given base-tuple trust."""
    return float(expr.evaluate(_assignment(trust, 1.0), SCORE))  # type: ignore[arg-type]


def cheapest_cost(expr: Provenance, cost: Mapping[TupleId, float] | Callable[[TupleId], float]) -> float:
    """Tropical semiring: cost of the cheapest derivation."""
    return float(expr.evaluate(_assignment(cost, 0.0), TROPICAL))  # type: ignore[arg-type]
