"""Tuple explanations: the "Tuple Explanation pane" of Figure 2.

An explanation visualizes *why* a suggested tuple exists: which source
tuples contributed which attributes, and how sources are connected (equijoin
conditions, or dependent joins feeding attribute values into a service).
Alternative derivations — "when a tuple is produced by more than one query"
(Section 8) — are each rendered.

Explanations are assembled from two ingredients:

1. the tuple's how-provenance expression (which base tuples were used), and
2. the *plan* that produced it (how the sources are wired together).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProvenanceError
from ..resilience.degrade import is_degraded_source
from ..substrate.relational.algebra import DependentJoin, Join, Plan, RecordLinkJoin
from ..substrate.relational.catalog import Catalog
from ..substrate.relational.rows import TupleId
from .expressions import Provenance


@dataclass(frozen=True)
class JoinLink:
    """An equality link between two sources: left.attr = right.attr."""

    left_source: str
    left_attr: str
    right_source: str
    right_attr: str
    kind: str = "join"  # "join" | "record-link"

    def __str__(self) -> str:
        op = "=" if self.kind == "join" else "~"
        return (
            f"{self.left_source}.{self.left_attr} {op} "
            f"{self.right_source}.{self.right_attr}"
        )


@dataclass(frozen=True)
class ServiceFeed:
    """A dependent-join arrow: source attribute --> service input."""

    from_source: str
    from_attr: str
    service: str
    service_input: str

    def __str__(self) -> str:
        return f"{self.from_source}.{self.from_attr} --> {self.service}({self.service_input})"


@dataclass
class SourceContribution:
    """One source's part in a derivation."""

    source: str
    kind: str  # "relation" | "service" | "degraded"
    tuple_ids: list[TupleId] = field(default_factory=list)
    attributes: tuple[str, ...] = ()

    def __str__(self) -> str:
        ids = ", ".join(str(tid) for tid in sorted(self.tuple_ids))
        attrs = ", ".join(self.attributes)
        return f"[{self.kind}] {self.source}({attrs}) via {{{ids}}}"


@dataclass
class Derivation:
    """One alternative way the tuple was produced."""

    contributions: list[SourceContribution]
    joins: list[JoinLink]
    feeds: list[ServiceFeed]

    def sources(self) -> list[str]:
        return [contribution.source for contribution in self.contributions]

    def render(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = [f"{pad}{contribution}" for contribution in self.contributions]
        for link in self.joins:
            lines.append(f"{pad}  {link}")
        for feed in self.feeds:
            lines.append(f"{pad}  {feed}")
        return "\n".join(lines)


@dataclass
class Explanation:
    """All alternative derivations of one tuple, plus the plan that made it."""

    derivations: list[Derivation]
    plan: Plan | None = None

    @property
    def alternative_count(self) -> int:
        return len(self.derivations)

    def render(self) -> str:
        if not self.derivations:
            return "(no derivation: tuple is not derivable)"
        blocks: list[str] = []
        for i, derivation in enumerate(self.derivations, start=1):
            header = (
                f"Derivation {i} of {len(self.derivations)}:"
                if len(self.derivations) > 1
                else "Derivation:"
            )
            blocks.append(header + "\n" + derivation.render(indent=2))
        return "\n".join(blocks)

    def degraded_services(self) -> list[str]:
        """Services that failed while deriving this tuple (partial answer)."""
        from ..resilience.degrade import DEGRADED_PREFIX

        return sorted(
            {
                contribution.source[len(DEGRADED_PREFIX):]
                for derivation in self.derivations
                for contribution in derivation.contributions
                if contribution.kind == "degraded"
            }
        )

    def uses_service(self, name: str) -> bool:
        return any(
            contribution.kind == "service" and contribution.source == name
            for derivation in self.derivations
            for contribution in derivation.contributions
        )


def _plan_links(plan: Plan, catalog: Catalog) -> tuple[list[JoinLink], list[ServiceFeed]]:
    """Extract join conditions and dependent-join arrows from a plan tree.

    Attribute origins are tracked per-subtree: each subtree maps its visible
    output attribute names to the base source that contributed them.
    """
    joins: list[JoinLink] = []
    feeds: list[ServiceFeed] = []

    def origin_map(node: Plan) -> dict[str, str]:
        """attribute name -> originating base source, for node's output."""
        from ..substrate.relational.algebra import (
            Project,
            Rename,
            Scan,
            Select,
            Union,
        )

        if isinstance(node, Scan):
            return {name: node.source for name in catalog.schema(node.source).names}
        if isinstance(node, (Select,)):
            return origin_map(node.child)
        if isinstance(node, Project):
            parent = origin_map(node.child)
            return {name: parent[name] for name in node.names if name in parent}
        if isinstance(node, Rename):
            parent = origin_map(node.child)
            mapping = dict(node.mapping)
            return {mapping.get(name, name): source for name, source in parent.items()}
        if isinstance(node, Join):
            left = origin_map(node.left)
            right = origin_map(node.right)
            for left_attr, right_attr in node.conditions:
                left_src = left.get(left_attr, "?")
                right_src = right.get(right_attr, "?")
                joins.append(JoinLink(left_src, left_attr, right_src, right_attr))
            merged = dict(right)
            merged.update(left)  # left wins on clashes, matching concat order
            return merged
        if isinstance(node, RecordLinkJoin):
            left = origin_map(node.left)
            right = origin_map(node.right)
            left_name = "/".join(sorted(set(left.values()))) or "?"
            right_name = "/".join(sorted(set(right.values()))) or "?"
            joins.append(JoinLink(left_name, "*", right_name, "*", kind="record-link"))
            merged = dict(right)
            merged.update(left)
            return merged
        if isinstance(node, DependentJoin):
            child_map = origin_map(node.child)
            service = catalog.service(node.service)
            for service_input, child_attr in node.input_map:
                feeds.append(
                    ServiceFeed(
                        from_source=child_map.get(child_attr, "?"),
                        from_attr=child_attr,
                        service=node.service,
                        service_input=service_input,
                    )
                )
            merged = dict(child_map)
            for name in service.output_names:
                merged[name] = node.service
            return merged
        if isinstance(node, Union):
            merged: dict[str, str] = {}
            for part in node.parts:
                for name, source in origin_map(part).items():
                    merged.setdefault(name, source)
            return merged
        # Distinct / Limit / anything single-child and schema-preserving:
        kids = node.children()
        if len(kids) == 1:
            return origin_map(kids[0])
        return {}

    origin_map(plan)
    return joins, feeds


def explain(
    prov: Provenance,
    catalog: Catalog,
    plan: Plan | None = None,
) -> Explanation:
    """Build an :class:`Explanation` for a tuple's provenance.

    *plan*, when provided, enriches each derivation with join conditions and
    service-feed arrows; without it the explanation still lists contributing
    sources and tuples.
    """
    if prov is None:
        raise ProvenanceError("cannot explain a tuple without provenance")

    joins: list[JoinLink] = []
    feeds: list[ServiceFeed] = []
    if plan is not None:
        joins, feeds = _plan_links(plan, catalog)

    derivations: list[Derivation] = []
    for alternative in prov.derivations():
        by_source: dict[str, list[TupleId]] = {}
        for tid in sorted(alternative):
            by_source.setdefault(tid.relation, []).append(tid)
        contributions: list[SourceContribution] = []
        for source, tids in sorted(by_source.items()):
            if is_degraded_source(source):
                # Pseudo-source marking a service that failed during
                # evaluation: the tuple is a partial answer.
                kind = "degraded"
                attrs = ()
            elif catalog.is_service(source):
                kind = "service"
                attrs = catalog.service(source).output_names
            elif source in catalog:
                kind = "relation"
                attrs = catalog.schema(source).names
            else:
                kind = "relation"
                attrs = ()
            contributions.append(
                SourceContribution(source=source, kind=kind, tuple_ids=tids, attributes=attrs)
            )
        present = {contribution.source for contribution in contributions}
        derivations.append(
            Derivation(
                contributions=contributions,
                joins=[
                    link
                    for link in joins
                    if link.left_source in present or link.right_source in present
                ],
                feeds=[feed for feed in feeds if feed.service in present],
            )
        )
    return Explanation(derivations=derivations, plan=plan)
