"""How-provenance expressions (positive semiring algebra).

CopyCat runs on ORCHESTRA, "which builds a layer over a relational DBMS to
annotate every answer with data provenance" (Section 2.3). We reproduce that
contract with *how-provenance* in the positive algebra: every derived tuple
carries an expression over base-tuple variables where

- ``Times`` (⊗) combines the inputs of a join / dependent join,
- ``Plus``  (⊕) combines alternative derivations (union, duplicate merge),
- ``Var``   names a base tuple (:class:`~repro.substrate.relational.rows.TupleId`),
- ``One`` / ``Zero`` are the multiplicative / additive identities.

Expressions are immutable, hashable, and normalized lightly on construction
(identity absorption; flattening of nested n-ary operators).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..errors import ProvenanceError
from ..substrate.relational.rows import TupleId


class Provenance:
    """Base class for provenance expressions."""

    __slots__ = ()

    # -- structural API ------------------------------------------------------
    def variables(self) -> frozenset[TupleId]:
        """All base-tuple ids mentioned in the expression."""
        out: set[TupleId] = set()
        self._collect(out)
        return frozenset(out)

    def _collect(self, out: set[TupleId]) -> None:
        raise NotImplementedError

    def derivations(self) -> list[frozenset[TupleId]]:
        """Expand to a list of alternative derivations (DNF).

        Each derivation is the set of base tuples jointly needed to produce
        the annotated tuple. This is what the Tuple Explanation pane shows:
        "alternative explanations (when a tuple is produced by more than one
        query)" (Section 8, demonstration appendix).
        """
        raise NotImplementedError

    def evaluate(self, assign: Callable[[TupleId], object], semiring: "SemiringOps") -> object:
        """Evaluate under a semiring with *assign* mapping variables to values."""
        raise NotImplementedError

    # -- operators -------------------------------------------------------------
    def __mul__(self, other: "Provenance") -> "Provenance":
        return times(self, other)

    def __add__(self, other: "Provenance") -> "Provenance":
        return plus(self, other)


class SemiringOps:
    """Operations of a commutative semiring, passed to ``evaluate``."""

    __slots__ = ("zero", "one", "add", "mul")

    def __init__(self, zero, one, add, mul):
        self.zero = zero
        self.one = one
        self.add = add
        self.mul = mul


class _Zero(Provenance):
    __slots__ = ()

    def _collect(self, out: set[TupleId]) -> None:
        return None

    def derivations(self) -> list[frozenset[TupleId]]:
        return []

    def evaluate(self, assign, semiring):
        return semiring.zero

    def __repr__(self) -> str:
        return "0"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Zero)

    def __hash__(self) -> int:
        return hash("provenance-zero")


class _One(Provenance):
    __slots__ = ()

    def _collect(self, out: set[TupleId]) -> None:
        return None

    def derivations(self) -> list[frozenset[TupleId]]:
        return [frozenset()]

    def evaluate(self, assign, semiring):
        return semiring.one

    def __repr__(self) -> str:
        return "1"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _One)

    def __hash__(self) -> int:
        return hash("provenance-one")


ZERO = _Zero()
ONE = _One()


class Var(Provenance):
    """A base-tuple variable."""

    __slots__ = ("tuple_id",)

    def __init__(self, tuple_id: TupleId):
        if not isinstance(tuple_id, TupleId):
            raise ProvenanceError(f"Var expects a TupleId, got {type(tuple_id).__name__}")
        self.tuple_id = tuple_id

    def _collect(self, out: set[TupleId]) -> None:
        out.add(self.tuple_id)

    def derivations(self) -> list[frozenset[TupleId]]:
        return [frozenset([self.tuple_id])]

    def evaluate(self, assign, semiring):
        return assign(self.tuple_id)

    def __repr__(self) -> str:
        return str(self.tuple_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.tuple_id == other.tuple_id

    def __hash__(self) -> int:
        return hash(("provenance-var", self.tuple_id))


class _Nary(Provenance):
    __slots__ = ("children",)
    _symbol = "?"

    def __init__(self, children: Iterable[Provenance]):
        self.children: tuple[Provenance, ...] = tuple(children)

    def _collect(self, out: set[TupleId]) -> None:
        for child in self.children:
            child._collect(out)

    def __iter__(self) -> Iterator[Provenance]:
        return iter(self.children)

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(repr(child) for child in self.children)
        return f"({inner})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.children == other.children  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))


class Times(_Nary):
    """Joint derivation: all children were combined by a join."""

    __slots__ = ()
    _symbol = "*"

    def derivations(self) -> list[frozenset[TupleId]]:
        combos: list[frozenset[TupleId]] = [frozenset()]
        for child in self.children:
            child_alts = child.derivations()
            combos = [base | alt for base in combos for alt in child_alts]
        # De-duplicate while preserving order.
        seen: set[frozenset[TupleId]] = set()
        unique: list[frozenset[TupleId]] = []
        for combo in combos:
            if combo not in seen:
                seen.add(combo)
                unique.append(combo)
        return unique

    def evaluate(self, assign, semiring):
        value = semiring.one
        for child in self.children:
            value = semiring.mul(value, child.evaluate(assign, semiring))
        return value


class Plus(_Nary):
    """Alternative derivations: any child independently yields the tuple."""

    __slots__ = ()
    _symbol = "+"

    def derivations(self) -> list[frozenset[TupleId]]:
        out: list[frozenset[TupleId]] = []
        seen: set[frozenset[TupleId]] = set()
        for child in self.children:
            for alt in child.derivations():
                if alt not in seen:
                    seen.add(alt)
                    out.append(alt)
        return out

    def evaluate(self, assign, semiring):
        value = semiring.zero
        for child in self.children:
            value = semiring.add(value, child.evaluate(assign, semiring))
        return value


def times(*parts: Provenance) -> Provenance:
    """Smart ⊗ constructor: flattens nested Times, absorbs ONE and ZERO."""
    children: list[Provenance] = []
    for part in parts:
        if isinstance(part, _Zero):
            return ZERO
        if isinstance(part, _One):
            continue
        if isinstance(part, Times):
            children.extend(part.children)
        else:
            children.append(part)
    if not children:
        return ONE
    if len(children) == 1:
        return children[0]
    return Times(children)


def plus(*parts: Provenance) -> Provenance:
    """Smart ⊕ constructor: flattens nested Plus, absorbs ZERO, dedups."""
    children: list[Provenance] = []
    seen: set[Provenance] = set()
    for part in parts:
        if isinstance(part, _Zero):
            continue
        flattened = part.children if isinstance(part, Plus) else (part,)
        for child in flattened:
            if child not in seen:
                seen.add(child)
                children.append(child)
    if not children:
        return ZERO
    if len(children) == 1:
        return children[0]
    return Plus(children)


def var(relation: str, index: int) -> Var:
    """Convenience: ``var("Shelters", 3)`` ≡ ``Var(TupleId("Shelters", 3))``."""
    return Var(TupleId(relation, index))
