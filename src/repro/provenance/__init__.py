"""How-provenance expressions, semirings, and tuple explanations."""

from .expressions import ONE, ZERO, Plus, Provenance, Times, Var, plus, times, var
from .semirings import (
    BOOLEAN,
    COUNTING,
    SCORE,
    TROPICAL,
    best_score,
    cheapest_cost,
    derivation_count,
    is_derivable,
)

__all__ = [
    "BOOLEAN", "COUNTING", "ONE", "SCORE", "TROPICAL", "ZERO",
    "Plus", "Provenance", "Times", "Var",
    "best_score", "cheapest_cost", "derivation_count", "is_derivable",
    "plus", "times", "var",
]
