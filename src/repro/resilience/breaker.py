"""Per-service circuit breakers and health accounting.

The breaker is the classic three-state machine:

- **closed** — calls flow; consecutive backend failures are counted, and
  crossing the threshold opens the breaker;
- **open** — calls are rejected instantly (no backend hit, no retry burn)
  until the cooldown elapses;
- **half-open** — after the cooldown one *probe* invocation is let through;
  success closes the breaker, failure re-opens it and re-arms the cooldown.

Thresholds and cooldowns are read from :data:`~repro.resilience.config.
RESILIENCE` at decision time unless pinned in the constructor, so tests can
tighten them without rebuilding services. The clock is injectable for
deterministic cooldown tests.

:class:`ServiceHealth` is the long-horizon ledger the integration learner
reads: total successes/failures per service, from which a failure *rate*
feeds back into source-graph edge costs (the paper's trust-feedback
mechanism driven by operational signals).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs import METRICS
from .config import RESILIENCE

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class ServiceHealth:
    """Operational counters for one service.

    ``failures`` counts *attempt*-level backend failures (including
    transients a later retry recovered); ``lookups_failed`` counts
    *invocation*-level failures — lookups that ultimately raised out of
    ``invoke`` after the whole retry budget. The trust signal uses the
    latter: a backend with 5% transient weather that retries always absorb
    is operationally fine and must not drift suggestion rankings.
    """

    successes: int = 0
    failures: int = 0
    lookups_failed: int = 0
    short_circuits: int = 0
    retries: int = 0

    @property
    def observed(self) -> int:
        """Completed invocations (succeeded or definitively failed)."""
        return self.successes + self.lookups_failed

    def failure_rate(self) -> float:
        """Fraction of invocations that failed outright, in [0, 1]."""
        total = self.observed
        return self.lookups_failed / total if total else 0.0


class CircuitBreaker:
    """Closed/open/half-open gate in front of one service's backend."""

    __slots__ = (
        "name", "_threshold", "_cooldown_ms", "_clock",
        "_state", "_consecutive_failures", "_opened_at", "times_opened",
    )

    def __init__(
        self,
        name: str,
        threshold: int | None = None,
        cooldown_ms: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self._threshold = threshold
        self._cooldown_ms = cooldown_ms
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.times_opened = 0

    # -- config (live unless pinned) ------------------------------------------
    @property
    def threshold(self) -> int:
        return self._threshold if self._threshold is not None else RESILIENCE.breaker_threshold

    @property
    def cooldown_ms(self) -> float:
        if self._cooldown_ms is not None:
            return self._cooldown_ms
        return RESILIENCE.breaker_cooldown_ms

    # -- state machine ---------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now? Open→half-open on cooldown expiry."""
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if elapsed_ms < self.cooldown_ms:
                return False
            self._state = HALF_OPEN  # cooldown over: admit one probe
            if METRICS.enabled:
                METRICS.inc("resilience.breaker.half_open")
            return True
        return True  # HALF_OPEN: the probe (and any racers) may proceed

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state != CLOSED:
            self._state = CLOSED
            if METRICS.enabled:
                METRICS.inc("resilience.breaker.closed")
                METRICS.inc("resilience.breaker." + self.name + ".closed")

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or self._consecutive_failures >= self.threshold:
            self._open()

    def _open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.times_opened += 1
        if METRICS.enabled:
            METRICS.inc("resilience.breaker.opened")
            METRICS.inc("resilience.breaker." + self.name + ".opened")

    def reset(self) -> None:
        """Force-close and forget history (service replaced / test isolation)."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, {self._state}, "
            f"failures={self._consecutive_failures}/{self.threshold}, "
            f"opened x{self.times_opened})"
        )
