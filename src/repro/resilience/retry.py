"""Retry policies with exponential backoff + seeded jitter, and deadlines.

Backoff jitter draws from a :mod:`repro.util.rng`-derived stream, so a fixed
``REPRO_FAULT_SEED`` reproduces the exact delay schedule — chaos benchmarks
measure the same run twice. A :class:`Deadline` bounds one invocation's
total budget (attempts plus backoff sleeps); the resilient path refuses to
start a sleep that would overrun it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..util.rng import derive_rng, make_rng
from .config import RESILIENCE


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts to make and how long to wait between them."""

    max_attempts: int
    base_ms: float
    multiplier: float
    jitter: float

    @classmethod
    def from_config(cls) -> "RetryPolicy":
        return cls(
            max_attempts=max(1, RESILIENCE.retry_max),
            base_ms=max(0.0, RESILIENCE.retry_base_ms),
            multiplier=max(1.0, RESILIENCE.retry_multiplier),
            jitter=max(0.0, RESILIENCE.retry_jitter),
        )

    def backoff_ms(self, attempt: int, rng) -> float:
        """Delay before retry number *attempt* (1-based), milliseconds.

        Exponential in the attempt index, scaled by a uniform draw from
        ``[1, 1 + jitter]`` off the provided seeded stream.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.base_ms * self.multiplier ** (attempt - 1)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def schedule_ms(self, seed: int, *labels: str | int) -> list[float]:
        """The full backoff schedule for one invocation, for inspection.

        Derives the same sub-stream the resilient path uses for the given
        ``labels`` (service name, invocation index), so tests can assert
        the exact delays a retried call will pay.
        """
        rng = derive_rng(make_rng(seed), *labels)
        return [self.backoff_ms(attempt, rng) for attempt in range(1, self.max_attempts)]


class Deadline:
    """A wall-clock budget for one invocation, retries included."""

    __slots__ = ("budget_ms", "_clock", "_start")

    def __init__(self, budget_ms: float, clock: Callable[[], float] = time.monotonic):
        self.budget_ms = budget_ms
        self._clock = clock
        self._start = clock()

    def elapsed_ms(self) -> float:
        return (self._clock() - self._start) * 1000.0

    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms()

    @property
    def expired(self) -> bool:
        return self.remaining_ms() <= 0.0

    def allows_delay(self, delay_ms: float) -> bool:
        """Whether sleeping *delay_ms* now would still leave budget."""
        return delay_ms < self.remaining_ms()

    def __repr__(self) -> str:
        return f"Deadline({self.remaining_ms():.1f}ms of {self.budget_ms:g}ms left)"
