"""Deterministic fault injection for simulated services.

Production CopyCat composes external services (geocoders, resolvers, record
linkers) that flake, stall, and die; the reproduction's backends never do.
This harness makes every failure mode *reproducible*: a :class:`FaultPolicy`
decides, purely as a function of ``(seed, service name, backend-call
index)``, whether a given backend call fails, how (transient vs persistent),
and how much latency it pays first. The decision is hash-derived rather than
drawn from a shared stream, so the outcome of call #17 against the Geocoder
is identical no matter how calls to other services interleave — the property
that makes chaos benchmarks and regression tests stable.

Two ways to arm a policy:

- process-global, via :data:`FAULTS` (``FAULTS.injected(policy)`` context
  manager, or the ``REPRO_FAULT_RATE`` / ``REPRO_FAULT_SEED`` /
  ``REPRO_FAULT_LATENCY_MS`` environment knobs read at import) — every
  :class:`~repro.substrate.services.base.Service` consults it before each
  backend lookup;
- per-instance, via :meth:`FaultPolicy.wrap` (or
  ``ServiceRegistry.inject_faults``), which wraps one service's ``_lookup``
  so harness code can target a single backend without global state.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from ..errors import ServiceLookupFailed, TransientServiceError
from .config import RESILIENCE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..substrate.services.base import Service


@dataclass(frozen=True)
class FaultSpec:
    """Failure behavior for one service (or the policy default).

    - ``transient_rate``: probability in [0, 1] that a backend call raises a
      retryable :class:`TransientServiceError`;
    - ``persistent``: every call raises a non-retryable
      :class:`ServiceLookupFailed` (a dead backend);
    - ``latency_ms``: injected latency paid (slept) before every call;
    - ``flapping``: half-open ``[start, end)`` windows of backend-call
      indices during which every call fails transiently — models a backend
      that goes down for a stretch and recovers, the schedule circuit
      breakers exist for.
    """

    transient_rate: float = 0.0
    persistent: bool = False
    latency_ms: float = 0.0
    flapping: tuple[tuple[int, int], ...] = ()

    def is_flapping(self, call_index: int) -> bool:
        return any(start <= call_index < end for start, end in self.flapping)


class FaultPolicy:
    """A seeded, per-service map of :class:`FaultSpec` behaviors."""

    def __init__(
        self,
        seed: int | None = None,
        default: FaultSpec | None = None,
        per_service: Mapping[str, FaultSpec] | None = None,
    ):
        self.seed = RESILIENCE.seed if seed is None else seed
        self.default = default or FaultSpec()
        self.per_service = dict(per_service or {})

    def spec_for(self, service_name: str) -> FaultSpec:
        return self.per_service.get(service_name, self.default)

    def _draw(self, service_name: str, call_index: int) -> float:
        """Deterministic uniform draw in [0, 1) for one backend call."""
        token = f"{self.seed}:{service_name}:{call_index}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def check(
        self, service_name: str, call_index: int, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        """Apply the policy to one backend call: sleep latency, maybe raise."""
        spec = self.spec_for(service_name)
        if spec.latency_ms > 0.0:
            sleep(spec.latency_ms / 1000.0)
        if spec.persistent:
            raise ServiceLookupFailed(
                f"service {service_name!r} backend is down (injected persistent fault)",
                service=service_name,
            )
        if spec.is_flapping(call_index):
            raise TransientServiceError(
                f"service {service_name!r} is flapping (injected fault, call #{call_index})",
                service=service_name,
            )
        if spec.transient_rate > 0.0 and self._draw(service_name, call_index) < spec.transient_rate:
            raise TransientServiceError(
                f"service {service_name!r} transient backend fault (injected, call #{call_index})",
                service=service_name,
            )

    # -- per-instance wrapping -------------------------------------------------
    def wrap(self, service: "Service") -> "Service":
        """Wrap one service's ``_lookup`` with this policy; returns *service*.

        The wrapper keeps its own call counter (independent of the global
        injector) and survives on the instance until :meth:`unwrap`.
        """
        if getattr(service, "_fault_wrapped", None) is not None:
            self.unwrap(service)
        inner = service._lookup
        counter = {"calls": 0}

        def faulty_lookup(inputs):
            index = counter["calls"]
            counter["calls"] += 1
            self.check(service.name, index)
            return inner(inputs)

        service._fault_wrapped = inner
        service._lookup = faulty_lookup  # type: ignore[method-assign]
        return service

    @staticmethod
    def unwrap(service: "Service") -> "Service":
        """Restore a service wrapped by :meth:`wrap`."""
        inner = getattr(service, "_fault_wrapped", None)
        if inner is not None:
            service._lookup = inner  # type: ignore[method-assign]
            service._fault_wrapped = None
        return service

    def __repr__(self) -> str:
        overrides = ", ".join(sorted(self.per_service)) or "-"
        return (
            f"FaultPolicy(seed={self.seed}, default_rate={self.default.transient_rate:g}, "
            f"overrides=[{overrides}])"
        )


@dataclass
class FaultInjector:
    """Process-global fault switchboard every service consults.

    ``active`` is ``None`` almost always; the check services pay on the
    healthy path is a single attribute load. Per-service backend-call
    indices live here so global injection is deterministic regardless of
    how many policies are swapped in and out.
    """

    active: FaultPolicy | None = None
    _counters: dict[str, int] = field(default_factory=dict)

    def install(self, policy: FaultPolicy) -> FaultPolicy:
        self.active = policy
        self._counters.clear()
        return policy

    def clear(self) -> None:
        self.active = None
        self._counters.clear()

    @contextmanager
    def injected(self, policy: FaultPolicy):
        """Run a block with *policy* armed; restores the previous policy."""
        previous, previous_counts = self.active, dict(self._counters)
        self.install(policy)
        try:
            yield policy
        finally:
            self.active = previous
            self._counters = previous_counts

    def before_call(self, service: "Service", sleep: Callable[[float], None] = time.sleep) -> None:
        """Hook invoked by ``Service`` before every backend lookup."""
        policy = self.active
        if policy is None:
            return
        index = self._counters.get(service.name, 0)
        self._counters[service.name] = index + 1
        policy.check(service.name, index, sleep=sleep)


def _policy_from_env() -> FaultPolicy | None:
    """Build the env-armed global policy (``REPRO_FAULT_RATE`` > 0).

    The environment variables themselves are read once in
    :mod:`repro.resilience.config` (REPRO001); this only consults the
    resulting knobs.
    """
    rate = RESILIENCE.fault_rate
    latency = RESILIENCE.fault_latency_ms
    if rate <= 0.0 and latency <= 0.0:
        return None
    return FaultPolicy(default=FaultSpec(transient_rate=rate, latency_ms=latency))


#: The process-wide injector; armed from the environment when requested.
FAULTS = FaultInjector()
_env_policy = _policy_from_env()
if _env_policy is not None:  # pragma: no cover - exercised by the chaos CI job
    FAULTS.install(_env_policy)
