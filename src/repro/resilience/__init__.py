"""Resilience: fault injection, retry/backoff, breakers, degradation.

A production-scale CopyCat composes external services — geocoders, zipcode
resolvers, record linkers — that flake, stall, and die; its feedback loop is
supposed to learn which sources to distrust (paper Section 2.2). This
package supplies the four pieces that make the suggestion pipeline survive
unreliable backends:

- :mod:`~repro.resilience.config` — the process-wide knob set
  (:data:`RESILIENCE`), env-overridable, with ``disabled()`` /
  ``overridden()`` context managers so A/B tests compare the resilient and
  legacy paths;
- :mod:`~repro.resilience.faults` — the deterministic fault-injection
  harness (:class:`FaultPolicy`, the global :data:`FAULTS` injector):
  seeded transient/persistent failures, injected latency, and flapping
  schedules, all reproducible per ``(seed, service, call index)``;
- :mod:`~repro.resilience.retry` / :mod:`~repro.resilience.breaker` — the
  resilient invocation path's building blocks: exponential backoff with
  seeded jitter, per-invocation deadline budgets, and per-service
  closed/open/half-open circuit breakers with health ledgers;
- :mod:`~repro.resilience.degrade` — the graceful-degradation records the
  evaluator attaches to partial results.

The resilient invocation path itself lives on
:class:`repro.substrate.services.base.Service`; degradation threading in
:mod:`repro.substrate.relational.evaluator` and rank penalties in
:mod:`repro.core.autocomplete`. Everything counts into
:data:`repro.obs.METRICS` and shows up in ``python -m repro --trace``.
"""

from __future__ import annotations

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, ServiceHealth
from .config import RESILIENCE, ResilienceConfig
from .degrade import DEGRADED_PREFIX, Degradation, degraded_source, is_degraded_source
from .faults import FAULTS, FaultInjector, FaultPolicy, FaultSpec
from .retry import Deadline, RetryPolicy

__all__ = [
    "CLOSED",
    "DEGRADED_PREFIX",
    "Deadline",
    "Degradation",
    "FAULTS",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "RESILIENCE",
    "ResilienceConfig",
    "RetryPolicy",
    "ServiceHealth",
    "degraded_source",
    "is_degraded_source",
    "resilience_stats_line",
]


def resilience_stats_line(metrics=None) -> str:
    """One-line summary of the resilience counters (``--trace`` output)."""
    from ..obs import METRICS

    m = metrics or METRICS
    retries = int(m.counter_value("resilience.retries"))
    faults = int(m.counter_value("resilience.transient_faults"))
    lookups_failed = int(m.counter_value("resilience.lookups_failed"))
    opened = int(m.counter_value("resilience.breaker.opened"))
    shorted = int(m.counter_value("resilience.breaker.short_circuits"))
    degraded = int(m.counter_value("resilience.degraded_rows"))
    deadline = int(m.counter_value("resilience.deadline_expired"))
    line = (
        f"resilience: retries {retries} · transient faults {faults} · "
        f"lookups failed {lookups_failed} · breaker opened {opened} "
        f"(short-circuited {shorted}) · degraded rows {degraded} · "
        f"deadline expired {deadline}"
    )
    if not RESILIENCE.enabled:
        line += " · disabled"
    if FAULTS.active is not None:
        line += f" · injecting: {FAULTS.active!r}"
    return line
