"""Resilience configuration: one process-wide switch set, env-overridable.

Mirrors :mod:`repro.cache.config`: a singleton (:data:`RESILIENCE`) of plain
attributes that hot call sites read directly, with programmatic overrides
for tests (:meth:`ResilienceConfig.disabled`, :meth:`ResilienceConfig.
overridden`) and environment variables read once at import:

- ``REPRO_RESILIENCE=0`` disables the resilient invocation path entirely
  (service calls behave exactly as before this layer existed);
- ``REPRO_RETRY_MAX`` / ``REPRO_RETRY_BASE_MS`` / ``REPRO_RETRY_MULTIPLIER``
  / ``REPRO_RETRY_JITTER`` shape the backoff schedule;
- ``REPRO_DEADLINE_MS`` is the per-invocation deadline budget (retries
  included);
- ``REPRO_BREAKER_THRESHOLD`` / ``REPRO_BREAKER_COOLDOWN_MS`` tune the
  per-service circuit breaker;
- ``REPRO_FAULT_RATE`` / ``REPRO_FAULT_SEED`` / ``REPRO_FAULT_LATENCY_MS``
  arm the deterministic fault-injection harness globally (see
  :mod:`repro.resilience.faults`);
- ``REPRO_DEGRADED_PENALTY`` / ``REPRO_FAILURE_PENALTY`` control how hard
  degraded results and chronic failure rates push suggestions down the
  ranking.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw is not None else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


class ResilienceConfig:
    """Mutable knobs for retries, deadlines, breakers, and fault injection."""

    def __init__(self) -> None:
        #: master switch for the resilient invocation path; off reproduces
        #: the pre-resilience behavior bit-for-bit.
        self.enabled = _env_flag("REPRO_RESILIENCE", True)
        #: total attempts per invocation (first try + retries).
        self.retry_max = _env_int("REPRO_RETRY_MAX", 3)
        #: base backoff before the first retry, milliseconds.
        self.retry_base_ms = _env_float("REPRO_RETRY_BASE_MS", 1.0)
        #: exponential backoff multiplier between consecutive retries.
        self.retry_multiplier = _env_float("REPRO_RETRY_MULTIPLIER", 2.0)
        #: jitter fraction in [0, 1]: each delay is scaled by a seeded
        #: uniform draw from [1, 1 + jitter].
        self.retry_jitter = _env_float("REPRO_RETRY_JITTER", 0.5)
        #: per-invocation deadline budget (all attempts + backoff), ms.
        self.deadline_ms = _env_float("REPRO_DEADLINE_MS", 2000.0)
        #: consecutive backend failures that open a service's breaker.
        self.breaker_threshold = _env_int("REPRO_BREAKER_THRESHOLD", 8)
        #: how long an open breaker rejects calls before allowing a probe, ms.
        self.breaker_cooldown_ms = _env_float("REPRO_BREAKER_COOLDOWN_MS", 50.0)
        #: ranking penalty added to a suggestion's cost per degraded service.
        self.degraded_penalty = _env_float("REPRO_DEGRADED_PENALTY", 0.75)
        #: scale mapping a service's observed failure rate into extra edge
        #: cost in the source graph (the operational trust-feedback signal).
        self.failure_penalty = _env_float("REPRO_FAILURE_PENALTY", 2.0)
        #: seed for fault schedules and backoff jitter streams.
        self.seed = _env_int("REPRO_FAULT_SEED", 20090104)
        #: env-armed global fault injection: transient-failure probability
        #: and added latency (see :func:`repro.resilience.faults.
        #: _policy_from_env`, which reads these instead of os.environ).
        self.fault_rate = _env_float("REPRO_FAULT_RATE", 0.0)
        self.fault_latency_ms = _env_float("REPRO_FAULT_LATENCY_MS", 0.0)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = (
        "enabled", "retry_max", "retry_base_ms", "retry_multiplier",
        "retry_jitter", "deadline_ms", "breaker_threshold",
        "breaker_cooldown_ms", "degraded_penalty", "failure_penalty", "seed",
        "fault_rate", "fault_latency_ms",
    )

    @contextmanager
    def disabled(self):
        """Temporarily turn the resilient invocation path off."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown resilience knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, float | int | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"ResilienceConfig({state}, retry_max={self.retry_max}, "
            f"deadline_ms={self.deadline_ms:g}, breaker={self.breaker_threshold}"
            f"@{self.breaker_cooldown_ms:g}ms)"
        )


#: The process-wide resilience configuration every layer consults.
RESILIENCE = ResilienceConfig()
