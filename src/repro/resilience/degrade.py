"""Graceful-degradation records.

When a dependent-join service invocation fails past its retry/deadline/
breaker budget, the evaluator does not abort the plan: it emits the child
row with null service outputs, annotates its provenance with a pseudo-source
named after the failed service (``degraded:<Service>``), and records a
:class:`Degradation` on the :class:`~repro.substrate.relational.evaluator.
Result`. Downstream, suggestions built from degraded results are
rank-penalized and flagged in their explanations.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Prefix of the pseudo-source provenance variables marking degraded rows.
DEGRADED_PREFIX = "degraded:"


def degraded_source(service: str) -> str:
    """The pseudo-source name annotating rows that lost *service*'s outputs."""
    return DEGRADED_PREFIX + service


def is_degraded_source(source: str) -> bool:
    return source.startswith(DEGRADED_PREFIX)


@dataclass(frozen=True)
class Degradation:
    """One service failure absorbed during plan evaluation."""

    service: str
    reason: str

    def __str__(self) -> str:
        return f"{self.service}: {self.reason}"
