"""Persistence: save and restore a session's learned state as JSON.

The paper's pay-as-you-go framing only pays off if effort is *reused*
(Section 1: "leverage and reuse human effort where possible"). This module
serializes everything a CopyCat session learns —

- imported **relations** with their learned schemas and source metadata
  (trust, origin URL, distrusted rows),
- the **semantic types** the model learner has acquired,
- the **source-graph edge weights** MIRA has adjusted,
- the **record-linker weights** trained from match examples —

so the next session starts where this one left off. Two things are *not*
serialized: services (live objects — re-register them from a
:class:`~repro.substrate.services.registry.ServiceRegistry` after loading;
the payload records which service names were present, for checking) and
saved mediated views' defining queries (their *materialized* relations do
persist; re-derive the definition interactively if it must evolve).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .errors import CopyCatError
from .learning.model.patterns import PatternDistribution, TypeSignature
from .learning.model.type_learner import LearnedType, SemanticTypeLearner
from .linking.linker import LearnedLinker
from .linking.similarity import FieldPair
from .substrate.relational.catalog import Catalog, SourceMetadata
from .substrate.relational.relation import Relation
from .substrate.relational.schema import Attribute, Schema, SemanticType

FORMAT_VERSION = 1


class PersistenceError(CopyCatError):
    """The payload is malformed or from an incompatible version."""


# ---------------------------------------------------------------- schemas
def schema_to_dict(schema: Schema) -> list[dict[str, Any]]:
    return [
        {
            "name": attr.name,
            "type": attr.semantic_type.name,
            "parent": attr.semantic_type.parent,
        }
        for attr in schema
    ]


def schema_from_dict(payload: list[Mapping[str, Any]]) -> Schema:
    return Schema(
        [
            Attribute(
                entry["name"], SemanticType(entry["type"], entry.get("parent"))
            )
            for entry in payload
        ]
    )


# ---------------------------------------------------------------- relations
def relation_to_dict(relation: Relation) -> dict[str, Any]:
    return {
        "name": relation.name,
        "schema": schema_to_dict(relation.schema),
        "rows": [list(row.values) for row in relation],
    }


def relation_from_dict(payload: Mapping[str, Any]) -> Relation:
    relation = Relation(payload["name"], schema_from_dict(payload["schema"]))
    for row in payload["rows"]:
        relation.add(row)
    return relation


# ---------------------------------------------------------------- catalog
def _metadata_to_dict(metadata: SourceMetadata) -> dict[str, Any]:
    notes = dict(metadata.notes)
    if "distrusted_rows" in notes:
        notes["distrusted_rows"] = sorted(notes["distrusted_rows"])
    return {
        "origin": metadata.origin,
        "trust": metadata.trust,
        "url": metadata.url,
        "foreign_keys": {
            attr: list(target) for attr, target in metadata.foreign_keys.items()
        },
        "notes": notes,
    }


def _metadata_from_dict(payload: Mapping[str, Any]) -> SourceMetadata:
    notes = dict(payload.get("notes", {}))
    if "distrusted_rows" in notes:
        notes["distrusted_rows"] = set(notes["distrusted_rows"])
    return SourceMetadata(
        origin=payload.get("origin", "manual"),
        trust=payload.get("trust", 1.0),
        url=payload.get("url"),
        foreign_keys={
            attr: tuple(target)
            for attr, target in payload.get("foreign_keys", {}).items()
        },
        notes=notes,
    )


def catalog_to_dict(catalog: Catalog) -> dict[str, Any]:
    return {
        "relations": [
            {
                **relation_to_dict(catalog.relation(name)),
                "metadata": _metadata_to_dict(catalog.metadata(name)),
            }
            for name in catalog.relation_names()
        ],
        "service_names": catalog.service_names(),
    }


def catalog_from_dict(
    payload: Mapping[str, Any], into: Catalog | None = None
) -> Catalog:
    catalog = into or Catalog()
    for entry in payload.get("relations", []):
        catalog.add_relation(
            relation_from_dict(entry),
            _metadata_from_dict(entry.get("metadata", {})),
            replace=True,
        )
    return catalog


# ---------------------------------------------------------------- types
def _distribution_to_dict(dist: PatternDistribution) -> dict[str, Any]:
    return {
        "counts": [[list(pattern), count] for pattern, count in dist.counts],
        "total": dist.total,
    }


def _distribution_from_dict(payload: Mapping[str, Any]) -> PatternDistribution:
    return PatternDistribution(
        counts=tuple((tuple(pattern), count) for pattern, count in payload["counts"]),
        total=payload["total"],
    )


def type_learner_to_dict(learner: SemanticTypeLearner) -> dict[str, Any]:
    types = []
    for name in learner.known_types():
        learned = learner.get(name)
        signature = learned.signature
        types.append(
            {
                "name": learned.semantic_type.name,
                "parent": learned.semantic_type.parent,
                "constants": sorted(signature.constants),
                "mixed": _distribution_to_dict(signature.mixed),
                "class_level": _distribution_to_dict(signature.class_level),
                "kind_level": _distribution_to_dict(signature.kind_level),
                "n_values": signature.n_values,
                "mean_length": signature.mean_length,
                "vocabulary": sorted(signature.vocabulary),
            }
        )
    return {"recognition_threshold": learner.recognition_threshold, "types": types}


def type_learner_from_dict(
    payload: Mapping[str, Any], into: SemanticTypeLearner | None = None
) -> SemanticTypeLearner:
    learner = into or SemanticTypeLearner(
        recognition_threshold=payload.get("recognition_threshold", 0.5)
    )
    for entry in payload.get("types", []):
        signature = TypeSignature(
            constants=frozenset(entry["constants"]),
            mixed=_distribution_from_dict(entry["mixed"]),
            class_level=_distribution_from_dict(entry["class_level"]),
            kind_level=_distribution_from_dict(entry["kind_level"]),
            n_values=entry["n_values"],
            mean_length=entry["mean_length"],
            vocabulary=frozenset(entry["vocabulary"]),
        )
        learned = LearnedType(
            SemanticType(entry["name"], entry.get("parent")), signature
        )
        learner._types[learned.name] = learned  # noqa: SLF001 - rehydration
    return learner


# ---------------------------------------------------------------- linkers
def linkers_to_dict(linkers: Mapping[str, LearnedLinker]) -> dict[str, Any]:
    return {
        key: {
            "field_pairs": [
                [pair.left, pair.right] for pair in linker.extractor.field_pairs
            ],
            "weights": dict(linker.weights),
            "updates": linker.updates,
        }
        for key, linker in linkers.items()
    }


def linkers_from_dict(payload: Mapping[str, Any]) -> dict[str, LearnedLinker]:
    out: dict[str, LearnedLinker] = {}
    for key, entry in payload.items():
        pairs = [FieldPair(left, right) for left, right in entry["field_pairs"]]
        linker = LearnedLinker(pairs)
        for name, weight in entry["weights"].items():
            if name in linker.weights:
                linker.weights[name] = weight
        linker.updates = entry.get("updates", 0)
        out[key] = linker
    return out


# ---------------------------------------------------------------- session state
def session_state_to_dict(session) -> dict[str, Any]:
    """Everything persistent a :class:`CopyCatSession` has learned."""
    return {
        "version": FORMAT_VERSION,
        "catalog": catalog_to_dict(session.catalog),
        "types": type_learner_to_dict(session.type_learner),
        "graph_weights": dict(session.integration_learner.graph.weights),
        "linkers": linkers_to_dict(session._linkers),  # noqa: SLF001
    }


def restore_session_state(session, payload: Mapping[str, Any]) -> None:
    """Rehydrate a session from :func:`session_state_to_dict` output.

    Services must already be registered in the session's catalog (they are
    not serialized); relation sources, types, weights and linkers are
    restored and the source graph is rebuilt.
    """
    if payload.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported state version {payload.get('version')!r}"
        )
    catalog_from_dict(payload["catalog"], into=session.catalog)
    type_learner_from_dict(payload["types"], into=session.type_learner)
    session.integration_learner.refresh()
    for key, weight in payload["graph_weights"].items():
        if key in session.integration_learner.graph.weights:
            session.integration_learner.graph.weights[key] = weight
    restored_linkers = linkers_from_dict(payload.get("linkers", {}))
    session._linkers.update(restored_linkers)  # noqa: SLF001


def save_session(session, path: str | Path) -> Path:
    """Serialize the session's learned state to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(session_state_to_dict(session), indent=2, sort_keys=True))
    return path


def load_session(session, path: str | Path) -> None:
    """Restore learned state from :func:`save_session` output."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot load session state from {path}: {exc}") from exc
    restore_session_state(session, payload)
