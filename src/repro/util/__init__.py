"""Shared utilities: deterministic RNG, tokenization, string similarity."""
