"""Deterministic random-number helpers.

All stochastic components in the library accept either an integer seed or a
:class:`random.Random` instance. These helpers normalize that convention and
provide derived, independent sub-streams so that adding randomness in one
component never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")

DEFAULT_SEED = 20090104  # CIDR 2009 opening day


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    Accepts an existing ``Random`` (returned as-is), an ``int`` seed, or
    ``None`` (which maps to :data:`DEFAULT_SEED` so the library is
    deterministic by default).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def derive_rng(rng: random.Random, *labels: str | int) -> random.Random:
    """Derive an independent sub-stream from *rng* keyed by *labels*.

    The derivation hashes the labels together with one draw from the parent
    stream, so two sub-streams with different labels are decorrelated while
    remaining fully reproducible.
    """
    token = ":".join(str(label) for label in labels)
    base = rng.getrandbits(64)
    digest = hashlib.sha256(f"{base}:{token}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def seed_for(*labels: str | int) -> int:
    """A stable 64-bit seed derived purely from *labels* (no parent stream).

    Unlike :func:`derive_rng` — which draws from a parent ``Random`` and is
    therefore sensitive to how many values were drawn before it — this
    derivation depends only on the labels. That is the property concurrent
    tenants need: ``seed_for(manager_seed, tenant_id)`` gives every session
    its own deterministic generator **regardless of the order sessions are
    created or scheduled**, keeping per-tenant outputs reproducible under
    any thread interleaving (the REPRO005 invariant, extended to threads).
    """
    token = ":".join(str(label) for label in labels)
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def session_rng(*labels: str | int) -> random.Random:
    """A per-session generator seeded by :func:`seed_for` over *labels*."""
    return random.Random(seed_for(*labels))


def capture_state(rng: random.Random) -> dict:
    """The generator's exact stream position as a JSON-able dict.

    Replay (``repro.durability``) uses this to resume a stream
    *mid-flight*: a recovered session must continue drawing the same
    values the dead process would have, not restart the stream from its
    seed. The payload round-trips through JSON (lists, ints, None) so it
    can ride inside a checkpoint file.
    """
    version, internal, gauss_next = rng.getstate()
    return {
        "version": version,
        "internal": list(internal),
        "gauss_next": gauss_next,
    }


def restore_state(rng: random.Random, state: dict) -> random.Random:
    """Position *rng* exactly where :func:`capture_state` captured it."""
    rng.setstate(
        (state["version"], tuple(state["internal"]), state["gauss_next"])
    )
    return rng


def stable_shuffle(items: Sequence[T], seed: int | random.Random | None = None) -> list[T]:
    """Return a shuffled copy of *items* using a deterministic stream."""
    rng = make_rng(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def weighted_choice(rng: random.Random, options: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one option with probability proportional to its weight."""
    if len(options) != len(weights):
        raise ValueError("options and weights must have the same length")
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    return rng.choices(list(options), weights=list(weights), k=1)[0]
