"""String similarity measures used by the record linker.

Pure-Python implementations of the classic measures the paper's record
linking component combines ("the best combination of heuristics", Section 1):
Levenshtein distance/ratio, Jaro and Jaro-Winkler similarity, token Jaccard,
and character n-gram (Dice) similarity. All similarities are in [0, 1] with
1 meaning identical.
"""

from __future__ import annotations

from .text import normalize, token_strings


def levenshtein(a: str, b: str) -> int:
    """Edit distance between *a* and *b* (insert/delete/substitute, cost 1)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_ratio(a: str, b: str) -> float:
    """Similarity derived from edit distance: ``1 - dist / max_len``."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity: transposition-aware matching within a sliding window."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == char:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the length of the common prefix (≤4)."""
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity over normalized token sets."""
    tokens_a = {token.lower() for token in token_strings(a)}
    tokens_b = {token.lower() for token in token_strings(b)}
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def ngrams(value: str, n: int = 2) -> list[str]:
    """Character n-grams of the normalized string (padded with spaces)."""
    padded = f" {normalize(value)} "
    if len(padded) < n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def ngram_dice(a: str, b: str, n: int = 2) -> float:
    """Dice coefficient over character n-gram multisets."""
    grams_a = ngrams(a, n)
    grams_b = ngrams(b, n)
    if not grams_a and not grams_b:
        return 1.0
    counts: dict[str, int] = {}
    for gram in grams_a:
        counts[gram] = counts.get(gram, 0) + 1
    overlap = 0
    for gram in grams_b:
        remaining = counts.get(gram, 0)
        if remaining:
            counts[gram] = remaining - 1
            overlap += 1
    return 2.0 * overlap / (len(grams_a) + len(grams_b))


def longest_common_prefix(a: str, b: str) -> int:
    """Length of the common prefix of *a* and *b*."""
    count = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b:
            break
        count += 1
    return count


def longest_common_suffix(a: str, b: str) -> int:
    """Length of the common suffix of *a* and *b*."""
    return longest_common_prefix(a[::-1], b[::-1])
