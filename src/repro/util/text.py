"""Text utilities shared by the learners.

The model learner's pattern language (Section 3.2 of the paper) works over a
tokenization of field values; the structure learner and record linker need
normalized forms of the same strings. Centralizing tokenization keeps all
components consistent about what a "token" is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

#: Invisible characters that survive ``str.strip()``: zero-width space /
#: non-joiner / joiner / word-joiner, BOM, and soft hyphen. Real pages embed
#: these inside otherwise-blank cells; treating them as content makes the
#: learners hallucinate values (and pattern tokens) out of nothing.
INVISIBLE_CHARS = "\u200b\u200c\u200d\u2060\ufeff\u00ad"
_INVISIBLE_TABLE = {ord(ch): None for ch in INVISIBLE_CHARS}

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)      # integers or decimals
  | (?P<word>[^\W\d_]+)            # letter runs (any script, not just ASCII)
  | (?P<space>[\s%s]+)             # whitespace, incl. invisible characters
  | (?P<punct>[^\w\s])             # single punctuation character
    """
    % INVISIBLE_CHARS,
    re.VERBOSE,
)

#: Fast path for pure-ASCII values (the overwhelmingly common case in the
#: tokenizer's hot loops): invisible characters and non-ASCII letters cannot
#: occur in an ASCII string, so the simple ASCII classes are semantically
#: identical to :data:`_TOKEN_RE` there — and measurably faster.
_ASCII_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)      # integers or decimals
  | (?P<word>[A-Za-z]+)            # alphabetic runs
  | (?P<space>\s+)                 # whitespace
  | (?P<punct>[^\w\s])             # single punctuation character
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token: its surface *text* and coarse *kind*.

    Kinds are ``number``, ``word``, ``space``, and ``punct`` — the alphabet
    the generalized-token patterns in :mod:`repro.learning.model` refine.
    """

    text: str
    kind: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text!r}"


def tokenize(value: str, keep_space: bool = False) -> list[Token]:
    """Tokenize *value* into :class:`Token` objects.

    Whitespace tokens are dropped unless *keep_space* is true; the pattern
    language treats attribute values as space-separated token sequences.
    """
    pattern = _ASCII_TOKEN_RE if value.isascii() else _TOKEN_RE
    tokens: list[Token] = []
    for match in pattern.finditer(value):
        kind = match.lastgroup or "punct"
        if kind == "space" and not keep_space:
            continue
        tokens.append(Token(match.group(), kind))
    return tokens


def strip_invisible(value: str) -> str:
    """Remove zero-width/invisible characters (see :data:`INVISIBLE_CHARS`)."""
    return value.translate(_INVISIBLE_TABLE)


def clean_cell(value: str) -> str:
    """Canonical cell cleanup: drop invisible characters, then strip.

    ``str.strip()`` already handles NBSP and friends (they are unicode
    whitespace); the invisible characters are the ones it misses.
    """
    return strip_invisible(value).strip()


def is_blank(value) -> bool:
    """True when *value* is None, empty, or whitespace/invisible-only."""
    return value is None or not clean_cell(str(value))


_SPACE_RUN_RE = re.compile(r"\s+")


@lru_cache(maxsize=8192)
def normalize(value: str) -> str:
    """Lowercase, collapse whitespace, and strip punctuation-adjacent space.

    Memoized: the record linker's soft-equality check normalizes the same
    cell values against each other in a tight cross-product loop, so cache
    hits dominate there (the function is pure and values are short).
    """
    collapsed = _SPACE_RUN_RE.sub(" ", clean_cell(value))
    return collapsed.lower()


def token_strings(value: str) -> list[str]:
    """Return just the token surface strings for *value* (no whitespace)."""
    return [token.text for token in tokenize(value)]


def title_case(value: str) -> str:
    """Title-case words while leaving digits and punctuation untouched."""
    return re.sub(r"[A-Za-z]+", lambda m: m.group().capitalize(), value)


def is_numeric(value: str) -> bool:
    """True when the whole string is a single (possibly decimal) number."""
    return bool(re.fullmatch(r"\s*-?\d+(?:\.\d+)?\s*", value))
