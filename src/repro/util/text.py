"""Text utilities shared by the learners.

The model learner's pattern language (Section 3.2 of the paper) works over a
tokenization of field values; the structure learner and record linker need
normalized forms of the same strings. Centralizing tokenization keeps all
components consistent about what a "token" is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)      # integers or decimals
  | (?P<word>[A-Za-z]+)            # alphabetic runs
  | (?P<space>\s+)                 # whitespace
  | (?P<punct>[^\w\s])             # single punctuation character
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token: its surface *text* and coarse *kind*.

    Kinds are ``number``, ``word``, ``space``, and ``punct`` — the alphabet
    the generalized-token patterns in :mod:`repro.learning.model` refine.
    """

    text: str
    kind: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text!r}"


def tokenize(value: str, keep_space: bool = False) -> list[Token]:
    """Tokenize *value* into :class:`Token` objects.

    Whitespace tokens are dropped unless *keep_space* is true; the pattern
    language treats attribute values as space-separated token sequences.
    """
    tokens: list[Token] = []
    for match in _TOKEN_RE.finditer(value):
        kind = match.lastgroup or "punct"
        if kind == "space" and not keep_space:
            continue
        tokens.append(Token(match.group(), kind))
    return tokens


def normalize(value: str) -> str:
    """Lowercase, collapse whitespace, and strip punctuation-adjacent space."""
    collapsed = re.sub(r"\s+", " ", value.strip())
    return collapsed.lower()


def token_strings(value: str) -> list[str]:
    """Return just the token surface strings for *value* (no whitespace)."""
    return [token.text for token in tokenize(value)]


def title_case(value: str) -> str:
    """Title-case words while leaving digits and punctuation untouched."""
    return re.sub(r"[A-Za-z]+", lambda m: m.group().capitalize(), value)


def is_numeric(value: str) -> bool:
    """True when the whole string is a single (possibly decimal) number."""
    return bool(re.fullmatch(r"\s*-?\d+(?:\.\d+)?\s*", value))
