"""Text utilities shared by the learners.

The model learner's pattern language (Section 3.2 of the paper) works over a
tokenization of field values; the structure learner and record linker need
normalized forms of the same strings. Centralizing tokenization keeps all
components consistent about what a "token" is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_lock

#: Invisible characters that survive ``str.strip()``: zero-width space /
#: non-joiner / joiner / word-joiner, BOM, and soft hyphen. Real pages embed
#: these inside otherwise-blank cells; treating them as content makes the
#: learners hallucinate values (and pattern tokens) out of nothing.
INVISIBLE_CHARS = "\u200b\u200c\u200d\u2060\ufeff\u00ad"
_INVISIBLE_TABLE = {ord(ch): None for ch in INVISIBLE_CHARS}

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)      # integers or decimals
  | (?P<word>[^\W\d_]+)            # letter runs (any script, not just ASCII)
  | (?P<space>[\s%s]+)             # whitespace, incl. invisible characters
  | (?P<punct>[^\w\s])             # single punctuation character
    """
    % INVISIBLE_CHARS,
    re.VERBOSE,
)

#: Fast path for pure-ASCII values (the overwhelmingly common case in the
#: tokenizer's hot loops): invisible characters and non-ASCII letters cannot
#: occur in an ASCII string, so the simple ASCII classes are semantically
#: identical to :data:`_TOKEN_RE` there — and measurably faster.
_ASCII_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?)      # integers or decimals
  | (?P<word>[A-Za-z]+)            # alphabetic runs
  | (?P<space>\s+)                 # whitespace
  | (?P<punct>[^\w\s])             # single punctuation character
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token: its surface *text* and coarse *kind*.

    Kinds are ``number``, ``word``, ``space``, and ``punct`` — the alphabet
    the generalized-token patterns in :mod:`repro.learning.model` refine.
    """

    text: str
    kind: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text!r}"


def tokenize(value: str, keep_space: bool = False) -> list[Token]:
    """Tokenize *value* into :class:`Token` objects.

    Whitespace tokens are dropped unless *keep_space* is true; the pattern
    language treats attribute values as space-separated token sequences.
    """
    pattern = _ASCII_TOKEN_RE if value.isascii() else _TOKEN_RE
    tokens: list[Token] = []
    for match in pattern.finditer(value):
        kind = match.lastgroup or "punct"
        if kind == "space" and not keep_space:
            continue
        tokens.append(Token(match.group(), kind))
    return tokens


def strip_invisible(value: str) -> str:
    """Remove zero-width/invisible characters (see :data:`INVISIBLE_CHARS`)."""
    return value.translate(_INVISIBLE_TABLE)


def clean_cell(value: str) -> str:
    """Canonical cell cleanup: drop invisible characters, then strip.

    ``str.strip()`` already handles NBSP and friends (they are unicode
    whitespace); the invisible characters are the ones it misses.
    """
    return strip_invisible(value).strip()


def is_blank(value) -> bool:
    """True when *value* is None, empty, or whitespace/invisible-only."""
    return value is None or not clean_cell(str(value))


_SPACE_RUN_RE = re.compile(r"\s+")


class InternPool:
    """A global string-interning pool (one canonical instance per value).

    Grown from the old ``normalize`` memo: the columnar scan path interns
    every string cell while transposing relations into column arrays, so
    repeated values across rows/sources share one object — join keys and
    distinct/group-by dict operations then compare by identity first, and
    each distinct string's hash is computed once process-wide.

    Interning is capped: once ``capacity`` distinct strings are pooled,
    further values pass through un-interned (correctness is unaffected;
    only the sharing stops). Hit/miss counters are kept locally (the pool
    sits in hot loops) and surfaced via :meth:`stats` and the ``columnar:``
    trace line.

    Thread safety: the pool is process-global mutable state, shared by
    every concurrent session. The hit path is **lock-free** — a plain dict
    probe, atomic under CPython — so the overwhelmingly common case costs
    exactly what it did single-threaded. Only a miss takes the insert lock,
    and re-probes under it, so two threads racing to intern the same new
    value always agree on one canonical instance (no duplicate identities).
    Hit/pass counters on the lock-free path are best-effort under
    contention (a lost increment is cosmetic); the miss counter is exact.
    """

    __slots__ = ("_pool", "_insert_lock", "capacity", "hits", "misses", "passes")

    def __init__(self, capacity: int = 1 << 20):
        self._pool: dict[str, str] = {}
        self._insert_lock = make_lock("InternPool._insert_lock")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: values skipped: non-strings, or pool at capacity.
        self.passes = 0

    def _insert(self, value: str) -> str:
        """Slow path: pool *value* under the lock; returns the canonical one."""
        with self._insert_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("InternPool._pool", self)
            canonical = self._pool.get(value)
            if canonical is not None:
                self.hits += 1
                return canonical
            if len(self._pool) >= self.capacity:
                self.passes += 1
                return value
            self._pool[value] = value
            self.misses += 1
            return value

    def intern(self, value: Any) -> Any:
        """Return the canonical instance of *value* (strings only)."""
        if type(value) is not str:
            self.passes += 1  # lint: allow=CONC003 -- best-effort counter on the lock-free fast path; a lost increment is acceptable
            return value
        canonical = self._pool.get(value)
        if canonical is not None:
            self.hits += 1  # lint: allow=CONC003 -- best-effort counter on the lock-free fast path; a lost increment is acceptable
            return canonical
        return self._insert(value)

    def intern_all(self, values: Iterable[Any]) -> list[Any]:
        """Intern a whole column in one pass (the scan-transpose hot loop)."""
        pool = self._pool
        out: list[Any] = []
        append = out.append
        for value in values:
            if type(value) is not str:
                self.passes += 1  # lint: allow=CONC003 -- best-effort counter on the lock-free fast path; a lost increment is acceptable
                append(value)
                continue
            canonical = pool.get(value)
            if canonical is not None:
                self.hits += 1  # lint: allow=CONC003 -- best-effort counter on the lock-free fast path; a lost increment is acceptable
                append(canonical)
            else:
                append(self._insert(value))
        return out

    def __len__(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        """Drop pooled strings (tests); lifetime counters survive."""
        self._pool.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._pool),
            "hits": self.hits,
            "misses": self.misses,
            "passes": self.passes,
        }


#: The process-wide interning pool (columnar scans, normalize results).
INTERN = InternPool()

#: Entries the normalize memo may hold before evicting least-recently-used.
NORMALIZE_CACHE_CAPACITY = 8192

# The normalize memo is the cache layer's stats-counting LRU rather than
# functools.lru_cache: evictions become observable (an eviction-rate metric
# instead of silent churn) and ``--trace`` can report hit rates alongside
# every other cache tier. Built lazily on first use — repro.cache imports
# the relational substrate, which imports drift/resilience modules that in
# turn use this module, so a top-level import would cycle.
_NORMALIZE_CACHE = None
_NORMALIZE_INIT_LOCK = make_lock("text._NORMALIZE_INIT_LOCK")


def _normalize_cache():
    global _NORMALIZE_CACHE
    if _NORMALIZE_CACHE is None:
        # Double-checked init: two sessions racing the first normalize()
        # must agree on one memo (the LRU itself is internally locked).
        with _NORMALIZE_INIT_LOCK:
            if _NORMALIZE_CACHE is None:
                from ..cache.lru import LRUCache

                _NORMALIZE_CACHE = LRUCache(
                    NORMALIZE_CACHE_CAPACITY, metrics_prefix="text.normalize"
                )
    return _NORMALIZE_CACHE


_NORMALIZE_MISSING = object()


def normalize(value: str) -> str:
    """Lowercase, collapse whitespace, and strip punctuation-adjacent space.

    Memoized: the record linker's soft-equality check normalizes the same
    cell values against each other in a tight cross-product loop, so cache
    hits dominate there (the function is pure and values are short). The
    memo is a bounded stats-counting LRU (hit/miss/eviction counters under
    ``text.normalize.*``) and results are interned through :data:`INTERN`,
    so every caller shares one canonical normalized instance. Both the memo
    and the pool are internally locked, so concurrent sessions share them
    safely; a racy double-compute of the same value converges on one
    interned result.
    """
    cache = _normalize_cache()
    cached = cache.get(value, _NORMALIZE_MISSING)
    if cached is not _NORMALIZE_MISSING:
        return cached
    collapsed = INTERN.intern(_SPACE_RUN_RE.sub(" ", clean_cell(value)).lower())
    cache.put(value, collapsed)
    return collapsed


def normalize_cache_stats() -> dict[str, float]:
    """Normalize-memo counters plus the eviction rate (evictions/insertions).

    A rate near 1.0 means the working set no longer fits
    :data:`NORMALIZE_CACHE_CAPACITY` and the memo is thrashing.
    """
    stats = dict(_normalize_cache().stats())
    inserted = max(stats["misses"], 1)
    stats["eviction_rate"] = stats["evictions"] / inserted
    return stats


def token_strings(value: str) -> list[str]:
    """Return just the token surface strings for *value* (no whitespace)."""
    return [token.text for token in tokenize(value)]


def title_case(value: str) -> str:
    """Title-case words while leaving digits and punctuation untouched."""
    return re.sub(r"[A-Za-z]+", lambda m: m.group().capitalize(), value)


def is_numeric(value: str) -> bool:
    """True when the whole string is a single (possibly decimal) number."""
    return bool(re.fullmatch(r"\s*-?\d+(?:\.\d+)?\s*", value))
