"""Structural plan fingerprints.

The suggestion pipeline evaluates *many* candidate plans per refresh, and
the candidates overwhelmingly share structure: every extension of the
current ``IntegrationQuery`` embeds the current plan as its join prefix,
and consecutive ``column_suggestions`` refreshes re-build byte-identical
plan trees. :func:`plan_fingerprint` maps a plan to a hashable value that
is equal exactly when two plans are structurally interchangeable, so the
evaluator's result cache can serve the shared prefix once.

Fingerprints are *content-based* wherever the node's behaviour is fully
described by its dataclass fields (scans, joins, projections, predicates —
all frozen dataclasses with stable ``str``). The behavioural escape hatch
is **linkers** (``RecordLinkJoin.linker``), which may carry learned
weights: a :class:`~repro.linking.linker.LearnedLinker` contributes its
field pairs, similarity names, and current weights (so two freshly-built
linkers over the same edge are interchangeable, and a *trained* linker
fingerprints differently from an untrained one). Unknown
:class:`RowLinker` subclasses fall back to object identity — correct,
merely cache-shy.

Dispatch is an explicit per-type table populated by :func:`_register`,
which also records exactly which dataclass fields each fingerprint covers.
An **unknown plan node type raises** ``TypeError`` instead of silently
degrading: an unregistered operator fingerprinting by identity (the old
fallthrough) could never produce a wrong answer, but a *registered
subclass matched by an isinstance ladder* could — ``SampledScan(Scan)``
would have fingerprinted as its parent and aliased cache entries. Exact
type keys plus a hard failure, together with the field-coverage metadata
the static analyzer verifies (:mod:`repro.analysis.fingerprint_check`),
make that whole bug class unrepresentable.

The catalog's contents are deliberately *not* part of the fingerprint;
pairing the fingerprint with :attr:`Catalog.version` is the cache key.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Hashable

from ..substrate.relational.aggregates import GroupBy
from ..substrate.relational.algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    RowLinker,
    Scan,
    Select,
    Union,
)


def linker_token(linker: RowLinker) -> Hashable:
    """A hashable token equal for behaviourally-equal linkers."""
    extractor = getattr(linker, "extractor", None)
    weights = getattr(linker, "weights", None)
    if extractor is not None and isinstance(weights, dict):
        # LearnedLinker shape: field pairs × similarity names, plus the
        # learned weight vector (training must change the fingerprint).
        return (
            type(linker).__name__,
            tuple(str(pair) for pair in getattr(extractor, "field_pairs", ())),
            tuple(sorted(getattr(extractor, "similarities", {}))),
            tuple(sorted(weights.items())),
        )
    return (type(linker).__name__, id(linker))


#: Exact-type fingerprint dispatch and the dataclass fields each covers.
_FINGERPRINTS: dict[type, Callable[[Any], Hashable]] = {}
_COVERED_FIELDS: dict[type, frozenset[str]] = {}


def _register(node_type: type, *covered: str):
    """Register a fingerprint function for *node_type*.

    ``covered`` names the dataclass fields the fingerprint incorporates;
    the static analyzer asserts it equals the node's full field set, so a
    field added to an operator without a fingerprint update fails CI
    instead of aliasing cache entries.
    """

    def wrap(fn: Callable[[Any], Hashable]) -> Callable[[Any], Hashable]:
        _FINGERPRINTS[node_type] = fn
        _COVERED_FIELDS[node_type] = frozenset(covered)
        return fn

    return wrap


def plan_fingerprint(plan: Plan) -> Hashable:
    """A hashable structural fingerprint of *plan* (see module docstring).

    Raises ``TypeError`` for plan node types with no registered
    fingerprint — callers that merely *want* caching (the evaluator)
    catch it and evaluate uncached; silent identity aliasing is gone.
    """
    try:
        fingerprint = _FINGERPRINTS[type(plan)]
    except KeyError:
        raise TypeError(
            f"no fingerprint registered for plan node type "
            f"{type(plan).__name__!r}; register it in "
            f"repro.cache.fingerprint so cached results cannot alias"
        ) from None
    return fingerprint(plan)


# -- registry introspection (used by repro.analysis) --------------------------
def is_registered(node_type: type) -> bool:
    """True when *node_type* has an exact-type fingerprint entry."""
    return node_type in _FINGERPRINTS


def registered_types() -> tuple[type, ...]:
    """Every plan node type with a registered fingerprint."""
    return tuple(_FINGERPRINTS)


def covered_fields(node_type: type) -> frozenset[str]:
    """The dataclass fields *node_type*'s fingerprint declares it covers."""
    return _COVERED_FIELDS.get(node_type, frozenset())


def uncovered_fields(node_type: type) -> frozenset[str]:
    """Dataclass fields of *node_type* its fingerprint does NOT cover.

    Empty for non-dataclasses and for fully-covered registrations. A
    non-empty result means two distinct plans could share a fingerprint —
    the plan-cache admission gate refuses to cache such nodes.
    """
    if not dataclasses.is_dataclass(node_type):
        return frozenset()
    declared = {field.name for field in dataclasses.fields(node_type)}
    return frozenset(declared - _COVERED_FIELDS.get(node_type, frozenset()))


def _unregister(node_type: type) -> None:
    """Remove a registration (test hook for synthetic node types)."""
    _FINGERPRINTS.pop(node_type, None)
    _COVERED_FIELDS.pop(node_type, None)


# -- the operator fingerprints ------------------------------------------------
@_register(Scan, "source")
def _fp_scan(plan: Scan) -> Hashable:
    return ("Scan", plan.source)


@_register(Select, "child", "predicate")
def _fp_select(plan: Select) -> Hashable:
    return ("Select", plan_fingerprint(plan.child), _predicate_token(plan.predicate))


@_register(Project, "child", "names")
def _fp_project(plan: Project) -> Hashable:
    return ("Project", plan_fingerprint(plan.child), plan.names)


@_register(Rename, "child", "mapping")
def _fp_rename(plan: Rename) -> Hashable:
    return ("Rename", plan_fingerprint(plan.child), plan.mapping)


@_register(Join, "left", "right", "conditions")
def _fp_join(plan: Join) -> Hashable:
    return (
        "Join",
        plan_fingerprint(plan.left),
        plan_fingerprint(plan.right),
        plan.conditions,
    )


@_register(DependentJoin, "child", "service", "input_map")
def _fp_dependentjoin(plan: DependentJoin) -> Hashable:
    return ("DependentJoin", plan_fingerprint(plan.child), plan.service, plan.input_map)


@_register(RecordLinkJoin, "left", "right", "linker", "threshold", "best_only")
def _fp_recordlinkjoin(plan: RecordLinkJoin) -> Hashable:
    return (
        "RecordLinkJoin",
        plan_fingerprint(plan.left),
        plan_fingerprint(plan.right),
        linker_token(plan.linker),
        plan.threshold,
        plan.best_only,
    )


@_register(Union, "parts")
def _fp_union(plan: Union) -> Hashable:
    return ("Union", tuple(plan_fingerprint(part) for part in plan.parts))


@_register(Distinct, "child")
def _fp_distinct(plan: Distinct) -> Hashable:
    return ("Distinct", plan_fingerprint(plan.child))


@_register(Limit, "child", "count")
def _fp_limit(plan: Limit) -> Hashable:
    return ("Limit", plan_fingerprint(plan.child), plan.count)


@_register(GroupBy, "child", "keys", "aggregates")
def _fp_groupby(plan: GroupBy) -> Hashable:
    return (
        "GroupBy",
        plan_fingerprint(plan.child),
        plan.keys,
        tuple((spec.fn, spec.attribute, spec.alias) for spec in plan.aggregates),
    )


def _predicate_token(predicate: Any) -> Hashable:
    # Predicates are frozen dataclasses with a stable, structure-complete
    # __str__ (repro.substrate.relational.predicates); type + str suffices.
    return (type(predicate).__name__, str(predicate))
