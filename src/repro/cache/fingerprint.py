"""Structural plan fingerprints.

The suggestion pipeline evaluates *many* candidate plans per refresh, and
the candidates overwhelmingly share structure: every extension of the
current ``IntegrationQuery`` embeds the current plan as its join prefix,
and consecutive ``column_suggestions`` refreshes re-build byte-identical
plan trees. :func:`plan_fingerprint` maps a plan to a hashable value that
is equal exactly when two plans are structurally interchangeable, so the
evaluator's result cache can serve the shared prefix once.

Fingerprints are *content-based* wherever the node's behaviour is fully
described by its dataclass fields (scans, joins, projections, predicates —
all frozen dataclasses with stable ``str``). The two behavioural escape
hatches are handled explicitly:

- **linkers** (``RecordLinkJoin.linker``) may carry learned weights; a
  :class:`~repro.linking.linker.LearnedLinker` contributes its field pairs,
  similarity names, and current weights (so two freshly-built linkers over
  the same edge are interchangeable, and a *trained* linker fingerprints
  differently from an untrained one). Unknown :class:`RowLinker`
  subclasses fall back to object identity — correct, merely cache-shy.
- **unknown plan nodes** fingerprint by identity for the same reason.

The catalog's contents are deliberately *not* part of the fingerprint;
pairing the fingerprint with :attr:`Catalog.version` is the cache key.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..substrate.relational.aggregates import GroupBy
from ..substrate.relational.algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    RowLinker,
    Scan,
    Select,
    Union,
)


def linker_token(linker: RowLinker) -> Hashable:
    """A hashable token equal for behaviourally-equal linkers."""
    extractor = getattr(linker, "extractor", None)
    weights = getattr(linker, "weights", None)
    if extractor is not None and isinstance(weights, dict):
        # LearnedLinker shape: field pairs × similarity names, plus the
        # learned weight vector (training must change the fingerprint).
        return (
            type(linker).__name__,
            tuple(str(pair) for pair in getattr(extractor, "field_pairs", ())),
            tuple(sorted(getattr(extractor, "similarities", {}))),
            tuple(sorted(weights.items())),
        )
    return (type(linker).__name__, id(linker))


def plan_fingerprint(plan: Plan) -> Hashable:
    """A hashable structural fingerprint of *plan* (see module docstring)."""
    if isinstance(plan, Scan):
        return ("Scan", plan.source)
    if isinstance(plan, Select):
        return ("Select", plan_fingerprint(plan.child), _predicate_token(plan.predicate))
    if isinstance(plan, Project):
        return ("Project", plan_fingerprint(plan.child), plan.names)
    if isinstance(plan, Rename):
        return ("Rename", plan_fingerprint(plan.child), plan.mapping)
    if isinstance(plan, Join):
        return (
            "Join",
            plan_fingerprint(plan.left),
            plan_fingerprint(plan.right),
            plan.conditions,
        )
    if isinstance(plan, DependentJoin):
        return ("DependentJoin", plan_fingerprint(plan.child), plan.service, plan.input_map)
    if isinstance(plan, RecordLinkJoin):
        return (
            "RecordLinkJoin",
            plan_fingerprint(plan.left),
            plan_fingerprint(plan.right),
            linker_token(plan.linker),
            plan.threshold,
            plan.best_only,
        )
    if isinstance(plan, Union):
        return ("Union", tuple(plan_fingerprint(part) for part in plan.parts))
    if isinstance(plan, Distinct):
        return ("Distinct", plan_fingerprint(plan.child))
    if isinstance(plan, Limit):
        return ("Limit", plan_fingerprint(plan.child), plan.count)
    if isinstance(plan, GroupBy):
        return (
            "GroupBy",
            plan_fingerprint(plan.child),
            plan.keys,
            tuple((spec.fn, spec.attribute, spec.alias) for spec in plan.aggregates),
        )
    # Unknown node kind: identity-based, still sound (same object, same
    # behaviour modulo catalog state, which the version key covers).
    return (type(plan).__name__, id(plan))


def _predicate_token(predicate: Any) -> Hashable:
    # Predicates are frozen dataclasses with a stable, structure-complete
    # __str__ (repro.substrate.relational.predicates); type + str suffices.
    return (type(predicate).__name__, str(predicate))
