"""The shared-subplan result cache.

Stores fully-materialized annotated row lists keyed on
``(plan_fingerprint, catalog_version)``. The version component makes
invalidation *precise*: any catalog mutation — a committed source, a trust
adjustment, link-example feedback — moves the version forward, so stale
entries simply stop being addressable and age out of the LRU.

When the cache is promoted to a shared tier (the multi-tenant server),
callers additionally pass the catalog's ``cache_scope``, which is folded
into every key: sessions forked from the same frozen base share a scope
(so tenant A's evaluation is a hit for tenant B), while catalogs of
different lineage — or forks that have diverged — can never collide.

Entries are shared: a hit returns a shallow copy of the stored list (rows
and provenance expressions are immutable), so callers may extend/slice
their view without corrupting the cache.
"""

from __future__ import annotations

from typing import Hashable

from ..obs import METRICS
from ..provenance.expressions import Provenance
from ..substrate.relational.rows import Row
from .config import CACHE
from .lru import LRUCache

AnnotatedRows = list[tuple[Row, Provenance]]

_MISSING = object()


class PlanResultCache:
    """LRU of evaluated subplan results, version-keyed (one per evaluator)."""

    def __init__(self, capacity: int | None = None):
        self._lru = LRUCache(
            capacity or CACHE.plan_capacity, metrics_prefix="cache.plan"
        )

    def get(
        self, fingerprint: Hashable, version: Hashable, *, scope: Hashable = None
    ) -> AnnotatedRows | None:
        rows = self._lru.get((scope, fingerprint, version), _MISSING)
        if rows is _MISSING:
            return None
        return list(rows)

    def put(
        self, fingerprint: Hashable, version: Hashable, rows: AnnotatedRows, *, scope: Hashable = None
    ) -> None:
        self._lru.put((scope, fingerprint, version), list(rows))
        if METRICS.enabled:
            METRICS.gauge("cache.plan.size", float(len(self._lru)))

    # -- columnar entries ----------------------------------------------------
    # Batches live in the same LRU under a mode-tagged key: the columnar and
    # row representations of one subplan are distinct entries, so toggling
    # REPRO_COLUMNAR (the parity A/B benchmarks do, mid-process) can never
    # hand one mode a result materialized by the other.
    _BATCH_MODE = "columnar"

    def get_batch(self, fingerprint: Hashable, version: Hashable, *, scope: Hashable = None):
        """Cached :class:`ColumnBatch` for the key, or ``None``.

        Batches are immutable by contract (columns are never mutated in
        place), so the stored instance is returned as-is — no copy.
        """
        batch = self._lru.get((scope, fingerprint, version, self._BATCH_MODE), _MISSING)
        return None if batch is _MISSING else batch

    def put_batch(
        self, fingerprint: Hashable, version: Hashable, batch, *, scope: Hashable = None
    ) -> None:
        self._lru.put((scope, fingerprint, version, self._BATCH_MODE), batch)
        if METRICS.enabled:
            METRICS.gauge("cache.plan.size", float(len(self._lru)))

    def clear(self) -> None:
        self._lru.clear()

    @property
    def capacity(self) -> int:
        return self._lru.capacity

    def set_capacity(self, capacity: int) -> int:
        """Rebound the underlying LRU (brownout shrink); entries trimmed."""
        trimmed = self._lru.set_capacity(capacity)
        if METRICS.enabled:
            METRICS.gauge("cache.plan.size", float(len(self._lru)))
        return trimmed

    def stats(self) -> dict[str, int]:
        return self._lru.stats()

    def __len__(self) -> int:
        return len(self._lru)
