"""Incremental evaluation and caching for the suggestion pipeline.

The paper's interactivity promise (Section 2: ranked auto-complete after
*every* paste and feedback action) means the same candidate queries are
re-evaluated constantly. This package supplies the four layers that make
those re-evaluations cheap, in the spirit of WebRelate's and SmartTable's
candidate-result caching:

- :mod:`~repro.cache.config` — one on/off switch per layer
  (:data:`CACHE`), env-overridable, so correctness A/B tests can compare
  cached and uncached runs;
- :mod:`~repro.cache.lru` — the bounded LRU (hit/miss/evict counters,
  mirrored into :data:`repro.obs.METRICS`) backing the other layers;
- :mod:`~repro.cache.fingerprint` — structural plan fingerprints, so
  candidate plans sharing a join prefix share cached results;
- :mod:`~repro.cache.plan_cache` — the evaluator's shared-subplan result
  cache, keyed on ``(fingerprint, Catalog.version)`` for precise
  invalidation.

Service-call memoization lives on :class:`repro.substrate.services.base.
Service` and session-level suggestion reuse on
:class:`repro.core.session.CopyCatSession`; both consult :data:`CACHE`.
"""

from __future__ import annotations

from .config import CACHE, CacheConfig
from .fingerprint import linker_token, plan_fingerprint
from .lru import LRUCache
from .plan_cache import PlanResultCache
from .tiers import CacheTiers

__all__ = [
    "CACHE",
    "CacheConfig",
    "CacheTiers",
    "LRUCache",
    "PlanResultCache",
    "cache_stats_line",
    "linker_token",
    "plan_fingerprint",
]


def cache_stats_line(metrics=None) -> str:
    """One-line summary of every cache layer's counters (``--trace`` output).

    Reads the shared metrics registry (so it reflects whatever ran while
    observability was enabled) and the config switches.
    """
    from ..obs import METRICS

    m = metrics or METRICS
    plan_hits = int(m.counter_value("cache.plan.hits"))
    plan_misses = int(m.counter_value("cache.plan.misses"))
    plan_evictions = int(m.counter_value("cache.plan.evictions"))
    service_hits = int(m.counter_value("service.cache.hits"))
    service_misses = int(m.counter_value("service.cache.misses"))
    reused = int(m.counter_value("session.suggestions_reused"))
    blocked = int(m.counter_value("cache.blocking.joins"))
    pairs_pruned = int(m.counter_value("cache.blocking.pairs_pruned"))
    off = [layer for layer, on in CACHE.snapshot().items() if not on]
    line = (
        f"cache: plan {plan_hits}h/{plan_misses}m/{plan_evictions}e · "
        f"service {service_hits}h/{service_misses}m · "
        f"suggestions reused {reused} · "
        f"blocking {blocked} joins ({pairs_pruned} pairs pruned)"
    )
    if off:
        line += " · disabled: " + ",".join(off)
    return line
