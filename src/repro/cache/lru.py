"""A small LRU cache with hit/miss/evict accounting.

Backs both the evaluator's plan-result cache and per-service call
memoization. Counters are kept locally (cheap, always on, drive the
``--trace`` cache summary and per-service stats) and mirrored into the
shared :data:`~repro.obs.METRICS` registry when that is enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from ..obs import METRICS

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with bounded size and stats.

    ``metrics_prefix`` names the obs counters this cache emits
    (``<prefix>.hits`` / ``.misses`` / ``.evictions``).
    """

    __slots__ = ("_data", "capacity", "metrics_prefix", "hits", "misses", "evictions")

    def __init__(self, capacity: int = 256, metrics_prefix: str | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.capacity = capacity
        self.metrics_prefix = metrics_prefix
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._data.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            if METRICS.enabled and self.metrics_prefix:
                METRICS.inc(self.metrics_prefix + ".misses")
            return default
        self._data.move_to_end(key)
        self.hits += 1
        if METRICS.enabled and self.metrics_prefix:
            METRICS.inc(self.metrics_prefix + ".hits")
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1
            if METRICS.enabled and self.metrics_prefix:
                METRICS.inc(self.metrics_prefix + ".evictions")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Explicit invalidation: drop entries, keep lifetime stats."""
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
