"""A small LRU cache with hit/miss/evict accounting.

Backs both the evaluator's plan-result cache and per-service call
memoization. Counters are kept locally (cheap, always on, drive the
``--trace`` cache summary and per-service stats) and mirrored into the
shared :data:`~repro.obs.METRICS` registry when that is enabled.

Thread safety: every operation that touches the ordered dict or the
counters runs under one per-cache mutex, so a cache instance can be
promoted to a *shared tier* (see :mod:`repro.cache.tiers`) and consulted
by many sessions concurrently — a ``get`` reorders recency and a ``put``
may evict, both of which would corrupt an ``OrderedDict`` under a bare
race. The lock is uncontended (and therefore cheap) in the single-session
case, which keeps the pre-server behavior and stats byte-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_lock
from ..obs import METRICS

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with bounded size and stats.

    ``metrics_prefix`` names the obs counters this cache emits
    (``<prefix>.hits`` / ``.misses`` / ``.evictions``).
    """

    __slots__ = (
        "_data",
        "_lock",
        "capacity",
        "metrics_prefix",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, capacity: int = 256, metrics_prefix: str | None = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = make_lock("LRUCache._lock")
        self.capacity = capacity
        self.metrics_prefix = metrics_prefix
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if RACECHECK.enabled:
                # a get *writes*: move_to_end reorders recency.
                TRACKER.note_access("LRUCache._data", self)
            entry = self._data.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        if METRICS.enabled and self.metrics_prefix:
            METRICS.inc(
                self.metrics_prefix + (".misses" if entry is _MISSING else ".hits")
            )
        return default if entry is _MISSING else entry

    def put(self, key: Hashable, value: Any) -> None:
        evicted = False
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("LRUCache._data", self)
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if len(data) > self.capacity:
                data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted and METRICS.enabled and self.metrics_prefix:
            METRICS.inc(self.metrics_prefix + ".evictions")

    def set_capacity(self, capacity: int) -> int:
        """Rebound the cache, trimming LRU-first; returns entries dropped.

        Shrinking under memory pressure (the server's brownout mode) is an
        eviction like any other: trimmed entries count in ``evictions``.
        """
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        trimmed = 0
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("LRUCache._data", self)
            self.capacity = capacity
            data = self._data
            while len(data) > capacity:
                data.popitem(last=False)
                self.evictions += 1
                trimmed += 1
        if trimmed and METRICS.enabled and self.metrics_prefix:
            METRICS.inc(self.metrics_prefix + ".evictions", trimmed)
        return trimmed

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Explicit invalidation: drop entries, keep lifetime stats."""
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("LRUCache._data", self)
            self._data.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
            }

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
