"""Cache configuration: one switch per cache layer, env-overridable.

Every cache in the subsystem (see the package docstring) is individually
disableable so correctness A/B tests and the CI cached-vs-uncached gate can
toggle layers without monkeypatching. Resolution order:

1. programmatic: ``CACHE.plan = False`` or the :meth:`CacheConfig.disabled`
   context manager (used by tests/benchmarks);
2. environment, read once at import: ``REPRO_CACHE=0`` kills every layer,
   ``REPRO_CACHE_PLAN=0`` / ``REPRO_CACHE_SERVICE=0`` /
   ``REPRO_CACHE_BLOCKING=0`` / ``REPRO_CACHE_SUGGESTIONS=0`` kill one.

The flags are plain attributes on a process-wide singleton (:data:`CACHE`),
mirroring how ``repro.obs`` exposes METRICS/TRACER: call sites pay one
attribute read when deciding whether to consult a cache.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


class CacheConfig:
    """Mutable on/off switches for each cache layer."""

    #: Flag attributes, also the vocabulary accepted by :meth:`disabled`.
    LAYERS = ("plan", "service", "blocking", "suggestions")

    def __init__(self) -> None:
        master = _env_flag("REPRO_CACHE", True)
        #: shared-subplan result cache in the evaluator
        self.plan = master and _env_flag("REPRO_CACHE_PLAN", True)
        #: Service.invoke memoization
        self.service = master and _env_flag("REPRO_CACHE_SERVICE", True)
        #: blocking-aware RecordLinkJoin candidate generation
        self.blocking = master and _env_flag("REPRO_CACHE_BLOCKING", True)
        #: session-level dirty-flag suggestion reuse
        self.suggestions = master and _env_flag("REPRO_CACHE_SUGGESTIONS", True)
        #: below this many left×right pairs a RecordLinkJoin keeps the full
        #: cross even with blocking on — blocking is an approximation, so it
        #: is reserved for inputs where the quadratic scan actually hurts.
        self.blocking_min_pairs = int(os.environ.get("REPRO_CACHE_BLOCKING_MIN_PAIRS", "4096"))
        #: LRU capacities (entries), kept modest: results are small at the
        #: paper's scale and precision of invalidation does the real work.
        self.plan_capacity = int(os.environ.get("REPRO_CACHE_PLAN_CAPACITY", "512"))
        self.service_capacity = int(os.environ.get("REPRO_CACHE_SERVICE_CAPACITY", "2048"))

    def set_all(self, enabled: bool) -> None:
        for layer in self.LAYERS:
            setattr(self, layer, enabled)

    @contextmanager
    def disabled(self, *layers: str):
        """Temporarily disable the named layers (all, when none are named)."""
        names = layers or self.LAYERS
        for name in names:
            if name not in self.LAYERS:
                raise ValueError(f"unknown cache layer {name!r}; known: {self.LAYERS}")
        previous = {name: getattr(self, name) for name in names}
        try:
            for name in names:
                setattr(self, name, False)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, bool]:
        return {layer: bool(getattr(self, layer)) for layer in self.LAYERS}

    def __repr__(self) -> str:
        states = ", ".join(f"{k}={'on' if v else 'off'}" for k, v in self.snapshot().items())
        return f"CacheConfig({states})"


#: The process-wide cache configuration every layer consults.
CACHE = CacheConfig()
