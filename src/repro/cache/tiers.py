"""Shared cache tiers for the multi-tenant session server.

One :class:`CacheTiers` bundle holds every memo an evaluation stack uses:

- **plan** — the :class:`~repro.cache.plan_cache.PlanResultCache` of
  materialized subplan results (PR 2);
- **analysis** — the static plan-analyzer report memo (PR 5);
- **compile** / **scan** — the columnar engine's compiled-closure and
  scan-transpose memos (PR 6).

Historically each evaluator/engine owned private instances of these. The
server promotes one bundle to a *shared tier* consulted by every tenant:
keys fold in the catalog's ``cache_scope`` (see
:meth:`repro.substrate.relational.catalog.Catalog.fork`), so tenants forked
from one frozen base address the same entries — tenant A's compiled plan
closure or materialized join is a hit for tenant B — while diverged or
unrelated catalogs can never collide. The underlying :class:`LRUCache`
instances are internally locked, which makes the bundle thread-safe without
any locking here.

The bundle also provides **single-flight** execution (:meth:`flight`): when
N tenants concurrently miss on the same root plan, one computes while the
rest wait and then hit, instead of all N redundantly computing under the
GIL — without it, a cold start pays N× the work and the shared tier buys
nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_lock
from .lru import LRUCache
from .plan_cache import PlanResultCache


class CacheTiers:
    """The full set of evaluation memos, optionally shared across sessions.

    ``shared=False`` (the default, and the only mode exercised with
    ``REPRO_SERVER=0``) reproduces the historical per-evaluator layout
    exactly: same capacities, same metrics prefixes, and :meth:`flight` is a
    no-op. ``shared=True`` marks the bundle as a cross-tenant tier and turns
    on single-flight keying.
    """

    def __init__(self, *, shared: bool = False):
        # Deferred: importing repro.analysis at module scope would cycle back
        # through repro.cache (plan_analyzer uses cache.fingerprint).
        from ..analysis.config import ANALYSIS
        from ..substrate.relational.config import COLUMNAR

        self.shared = shared
        self.plan = PlanResultCache()
        self.analysis = LRUCache(ANALYSIS.memo_capacity, metrics_prefix="analysis.memo")
        self.compile = LRUCache(COLUMNAR.compile_capacity, metrics_prefix="columnar.compile")
        self.scan = LRUCache(COLUMNAR.scan_capacity, metrics_prefix="columnar.scan")
        # Configured capacities, remembered so a brownout shrink can be
        # undone exactly (restore() after the load controller recovers).
        self._full_capacities = {
            name: getattr(self, name).capacity
            for name in ("plan", "analysis", "compile", "scan")
        }
        self.shrunk = False
        self._flight_master = make_lock("CacheTiers._flight_master")
        self._flights: dict = {}

    @contextmanager
    def flight(self, key: Hashable):
        """Serialize concurrent work on *key* (single-flight).

        The first caller acquires a per-key lock and computes; later callers
        block on the same lock, and on waking re-probe the cache and hit.
        Locks are refcounted and dropped when the last flight on a key
        lands, so the dict stays bounded by in-progress work. No-op when the
        bundle is not shared — single-session evaluation stays lock-free on
        this path.
        """
        if not self.shared:
            yield
            return
        with self._flight_master:
            if RACECHECK.enabled:
                TRACKER.note_access("CacheTiers._flights", self)
            lock, refs = self._flights.get(key, (None, 0))
            if lock is None:
                lock = make_lock("CacheTiers.<flight>")
            self._flights[key] = (lock, refs + 1)
        lock.acquire()
        try:
            yield
        finally:
            lock.release()
            with self._flight_master:
                if RACECHECK.enabled:
                    TRACKER.note_access("CacheTiers._flights", self)
                lock, refs = self._flights[key]
                if refs <= 1:
                    del self._flights[key]
                else:
                    self._flights[key] = (lock, refs - 1)

    def shrink(self, factor: int) -> int:
        """Brownout memory headroom: divide every tier's capacity by
        *factor* (floored at 8 entries), trimming LRU-first; idempotent
        until :meth:`restore`. Returns entries trimmed."""
        if self.shrunk:
            return 0
        self.shrunk = True
        trimmed = 0
        for name, full in self._full_capacities.items():
            trimmed += getattr(self, name).set_capacity(max(8, full // max(1, factor)))
        return trimmed

    def restore(self) -> None:
        """Undo :meth:`shrink`: configured capacities back, entries refill
        naturally (no way to un-evict)."""
        if not self.shrunk:
            return
        self.shrunk = False
        for name, full in self._full_capacities.items():
            getattr(self, name).set_capacity(full)

    def clear(self) -> None:
        """Drop every tier's entries (lifetime stats survive)."""
        self.plan.clear()
        self.analysis.clear()
        self.compile.clear()
        self.scan.clear()

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "plan": self.plan.stats(),
            "analysis": self.analysis.stats(),
            "compile": self.compile.stats(),
            "scan": self.scan.stats(),
        }

    def __repr__(self) -> str:
        kind = "shared" if self.shared else "private"
        sizes = ", ".join(f"{name}={s['size']}" for name, s in self.stats().items())
        return f"CacheTiers({kind}, {sizes})"
