"""Synthetic data generation: word banks and the hurricane-relief scenario."""

from .names import SEED_CITIES, person_name, phone_number, shelter_name
from .scenario import Scenario, ShelterRecord, build_scenario
from .supplies import DepotRecord, SuppliesScenario, build_supplies_scenario

__all__ = [
    "DepotRecord", "SEED_CITIES", "Scenario", "ShelterRecord", "SuppliesScenario",
    "build_scenario", "build_supplies_scenario",
    "person_name", "phone_number", "shelter_name",
]
