"""The supplies-depot scenario: unit conversion in the integration loop.

Section 4 lists "currency and unit conversion" among the predefined
services, and the demo plan (Section 8) promises auto-completion "including
joins, unions, and unit conversion". This second domain exercises that
path: relief depots report stock quantities in mixed imperial units; the
target table needs everything in kilograms.

The canonical flow (see ``tests/test_supplies.py`` and the
``advanced_workspace`` example family):

1. import the depot listing from the logistics website;
2. flash-fill a constant ``To`` column (``"kg"``) — a one-keystroke
   demonstration of the desired output unit;
3. the unit-converter service edge becomes applicable (its ``Value``,
   ``From``, ``To`` inputs are all present), and the ``Converted`` column
   auto-completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..substrate.documents.render import ListingTemplate
from ..substrate.documents.website import Website
from ..substrate.relational.catalog import Catalog, SourceMetadata
from ..substrate.relational.relation import Relation
from ..substrate.relational.schema import (
    CITY,
    NUMBER,
    TEXT,
    Attribute,
    Schema,
)
from ..substrate.services.conversion import UNIT_TO_BASE, make_unit_converter
from ..substrate.services.gazetteer import Gazetteer
from ..util.rng import derive_rng, make_rng

ITEMS = ("Bottled Water", "Blankets", "MRE Rations", "Tarps", "Medical Kits", "Sandbags")
WEIGHT_UNITS = ("lb", "ton", "kg", "oz")


@dataclass
class DepotRecord:
    """Ground truth for one depot stock line."""

    depot: str
    city: str
    item: str
    value: float
    unit: str

    def kilograms(self) -> float:
        kind, factor = UNIT_TO_BASE[self.unit]
        assert kind == "weight"
        return round(self.value * factor / UNIT_TO_BASE["kg"][1], 6)

    def as_row(self) -> dict[str, Any]:
        return {
            "Depot": self.depot,
            "City": self.city,
            "Item": self.item,
            "Value": self.value,
            "From": self.unit,
        }


@dataclass
class SuppliesScenario:
    """The depot world: records, website, catalog with the unit converter."""

    seed: int
    depots: list[DepotRecord]
    website: Website
    catalog: Catalog

    def truth_rows(self) -> list[dict[str, Any]]:
        return [record.as_row() for record in self.depots]

    def list_url(self) -> str:
        return self.website.absolute("depots")


def build_supplies_scenario(seed: int = 0, n_lines: int = 9, n_cities: int = 5) -> SuppliesScenario:
    """Build the depot world deterministically from *seed*."""
    rng = make_rng(seed)
    gazetteer = Gazetteer(n_cities=n_cities, streets_per_city=5, seed=derive_rng(rng, "gaz"))
    depot_rng = derive_rng(rng, "depots")
    records: list[DepotRecord] = []
    for index in range(n_lines):
        city = gazetteer.cities[index % len(gazetteer.cities)]
        records.append(
            DepotRecord(
                depot=f"{city.split()[0]} Depot {index + 1}",
                city=city,
                item=depot_rng.choice(ITEMS),
                value=round(depot_rng.uniform(50, 5000), 1),
                unit=depot_rng.choice(WEIGHT_UNITS),
            )
        )

    website = Website("http://logistics.example")
    template = ListingTemplate(
        columns=("Depot", "City", "Item", "Value", "From"),
        style="table",
        noise=1,
        seed=derive_rng(rng, "render").randrange(2**31),
    )
    website.add_page(
        "depots",
        template.render([r.as_row() for r in records], title="Relief Supply Depots"),
        title="Relief Supply Depots",
    )

    catalog = Catalog()
    catalog.add_service(make_unit_converter(), SourceMetadata(origin="predefined"))

    # A local requirements table: how many kg of each item each city needs.
    req_schema = Schema(
        [
            Attribute("City", CITY),
            Attribute("Item", TEXT),
            Attribute("RequiredKg", NUMBER),
        ]
    )
    requirements = Relation("Requirements", req_schema)
    req_rng = derive_rng(rng, "req")
    for city in gazetteer.cities:
        for item in ITEMS[:3]:
            requirements.add([city, item, req_rng.randrange(100, 3000, 50)])
    catalog.add_relation(requirements, SourceMetadata(origin="import"))

    return SuppliesScenario(
        seed=seed if isinstance(seed, int) else 0,
        depots=records,
        website=website,
        catalog=catalog,
    )
