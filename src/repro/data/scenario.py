"""The hurricane-relief scenario (Example 1 and the Section 8 demo).

Builds, from one seed, a mutually consistent world:

- a **gazetteer** of addresses with zips and geocodes;
- a **TV-news website** listing shelters (optionally across several pages,
  with configurable template noise, per the structure-learner ablations);
- a **contacts spreadsheet** whose shelter names are noisy variants of the
  website's names (exercising record linking);
- the **predefined services** (zip resolver, geocoder, place resolver,
  reverse directory, conversions);
- extra local-repository sources (damage reports, road conditions) that give
  the integration learner additional column suggestions to choose among;
- a **ground-truth integrated table** used by evaluations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..substrate.documents.render import ListingTemplate, render_detail_page
from ..substrate.documents.spreadsheet import Sheet, Workbook
from ..substrate.documents.textdoc import TextDocument
from ..substrate.documents.website import Website, paged_url
from ..substrate.relational.catalog import Catalog, SourceMetadata
from ..substrate.relational.relation import Relation
from ..substrate.relational.schema import (
    CITY,
    TEXT,
    Attribute,
    Schema,
)
from ..substrate.services.gazetteer import Address, Gazetteer
from ..substrate.services.registry import ServiceRegistry
from ..util.rng import derive_rng, make_rng
from .names import person_name, phone_number, shelter_name

DAMAGE_LEVELS = ("none", "minor", "moderate", "severe", "catastrophic")
ROAD_STATUSES = ("open", "open", "flooded", "closed", "debris")


@dataclass
class ShelterRecord:
    """Ground truth for one shelter."""

    name: str
    address: Address
    contact: str
    phone: str
    noisy_name: str  # as it appears in the contacts spreadsheet
    capacity: int = 0

    def as_row(self) -> dict[str, Any]:
        return {
            "Name": self.name,
            "Street": self.address.street,
            "City": self.address.city,
            "Zip": self.address.zip,
            "Lat": self.address.lat,
            "Lon": self.address.lon,
            "Contact": self.contact,
            "Phone": self.phone,
            "Capacity": self.capacity,
        }


def _noisy_shelter_name(name: str, rng: random.Random, level: float) -> str:
    """Perturb a shelter name the way a hand-typed contact list would.

    Perturbations: abbreviation (High School → HS), dropped suffix words,
    character typos. ``level`` in [0, 1] scales how many perturbations fire.
    """
    noisy = name
    if rng.random() < level:
        noisy = (
            noisy.replace("High School", "HS")
            .replace("Middle School", "MS")
            .replace("Elementary School", "Elem")
        )
    if rng.random() < level * 0.7 and noisy.endswith(("Center", "School")):
        noisy = noisy.rsplit(" ", 1)[0]
    if rng.random() < level * 0.5 and len(noisy) > 6:
        # One transposition typo away from the true name.
        position = rng.randrange(1, len(noisy) - 2)
        if noisy[position].isalpha() and noisy[position + 1].isalpha():
            noisy = (
                noisy[:position]
                + noisy[position + 1]
                + noisy[position]
                + noisy[position + 2 :]
            )
    return noisy


@dataclass
class Scenario:
    """Everything the examples, tests, and benchmarks need, in one object."""

    seed: int
    gazetteer: Gazetteer
    shelters: list[ShelterRecord]
    website: Website
    contacts_workbook: Workbook
    situation_report: TextDocument
    registry: ServiceRegistry
    catalog: Catalog
    shelter_columns: tuple[str, ...] = ("Name", "Street", "City")
    list_path: str = "shelters"
    pages: int = 1

    # -- ground truth -----------------------------------------------------------
    def truth_rows(self) -> list[dict[str, Any]]:
        return [shelter.as_row() for shelter in self.shelters]

    def truth_shelter_rows(self) -> list[dict[str, Any]]:
        return [
            {column: row[column] for column in self.shelter_columns}
            for row in self.truth_rows()
        ]

    def shelter_by_name(self, name: str) -> ShelterRecord:
        for shelter in self.shelters:
            if shelter.name == name:
                return shelter
        raise KeyError(name)

    def list_urls(self) -> list[str]:
        if self.pages == 1:
            return [self.website.absolute(self.list_path)]
        return [
            self.website.absolute(paged_url(self.list_path, page))
            for page in range(1, self.pages + 1)
        ]

    @property
    def contacts_sheet(self) -> Sheet:
        return self.contacts_workbook.first_sheet


def build_scenario(
    seed: int = 0,
    n_shelters: int = 12,
    noise: int = 1,
    pages: int = 1,
    listing_style: str = "table",
    name_noise: float = 0.8,
    n_cities: int = 8,
    link_details: bool = False,
    form_site: bool = False,
) -> Scenario:
    """Construct the full hurricane-relief world.

    ``noise`` is the page-template noise level (0–3); ``name_noise`` controls
    how mangled the contact spreadsheet's shelter names are; ``pages`` splits
    the shelter listing across several ``?page=k`` pages. ``link_details``
    makes each listed shelter name link to its per-record detail page (the
    hierarchical-site case); ``form_site`` additionally serves per-city
    result pages behind a search form (``/search`` -> ``shelters?city=X``).
    """
    rng = make_rng(seed)
    gazetteer = Gazetteer(n_cities=n_cities, streets_per_city=30, seed=derive_rng(rng, "gaz"))

    # -- shelters ---------------------------------------------------------------
    shelter_rng = derive_rng(rng, "shelters")
    cities = gazetteer.cities[: max(3, n_cities // 2)]
    addresses = gazetteer.sample(n_shelters, seed=derive_rng(rng, "addr"), cities=cities)
    used_names: set[str] = set()
    shelters: list[ShelterRecord] = []
    for address in addresses:
        name = shelter_name(shelter_rng, used_names)
        shelters.append(
            ShelterRecord(
                name=name,
                address=address,
                contact=person_name(shelter_rng),
                phone=phone_number(shelter_rng),
                noisy_name=_noisy_shelter_name(name, shelter_rng, name_noise),
                capacity=shelter_rng.randrange(60, 600, 20),
            )
        )

    # -- the TV-news website ------------------------------------------------------
    website = Website("http://channel7news.example")
    template = ListingTemplate(
        columns=("Name", "Street", "City"),
        style=listing_style,
        noise=noise,
        seed=derive_rng(rng, "render").randrange(2**31),
        link_field="__detail__" if link_details else None,
    )
    records = [
        {
            "Name": s.name,
            "Street": s.address.street,
            "City": s.address.city,
            "__detail__": f"/shelter/{index}",
        }
        for index, s in enumerate(shelters)
    ]
    per_page = (len(records) + pages - 1) // pages
    for page_number in range(1, pages + 1):
        chunk = records[(page_number - 1) * per_page : page_number * per_page]
        nav = [
            (f"Page {k}", paged_url("shelters", k))
            for k in range(1, pages + 1)
            if k != page_number
        ]
        path = "shelters" if pages == 1 else paged_url("shelters", page_number)
        website.add_page(
            path,
            template.render(chunk, title="Hurricane Shelters - Channel 7", nav_links=nav),
            title="Hurricane Shelters",
        )
    if form_site:
        # Per-city result pages behind a search form: the paper's "pages
        # accessible via a form" case. Same template, city-filtered rows.
        form_cities = sorted({s.address.city for s in shelters})
        for city in form_cities:
            chunk = [r for r in records if r["City"] == city]
            website.add_page(
                f"shelters?city={city.replace(' ', '+')}",
                template.render(chunk, title=f"Shelters in {city}"),
                title=f"Shelters in {city}",
            )
        website.add_form(
            "search",
            ["city"],
            lambda values: f"shelters?city={values['city'].replace(' ', '+')}",
        )
    for index, shelter in enumerate(shelters):
        website.add_page(
            f"shelter/{index}",
            render_detail_page(
                {
                    "Name": shelter.name,
                    "Street": shelter.address.street,
                    "City": shelter.address.city,
                    "Phone": shelter.phone,
                },
                fields=("Name", "Street", "City", "Phone"),
                title_field="Name",
            ),
            title=shelter.name,
        )

    # -- the contacts spreadsheet ----------------------------------------------------
    workbook = Workbook("ShelterContacts")
    sheet = workbook.new_sheet("Contacts", header=["Shelter", "Contact", "Phone", "Address"])
    contact_order = list(shelters)
    derive_rng(rng, "contact-order").shuffle(contact_order)
    for shelter in contact_order:
        sheet.append_row(
            [
                shelter.noisy_name,
                shelter.contact,
                shelter.phone,
                f"{shelter.address.street}, {shelter.address.city}",
            ]
        )

    # -- the FEMA situation report (Word-like text document) ----------------------------
    report_lines = [
        "SHELTER STATUS REPORT",
        "County Emergency Operations Center",
        "",
        "Summary: all listed facilities operational as of this morning.",
        "",
    ]
    for s in shelters:
        report_lines.extend(
            [
                f"Name: {s.name}",
                f"Street: {s.address.street}",
                f"City: {s.address.city}",
                f"Capacity: {s.capacity}",
                "",
            ]
        )
    report_lines.append("END OF REPORT")
    situation_report = TextDocument(
        name="SituationReport", text="\n".join(report_lines)
    )

    # -- services -------------------------------------------------------------------
    places = {
        s.name: {
            "Street": s.address.street,
            "City": s.address.city,
            "Lat": s.address.lat,
            "Lon": s.address.lon,
        }
        for s in shelters
    }
    contacts_for_directory = [{"Name": s.contact, "Phone": s.phone} for s in shelters]
    registry = (
        ServiceRegistry(gazetteer)
        .install_location_services()
        .install_conversion_services()
        .install_place_resolver(places)
        .install_directories(contacts_for_directory)
    )

    # -- catalog with local-repository sources -----------------------------------------
    catalog = Catalog()
    registry.register_all(catalog)

    damage_schema = Schema([Attribute("City", CITY), Attribute("Damage", TEXT)])
    damage = Relation("DamageReports", damage_schema)
    damage_rng = derive_rng(rng, "damage")
    for city in gazetteer.cities:
        damage.add([city, damage_rng.choice(DAMAGE_LEVELS)])
    catalog.add_relation(damage, SourceMetadata(origin="import"))

    roads_schema = Schema([Attribute("City", CITY), Attribute("RoadStatus", TEXT)])
    roads = Relation("RoadConditions", roads_schema)
    roads_rng = derive_rng(rng, "roads")
    for city in gazetteer.cities:
        roads.add([city, roads_rng.choice(ROAD_STATUSES)])
    catalog.add_relation(roads, SourceMetadata(origin="import"))

    return Scenario(
        seed=seed if isinstance(seed, int) else 0,
        gazetteer=gazetteer,
        shelters=shelters,
        website=website,
        contacts_workbook=workbook,
        situation_report=situation_report,
        registry=registry,
        catalog=catalog,
        pages=pages,
    )
