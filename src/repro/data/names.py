"""Deterministic word banks for synthetic data generation.

The hurricane-relief scenario (Example 1 and the Section 8 demo) needs
plausible shelter names, street names, contact people, and phone numbers.
Everything here is generated from fixed word banks and a seeded RNG so the
whole scenario — and therefore every test and benchmark — is reproducible.
"""

from __future__ import annotations

import random

from ..util.rng import make_rng

# Cities from the paper's screenshots (Coconut Creek, Oakland Park appear in
# Figure 1) plus the Broward County area the scenario is set in.
SEED_CITIES = (
    "Coconut Creek",
    "Oakland Park",
    "Pompano Beach",
    "Fort Lauderdale",
    "Hollywood",
    "Plantation",
    "Sunrise",
    "Margate",
    "Tamarac",
    "Davie",
    "Coral Springs",
    "Deerfield Beach",
)

CITY_PREFIXES = ("Lake", "Palm", "Cypress", "Sea", "Bay", "Pine", "Sand", "Ocean")
CITY_SUFFIXES = ("Grove", "Harbor", "Springs", "Ridge", "Shores", "Terrace", "Point", "Villas")

STREET_NAMES = (
    "Monarch", "Andrews", "Atlantic", "Cypress", "Federal", "Commercial",
    "Sample", "Copans", "Hillsboro", "Sunrise", "Riverside", "Seabreeze",
    "Banyan", "Orange", "Poinciana", "Mangrove", "Heron", "Pelican",
    "Ibis", "Osprey", "Flamingo", "Dolphin", "Manatee", "Tarpon",
)
STREET_SUFFIXES = ("Blvd", "Ave", "St", "Rd", "Dr", "Way", "Ct", "Ln")
STREET_DIRECTIONS = ("", "", "", "N", "S", "E", "W", "NE", "NW", "SE", "SW")

SCHOOL_KINDS = ("High", "Middle", "Elementary")
SHELTER_KINDS = (
    "{name} {kind} School",
    "{name} Community Center",
    "{name} Recreation Center",
    "{name} Civic Center",
)
SHELTER_NAME_WORDS = (
    "Monarch", "North Andrews Gardens", "Pompano Beach", "Coral Glades",
    "Everglades", "Seminole", "Flamingo", "Heron Heights", "Sawgrass",
    "Cypress Bay", "Silver Lakes", "Park Trails", "Eagle Point",
    "Sandpiper", "Tradewinds", "Riverglades", "Quiet Waters",
    "Winston Park", "Forest Hills", "Atlantic West", "Banyan Creek",
    "Palmview", "Tedder", "Norcrest", "Croissant Park", "Harbordale",
)

FIRST_NAMES = (
    "Maria", "James", "Linda", "Robert", "Patricia", "Michael", "Barbara",
    "William", "Elizabeth", "David", "Jennifer", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Carlos", "Nancy", "Daniel",
    "Karen", "Luis", "Betty", "Kevin", "Sandra", "Jason", "Ashley",
)
LAST_NAMES = (
    "Garcia", "Smith", "Johnson", "Rodriguez", "Williams", "Martinez",
    "Brown", "Jones", "Hernandez", "Miller", "Davis", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Perez",
)

AREA_CODES = ("954", "754", "305", "561")


def generated_city_names(count: int, seed: int | random.Random | None = None) -> list[str]:
    """Deterministically generate *count* city names beyond the seed list."""
    rng = make_rng(seed)
    names: list[str] = []
    seen = set(SEED_CITIES)
    while len(names) < count:
        name = f"{rng.choice(CITY_PREFIXES)} {rng.choice(CITY_SUFFIXES)}"
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def street_address(rng: random.Random) -> str:
    """One street address line, e.g. ``1445 NW Monarch Blvd``."""
    number = rng.randint(100, 9900)
    direction = rng.choice(STREET_DIRECTIONS)
    name = rng.choice(STREET_NAMES)
    suffix = rng.choice(STREET_SUFFIXES)
    middle = f"{direction} {name}".strip()
    return f"{number} {middle} {suffix}"


def shelter_name(rng: random.Random, used: set[str]) -> str:
    """A unique shelter name like ``Monarch High School``."""
    for _ in range(1000):
        template = rng.choice(SHELTER_KINDS)
        base = rng.choice(SHELTER_NAME_WORDS)
        name = template.format(name=base, kind=rng.choice(SCHOOL_KINDS))
        if name not in used:
            used.add(name)
            return name
    raise RuntimeError("exhausted shelter name space")


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def phone_number(rng: random.Random) -> str:
    return f"({rng.choice(AREA_CODES)}) {rng.randint(200, 999)}-{rng.randint(1000, 9999)}"
