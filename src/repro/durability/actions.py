"""Per-action codecs: session calls -> JSON payloads -> session calls.

Every recordable :class:`~repro.core.session.CopyCatSession` method has
an **encoder** (called write-ahead, before the method body runs) that
captures its arguments as a JSON-able payload, and an **applier** that
re-invokes the method from a decoded payload during replay. Replay goes
through the *same public methods* as the original interaction — there is
no parallel "restore" code path to drift out of sync — so a replayed
session re-earns its state: the structure learner re-induces, MIRA
re-updates, provenance re-derives.

Two encoders do more than transcribe arguments:

- ``paste`` resolves the implicit clipboard event and serializes the
  copied document world (:mod:`repro.durability.docs`) so replay does
  not need a live clipboard;
- ``resync_source`` snapshots the *current* content of the source's
  live page at resync time. A resync is the one action whose outcome
  depends on external state (the site may have drifted since commit);
  logging the refetched content pins that outcome, and the applier
  injects it into the replayed container before re-running the resync.

Methods whose arguments cannot round-trip through JSON — ``adopt_query``
(carries a live :class:`QuerySuggestion`) and
``apply_edit_generalization`` (carries a learned :class:`Transform`) —
are deliberately *not* recorded; see :data:`UNRECORDED` and the README's
durability section for the contract.
"""

from __future__ import annotations

from typing import Any, Callable

from ..substrate.documents.clipboard import CopyEvent, SourceContext
from ..substrate.documents.spreadsheet import Sheet, Workbook
from ..substrate.documents.textdoc import TextDocument
from ..substrate.documents.website import Page, Website
from ..substrate.relational.schema import SemanticType
from .docs import (
    SerializationError,
    dom_from_dict,
    dom_to_dict,
    locator_from_dict,
    locator_to_dict,
    page_to_dict,
    sheet_from_dict,
    sheet_to_dict,
    textdoc_from_dict,
    textdoc_to_dict,
    website_from_dict,
    website_to_dict,
    workbook_from_dict,
    workbook_to_dict,
)

#: Session methods intentionally outside the log (unserializable args or
#: read-only): documented contract, checked by the tests.
UNRECORDED = (
    "adopt_query",
    "apply_edit_generalization",
    "explain",
    "explain_pasted_tuples",
    "cell_alternatives",
)

_ENCODERS: dict[str, Callable[..., dict[str, Any]]] = {}
_APPLIERS: dict[str, Callable[[Any, dict[str, Any]], Any]] = {}


def _encoder(name: str):
    def register(fn):
        _ENCODERS[name] = fn
        return fn

    return register


def _applier(name: str):
    def register(fn):
        _APPLIERS[name] = fn
        return fn

    return register


def encode_action(name: str, session: Any, args: tuple, kwargs: dict) -> dict[str, Any]:
    """The JSON payload for one method call (mirrors its signature)."""
    try:
        encoder = _ENCODERS[name]
    except KeyError:
        raise SerializationError(f"no action codec registered for {name!r}") from None
    return encoder(session, *args, **kwargs)


def apply_action(session: Any, name: str, payload: dict[str, Any]) -> Any:
    """Re-invoke one logged action against *session* (replay path)."""
    try:
        applier = _APPLIERS[name]
    except KeyError:
        raise SerializationError(f"no action codec registered for {name!r}") from None
    return applier(session, payload)


def recordable_actions() -> tuple[str, ...]:
    """Every action name with both an encoder and an applier."""
    return tuple(sorted(set(_ENCODERS) & set(_APPLIERS)))


# ------------------------------------------------------------- copy events
def event_to_dict(event: CopyEvent) -> dict[str, Any]:
    context = event.context
    container = context.container
    document = context.document
    container_payload: dict[str, Any] | None = None
    if isinstance(container, Website):
        container_payload = website_to_dict(container)
    elif isinstance(container, Workbook):
        container_payload = workbook_to_dict(container)
    elif container is not None:
        raise SerializationError(
            f"unserializable copy container {type(container).__name__}"
        )

    if isinstance(document, Page):
        if isinstance(container, Website) and container.has_page(document.url):
            document_payload: dict[str, Any] = {
                "kind": "page-ref",
                "url": document.url,
            }
        else:
            document_payload = page_to_dict(document)
    elif isinstance(document, Sheet):
        if isinstance(container, Workbook) and document.name in container.sheet_names():
            document_payload = {"kind": "sheet-ref", "name": document.name}
        else:
            document_payload = sheet_to_dict(document)
    elif isinstance(document, TextDocument):
        document_payload = textdoc_to_dict(document)
    else:
        raise SerializationError(
            f"unserializable copy document {type(document).__name__}"
        )

    return {
        "text": event.text,
        "event_id": event.event_id,
        "app": context.app,
        "source_name": context.source_name,
        "url": context.url,
        "locator": locator_to_dict(context.locator),
        "document": document_payload,
        "container": container_payload,
    }


def event_from_dict(payload: dict[str, Any]) -> CopyEvent:
    container_payload = payload["container"]
    container: Any = None
    if container_payload is not None:
        if container_payload["kind"] == "website":
            container = website_from_dict(container_payload)
        elif container_payload["kind"] == "workbook":
            container = workbook_from_dict(container_payload)
        else:
            raise SerializationError(
                f"unknown container kind {container_payload['kind']!r}"
            )

    document_payload = payload["document"]
    kind = document_payload["kind"]
    if kind == "page-ref":
        document: Any = container.fetch(document_payload["url"])
    elif kind == "sheet-ref":
        document = container.sheet(document_payload["name"])
    elif kind == "page":
        document = Page(
            url=document_payload["url"],
            dom=dom_from_dict(document_payload["dom"]),
            title=document_payload["title"],
        )
    elif kind == "sheet":
        document = sheet_from_dict(document_payload)
    elif kind == "textdoc":
        document = textdoc_from_dict(document_payload)
    else:
        raise SerializationError(f"unknown document kind {kind!r}")

    context = SourceContext(
        app=payload["app"],
        source_name=payload["source_name"],
        document=document,
        locator=locator_from_dict(payload["locator"]),
        url=payload["url"],
        container=container,
    )
    return CopyEvent(
        text=payload["text"], context=context, event_id=payload["event_id"]
    )


# ------------------------------------------------------------ import mode
@_encoder("paste")
def _enc_paste(session, event=None, tab=None):
    event = event or session.clipboard.current()
    return {"event": event_to_dict(event), "tab": tab}


@_applier("paste")
def _app_paste(session, payload):
    return session.paste(event=event_from_dict(payload["event"]), tab=payload["tab"])


@_encoder("accept_row_suggestions")
def _enc_accept_rows(session, tab=None, indices=None):
    return {"tab": tab, "indices": None if indices is None else list(indices)}


@_applier("accept_row_suggestions")
def _app_accept_rows(session, payload):
    return session.accept_row_suggestions(
        tab=payload["tab"], indices=payload["indices"]
    )


@_encoder("reject_row_suggestions")
def _enc_reject_rows(session, tab=None):
    return {"tab": tab}


@_applier("reject_row_suggestions")
def _app_reject_rows(session, payload):
    return session.reject_row_suggestions(tab=payload["tab"])


@_encoder("label_column")
def _enc_label_column(session, col, name, tab=None):
    return {"col": col, "name": name, "tab": tab}


@_applier("label_column")
def _app_label_column(session, payload):
    return session.label_column(payload["col"], payload["name"], tab=payload["tab"])


@_encoder("set_column_type")
def _enc_set_column_type(session, col, semantic_type, tab=None, learn_from_values=True):
    if isinstance(semantic_type, str):
        type_payload: dict[str, Any] = {"str": semantic_type}
    else:
        type_payload = {"name": semantic_type.name, "parent": semantic_type.parent}
    return {
        "col": col,
        "semantic_type": type_payload,
        "tab": tab,
        "learn_from_values": learn_from_values,
    }


@_applier("set_column_type")
def _app_set_column_type(session, payload):
    type_payload = payload["semantic_type"]
    if "str" in type_payload:
        semantic_type: SemanticType | str = type_payload["str"]
    else:
        semantic_type = SemanticType(type_payload["name"], type_payload["parent"])
    return session.set_column_type(
        payload["col"],
        semantic_type,
        tab=payload["tab"],
        learn_from_values=payload["learn_from_values"],
    )


@_encoder("commit_source")
def _enc_commit_source(session, tab=None, name=None):
    return {"tab": tab, "name": name}


@_applier("commit_source")
def _app_commit_source(session, payload):
    return session.commit_source(tab=payload["tab"], name=payload["name"])


# ------------------------------------------------------------ drift resync
@_encoder("resync_source")
def _enc_resync_source(session, name):
    # Pin the external state this action depends on: the source page's
    # content *right now*, exactly what refetch_event is about to see.
    payload: dict[str, Any] = {"name": name, "page": None}
    record = session._wrappers.get(name)  # noqa: SLF001 - session-owned codec
    if record is not None:
        context = record.event.context
        container = context.container
        if (
            container is not None
            and context.url is not None
            and isinstance(container, Website)
            and container.has_page(context.url)
        ):
            payload["page"] = page_to_dict(container.fetch(context.url))
    return payload


@_applier("resync_source")
def _app_resync_source(session, payload):
    page_payload = payload["page"]
    name = payload["name"]
    record = session._wrappers.get(name)  # noqa: SLF001 - session-owned codec
    if page_payload is not None and record is not None:
        container = record.event.context.container
        if isinstance(container, Website):
            current = container.fetch(page_payload["url"])
            logged_dom = dom_from_dict(page_payload["dom"])
            if dom_to_dict(current.dom) != page_payload["dom"]:
                # The site had drifted by resync time: reproduce the
                # drifted content in the replayed container.
                container.replace_page(
                    page_payload["url"], logged_dom, page_payload["title"]
                )
    return session.resync_source(name)


# -------------------------------------------------------- integration mode
@_encoder("start_integration")
def _enc_start_integration(session, source, tab=None):
    return {"source": source, "tab": tab}


@_applier("start_integration")
def _app_start_integration(session, payload):
    return session.start_integration(payload["source"], tab=payload["tab"])


@_encoder("set_service_level")
def _enc_set_service_level(session, level="normal"):
    return {"level": level}


@_applier("set_service_level")
def _app_set_service_level(session, payload):
    return session.set_service_level(payload["level"])


@_encoder("column_suggestions")
def _enc_column_suggestions(session, k=5, refresh=None):
    return {"k": k, "refresh": refresh}


@_applier("column_suggestions")
def _app_column_suggestions(session, payload):
    return session.column_suggestions(k=payload["k"], refresh=payload["refresh"])


@_encoder("preview_column")
def _enc_preview_column(session, index=0):
    return {"index": index}


@_applier("preview_column")
def _app_preview_column(session, payload):
    return session.preview_column(payload["index"])


@_encoder("choose_alternative")
def _enc_choose_alternative(session, row, choice):
    return {"row": row, "choice": choice}


@_applier("choose_alternative")
def _app_choose_alternative(session, payload):
    return session.choose_alternative(payload["row"], payload["choice"])


@_encoder("accept_column")
def _enc_accept_column(session, index=None):
    return {"index": index}


@_applier("accept_column")
def _app_accept_column(session, payload):
    return session.accept_column(index=payload["index"])


@_encoder("reject_column")
def _enc_reject_column(session, index=None):
    return {"index": index}


@_applier("reject_column")
def _app_reject_column(session, payload):
    return session.reject_column(index=payload["index"])


# ------------------------------------------------------- link feedback
@_encoder("add_link_example")
def _enc_add_link_example(
    session, left_row, right_row, edge_key=None, is_match=True, right_pool=None
):
    return {
        "left_row": dict(left_row),
        "right_row": dict(right_row),
        "edge_key": edge_key,
        "is_match": is_match,
        "right_pool": None
        if right_pool is None
        else [dict(row) for row in right_pool],
    }


@_applier("add_link_example")
def _app_add_link_example(session, payload):
    return session.add_link_example(
        payload["left_row"],
        payload["right_row"],
        edge_key=payload["edge_key"],
        is_match=payload["is_match"],
        right_pool=payload["right_pool"],
    )


# ------------------------------------------------------- tuple feedback
@_encoder("promote_row")
def _enc_promote_row(session, row, tab=None):
    return {"row": row, "tab": tab}


@_applier("promote_row")
def _app_promote_row(session, payload):
    return session.promote_row(payload["row"], tab=payload["tab"])


@_encoder("demote_row")
def _enc_demote_row(session, row, tab=None, distrust_base_rows=False):
    return {"row": row, "tab": tab, "distrust_base_rows": distrust_base_rows}


@_applier("demote_row")
def _app_demote_row(session, payload):
    return session.demote_row(
        payload["row"],
        tab=payload["tab"],
        distrust_base_rows=payload["distrust_base_rows"],
    )


# ----------------------------------------------------------- editing
@_encoder("edit_cell")
def _enc_edit_cell(session, row, col, value, tab=None):
    return {"row": row, "col": col, "value": value, "tab": tab}


@_applier("edit_cell")
def _app_edit_cell(session, payload):
    return session.edit_cell(
        payload["row"], payload["col"], payload["value"], tab=payload["tab"]
    )


@_encoder("add_derived_column")
def _enc_add_derived_column(session, name, examples, tab=None):
    return {
        "name": name,
        "examples": [[row, value] for row, value in examples.items()],
        "tab": tab,
    }


@_applier("add_derived_column")
def _app_add_derived_column(session, payload):
    examples = {row: value for row, value in payload["examples"]}
    return session.add_derived_column(payload["name"], examples, tab=payload["tab"])


@_encoder("enter_cleaning_mode")
def _enc_enter_cleaning(session):
    return {}


@_applier("enter_cleaning_mode")
def _app_enter_cleaning(session, payload):
    return session.enter_cleaning_mode()


@_encoder("exit_cleaning_mode")
def _enc_exit_cleaning(session):
    return {}


@_applier("exit_cleaning_mode")
def _app_exit_cleaning(session, payload):
    return session.exit_cleaning_mode()


@_encoder("undo")
def _enc_undo(session):
    return {}


@_applier("undo")
def _app_undo(session, payload):
    return session.undo()


# ----------------------------------------------------------- views / unions
@_encoder("union_sources")
def _enc_union_sources(session, sources, tab=None):
    return {"sources": list(sources), "tab": tab}


@_applier("union_sources")
def _app_union_sources(session, payload):
    return session.union_sources(payload["sources"], tab=payload["tab"])


@_encoder("save_view")
def _enc_save_view(session, name):
    return {"name": name}


@_applier("save_view")
def _app_save_view(session, payload):
    return session.save_view(payload["name"])


@_encoder("refresh_view")
def _enc_refresh_view(session, name):
    return {"name": name}


@_applier("refresh_view")
def _app_refresh_view(session, payload):
    return session.refresh_view(payload["name"])
