"""The append-only, CRC-framed write-ahead log.

One log frame is ``[length: u32le][crc32: u32le][payload]`` where the
payload is a UTF-8 JSON object (one recorded session action). The format
is deliberately dumb: no index, no compression, no in-place mutation —
recovery is a single forward scan that stops at the first frame that
does not check out, which is the whole crash-consistency story:

- a **torn final frame** (the process died mid-``write``) shows up as a
  short header or short payload — the scan stops before it;
- **bit rot / corruption** shows up as a CRC mismatch — the scan stops
  at it;
- a **truncated file** (filesystem rollback, partial copy) is just the
  torn case at an earlier offset.

Everything before the stop point is trusted; nothing at or after it is.
:func:`read_wal` never raises for damaged tails — it reports the prefix
and the stop cause so the store can count it and replay what survived.

Writes go through :class:`WalWriter`, which consults the seeded
write-fault policy (:mod:`repro.durability.faults`) before each frame so
chaos tests can deterministically tear, corrupt, or fail-to-sync the
log at chosen operation indices.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import CopyCatError
from ..obs import METRICS
from .faults import WalFaultPolicy

_HEADER = struct.Struct("<II")  # (payload length, payload crc32)

#: Refuse absurd frame lengths outright — a length field that large is
#: garbage bytes being read as a header, not a real record.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class InjectedWalFault(CopyCatError):
    """Raised by an injected torn write: the "process" died mid-frame.

    Harness code arms the fault policy, catches this, and then exercises
    recovery against the deliberately damaged log tail.
    """


def _crc32(data: bytes) -> int:
    import zlib

    return zlib.crc32(data) & 0xFFFFFFFF


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One action dict -> a framed, CRC-protected log record."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(data), _crc32(data)) + data


@dataclass
class WalReadResult:
    """What one forward scan of a log recovered.

    ``records`` is the trusted prefix; ``stop_reason`` is ``None`` for a
    clean end-of-file or one of ``"torn-header"``, ``"torn-record"``,
    ``"crc-mismatch"``, ``"bad-payload"``, ``"bad-length"``;
    ``valid_bytes`` is the offset of the first untrusted byte.
    """

    records: list[dict[str, Any]]
    stop_reason: str | None
    valid_bytes: int


def read_wal(path: str | Path) -> WalReadResult:
    """Scan a log file, trusting frames up to the first damaged one."""
    path = Path(path)
    if not path.exists():
        return WalReadResult([], None, 0)
    data = path.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return WalReadResult(records, "torn-header", offset)
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return WalReadResult(records, "bad-length", offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return WalReadResult(records, "torn-record", offset)
        payload = data[start:end]
        if _crc32(payload) != crc:
            return WalReadResult(records, "crc-mismatch", offset)
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return WalReadResult(records, "bad-payload", offset)
        if not isinstance(record, dict):
            return WalReadResult(records, "bad-payload", offset)
        records.append(record)
        offset = end
    return WalReadResult(records, None, offset)


class WalWriter:
    """Appends framed records to one tenant's log file.

    Each append consults the write-fault policy (when armed) so chaos
    tests can deterministically damage the tail:

    - ``"torn"`` — a prefix of the frame is written, then
      :class:`InjectedWalFault` is raised (the simulated crash);
    - ``"corrupt"`` — the frame is written with one payload byte
      flipped (the CRC no longer matches) and the writer *continues*,
      modeling silent bit rot;
    - ``"fsync"`` — the sync step fails with :class:`OSError`; the
      writer counts it and carries on (the record sits in OS buffers,
      durable only if the machine stays up — exactly the window
      prefix-consistent recovery tolerates).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        faults: WalFaultPolicy | None = None,
        tenant: str = "",
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._faults = faults
        self._tenant = tenant
        self._op_index = 0
        self._file = open(self.path, "ab")

    def append(self, payload: dict[str, Any]) -> None:
        """Frame and append one record (write-ahead: called pre-action)."""
        frame = encode_frame(payload)
        kind = None
        if self._faults is not None:
            kind = self._faults.draw(self._tenant, self._op_index)
        self._op_index += 1
        if kind == "torn":
            METRICS.inc("durability.faults_injected")
            cut = max(1, len(frame) - max(1, len(frame) // 3))
            self._file.write(frame[:cut])
            self._file.flush()
            raise InjectedWalFault(
                f"injected torn write on {self.path.name} (op #{self._op_index - 1})"
            )
        if kind == "corrupt":
            METRICS.inc("durability.faults_injected")
            damaged = bytearray(frame)
            damaged[_HEADER.size + len(damaged) // 2] ^= 0xFF
            frame = bytes(damaged)
        self._file.write(frame)
        self._file.flush()
        if kind == "fsync":
            METRICS.inc("durability.faults_injected")
            METRICS.inc("durability.fsync_failures")
            return
        if self._fsync:
            try:
                os.fsync(self._file.fileno())
            except OSError:
                # A failed sync leaves the record buffered, not lost: it
                # survives unless the machine dies in the window, and
                # recovery is prefix-consistent either way. Count it and
                # keep serving.
                METRICS.inc("durability.fsync_failures")

    def truncate(self) -> None:
        """Drop every record (the checkpoint now owns the history)."""
        self._file.close()
        self._file = open(self.path, "wb")

    def sync(self) -> None:
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:
            METRICS.inc("durability.fsync_failures")

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
