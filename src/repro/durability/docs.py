"""Document serialization for the action log.

Replaying a ``paste`` re-runs the structure learner, and the learner
walks real documents — a DOM tree, the containing website (for URL
families and detail-page crawls), a spreadsheet, a text report. The log
therefore captures the *source material* of each copy event, not just
the copied text: enough of the document world, verbatim, that replay
re-executes the original induction byte-for-byte.

What is (and isn't) captured:

- :class:`~repro.substrate.documents.dom.DomNode` trees round-trip
  exactly (tag/attrs/text/children, parents relinked on decode);
- :class:`~repro.substrate.documents.website.Website` serializes its
  pages only. Form endpoints hold resolver *callables* and exist for
  interactive navigation; no learner consults them after the copy, so
  replay does not need them;
- :class:`~repro.substrate.documents.spreadsheet.Sheet` /
  :class:`Workbook` and
  :class:`~repro.substrate.documents.textdoc.TextDocument` serialize
  their full contents (they are plain data).

Pages that live inside a serialized website are stored as ``page-ref``
(URL only) and resolved against the rebuilt container, so the replayed
event's ``context.document`` is a page *of* its ``context.container`` —
the identity the drift layer's refetch path relies on.
"""

from __future__ import annotations

from typing import Any

from ..errors import CopyCatError
from ..substrate.documents.dom import DomNode
from ..substrate.documents.spreadsheet import CellRange, Sheet, Workbook
from ..substrate.documents.textdoc import TextDocument
from ..substrate.documents.website import Page, Website


class SerializationError(CopyCatError):
    """An action payload cannot be encoded for (or decoded from) the log."""


# ------------------------------------------------------------------ DOM trees
def dom_to_dict(node: DomNode) -> dict[str, Any]:
    return {
        "tag": node.tag,
        "attrs": dict(node.attrs),
        "text": node.text,
        "children": [dom_to_dict(child) for child in node.children],
    }


def dom_from_dict(payload: dict[str, Any]) -> DomNode:
    node = DomNode(
        tag=payload["tag"], attrs=dict(payload["attrs"]), text=payload["text"]
    )
    for child_payload in payload["children"]:
        child = dom_from_dict(child_payload)
        child.parent = node
        node.children.append(child)
    return node


# ------------------------------------------------------------------ documents
def page_to_dict(page: Page) -> dict[str, Any]:
    return {
        "kind": "page",
        "url": page.url,
        "title": page.title,
        "dom": dom_to_dict(page.dom),
    }


def website_to_dict(site: Website) -> dict[str, Any]:
    return {
        "kind": "website",
        "base_url": site.base_url,
        "pages": [page_to_dict(site.fetch(url)) for url in site.urls()],
    }


def website_from_dict(payload: dict[str, Any]) -> Website:
    site = Website(payload["base_url"])
    for page_payload in payload["pages"]:
        site.add_page(
            page_payload["url"],
            dom_from_dict(page_payload["dom"]),
            page_payload["title"],
        )
    return site


def sheet_to_dict(sheet: Sheet) -> dict[str, Any]:
    return {
        "kind": "sheet",
        "name": sheet.name,
        "header": list(sheet.header),
        "rows": [list(row) for row in sheet.rows()],
    }


def sheet_from_dict(payload: dict[str, Any]) -> Sheet:
    sheet = Sheet(payload["name"], payload["header"] or None)
    sheet.extend(payload["rows"])
    return sheet


def workbook_to_dict(book: Workbook) -> dict[str, Any]:
    return {
        "kind": "workbook",
        "name": book.name,
        "sheets": [sheet_to_dict(book.sheet(name)) for name in book.sheet_names()],
    }


def workbook_from_dict(payload: dict[str, Any]) -> Workbook:
    book = Workbook(payload["name"])
    for sheet_payload in payload["sheets"]:
        book.add_sheet(sheet_from_dict(sheet_payload))
    return book


def textdoc_to_dict(doc: TextDocument) -> dict[str, Any]:
    return {"kind": "textdoc", "name": doc.name, "text": doc.text}


def textdoc_from_dict(payload: dict[str, Any]) -> TextDocument:
    return TextDocument(name=payload["name"], text=payload["text"])


# ------------------------------------------------------------------ locators
def locator_to_dict(locator: Any) -> Any:
    """Selection descriptors: DOM paths (nested tuples) or cell ranges."""
    if locator is None:
        return None
    if isinstance(locator, CellRange):
        return {
            "kind": "cellrange",
            "top": locator.top,
            "left": locator.left,
            "bottom": locator.bottom,
            "right": locator.right,
        }
    if isinstance(locator, tuple):
        return {
            "kind": "path",
            "steps": [list(step) for step in locator],
        }
    if isinstance(locator, (str, int, float)):
        return {"kind": "scalar", "value": locator}
    raise SerializationError(f"unserializable locator {type(locator).__name__}")


def locator_from_dict(payload: Any) -> Any:
    if payload is None:
        return None
    kind = payload["kind"]
    if kind == "cellrange":
        return CellRange(
            payload["top"], payload["left"], payload["bottom"], payload["right"]
        )
    if kind == "path":
        return tuple(tuple(step) for step in payload["steps"])
    if kind == "scalar":
        return payload["value"]
    raise SerializationError(f"unknown locator kind {kind!r}")
