"""Deterministic write-fault injection for the durability layer.

The PR-3 chaos pattern (:mod:`repro.resilience.faults`) applied to
storage: a :class:`WalFaultPolicy` decides — purely as a hash of
``(seed, tenant, log-operation index)`` — whether a given log append is
torn mid-frame, silently corrupted, or fails its sync. Hash-derived
decisions mean the fate of tenant A's append #17 is identical no matter
what other tenants write in between, which is what makes the
crash-recovery sweep in CI reproducible.

Arm a policy process-globally through :data:`WAL_FAULTS`
(``WAL_FAULTS.injected(policy)``, or the ``REPRO_DURABILITY_FAULT_RATE``
/ ``REPRO_DURABILITY_FAULT_SEED`` environment knobs read once by
:mod:`repro.durability.config`), or pass one straight to a
:class:`~repro.durability.wal.WalWriter`.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass

from .config import DURABILITY

#: Fault kinds a draw can land on, in cumulative-probability order.
KINDS = ("torn", "corrupt", "fsync")


@dataclass(frozen=True)
class WalFaultSpec:
    """Per-append fault probabilities (each in [0, 1], summing <= 1).

    - ``torn_rate``: the append writes only a frame prefix and raises
      (the simulated crash mid-write);
    - ``corrupt_rate``: the frame lands with a flipped payload byte and
      the writer continues (silent bit rot);
    - ``fsync_fail_rate``: the sync step fails; the record is buffered,
      not guaranteed durable.
    """

    torn_rate: float = 0.0
    corrupt_rate: float = 0.0
    fsync_fail_rate: float = 0.0

    @staticmethod
    def ambient(rate: float) -> "WalFaultSpec":
        """Split one ambient rate across the three kinds (chaos runs)."""
        return WalFaultSpec(
            torn_rate=rate / 3.0, corrupt_rate=rate / 3.0, fsync_fail_rate=rate / 3.0
        )


class WalFaultPolicy:
    """A seeded map from ``(tenant, op index)`` to a fault kind or None."""

    def __init__(self, seed: int | None = None, spec: WalFaultSpec | None = None):
        self.seed = DURABILITY.fault_seed if seed is None else seed
        self.spec = spec or WalFaultSpec()

    def _draw(self, tenant: str, op_index: int) -> float:
        """Deterministic uniform draw in [0, 1) for one log operation."""
        token = f"wal:{self.seed}:{tenant}:{op_index}".encode("utf-8")
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def draw(self, tenant: str, op_index: int) -> str | None:
        """The fault kind hitting this operation, or ``None``."""
        spec = self.spec
        u = self._draw(tenant, op_index)
        cumulative = 0.0
        for kind, rate in zip(
            KINDS, (spec.torn_rate, spec.corrupt_rate, spec.fsync_fail_rate)
        ):
            cumulative += rate
            if u < cumulative:
                return kind
        return None


class WalFaultInjector:
    """Holds the process-global policy :class:`WalWriter` appends consult."""

    def __init__(self) -> None:
        self._policy: WalFaultPolicy | None = None
        if DURABILITY.fault_rate > 0.0:
            self._policy = WalFaultPolicy(
                spec=WalFaultSpec.ambient(DURABILITY.fault_rate)
            )

    @property
    def policy(self) -> WalFaultPolicy | None:
        return self._policy

    @contextmanager
    def injected(self, policy: WalFaultPolicy):
        """Arm *policy* for the duration of the block (tests/benchmarks)."""
        previous = self._policy
        self._policy = policy
        try:
            yield policy
        finally:
            self._policy = previous


#: The process-global write-fault injector (ambient chaos knob).
WAL_FAULTS = WalFaultInjector()
