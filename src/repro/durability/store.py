"""Per-tenant durable storage: checkpoint file + write-ahead log.

Layout under a durability root::

    <root>/<tenant-dir>/checkpoint.json   # compacted action history
    <root>/<tenant-dir>/wal.log           # CRC-framed tail since then

``<tenant-dir>`` is the tenant id sanitized for the filesystem plus a
short hash (so ``"a/b"`` and ``"a_b"`` cannot collide).

Recovery (:meth:`DurabilityStore.recover`) is prefix-consistent and
total — it never raises for damaged files, it just trusts less:

1. read ``checkpoint.json``; a missing file contributes no actions, a
   corrupt one is counted (``durability.checkpoint_corrupt``) and
   contributes no actions (the log alone may still replay);
2. scan ``wal.log`` forward, stopping at the first torn / truncated /
   CRC-mismatched frame (each stop cause has its own counter);
3. stitch: log records must continue the checkpoint's sequence exactly.
   Records below the checkpoint base are stale (a crash landed between
   checkpoint rename and log truncation) and are skipped; a gap above it
   means the tail is untrustworthy and is dropped
   (``durability.recovery_seq_gaps``).

Checkpoint writes are atomic: serialize to a temp file in the same
directory, fsync, ``os.replace``. The log is truncated only after the
rename lands. A crash anywhere in that protocol leaves either the old
checkpoint with the full log or the new checkpoint with a stale-or-empty
log — both replay to the same state.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Any

from ..obs import METRICS
from .faults import WAL_FAULTS
from .wal import WalWriter, read_wal

CHECKPOINT_NAME = "checkpoint.json"
WAL_NAME = "wal.log"
FORMAT_VERSION = 1

_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")

_STOP_COUNTERS = {
    "torn-header": "durability.recovery_torn_records",
    "torn-record": "durability.recovery_torn_records",
    "crc-mismatch": "durability.recovery_crc_failures",
    "bad-payload": "durability.recovery_crc_failures",
    "bad-length": "durability.recovery_truncated",
}


def tenant_dirname(tenant: str) -> str:
    """A filesystem-safe, collision-free directory name for a tenant id."""
    safe = _SAFE.sub("_", tenant)[:40] or "tenant"
    digest = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:8]
    return f"{safe}-{digest}"


class RecoveredState:
    """What :meth:`DurabilityStore.recover` found for one tenant."""

    def __init__(
        self,
        actions: list[dict[str, Any]],
        *,
        from_checkpoint: int = 0,
        from_wal: int = 0,
        stop_reason: str | None = None,
        seed: int | None = None,
    ):
        self.actions = actions
        self.from_checkpoint = from_checkpoint
        self.from_wal = from_wal
        self.stop_reason = stop_reason
        self.seed = seed

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __repr__(self) -> str:
        return (
            f"RecoveredState({len(self.actions)} actions: "
            f"{self.from_checkpoint} checkpointed + {self.from_wal} tail, "
            f"stop={self.stop_reason!r})"
        )


class DurabilityStore:
    """Checkpoint + WAL files for every tenant under one root."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._writers: dict[str, WalWriter] = {}

    # -- paths ---------------------------------------------------------------
    def tenant_dir(self, tenant: str) -> Path:
        return self.root / tenant_dirname(tenant)

    def checkpoint_path(self, tenant: str) -> Path:
        return self.tenant_dir(tenant) / CHECKPOINT_NAME

    def wal_path(self, tenant: str) -> Path:
        return self.tenant_dir(tenant) / WAL_NAME

    # -- log appends ---------------------------------------------------------
    def _writer(self, tenant: str) -> WalWriter:
        writer = self._writers.get(tenant)
        if writer is None:
            from .config import DURABILITY

            writer = WalWriter(
                self.wal_path(tenant),
                fsync=DURABILITY.fsync,
                faults=WAL_FAULTS.policy,
                tenant=tenant,
            )
            self._writers[tenant] = writer
        return writer

    def append(self, tenant: str, record: dict[str, Any]) -> None:
        self._writer(tenant).append(record)

    def truncate_wal(self, tenant: str) -> None:
        self._writer(tenant).truncate()

    # -- checkpointing -------------------------------------------------------
    def write_checkpoint(
        self, tenant: str, actions: list[dict[str, Any]], *, seed: int | None = None
    ) -> bool:
        """Atomically persist the compacted history; False when the
        filesystem refused (the old checkpoint + log stay authoritative)."""
        payload = {
            "format": FORMAT_VERSION,
            "tenant": tenant,
            "seed": seed,
            "n_actions": len(actions),
            "actions": actions,
        }
        directory = self.tenant_dir(tenant)
        directory.mkdir(parents=True, exist_ok=True)
        target = self.checkpoint_path(tenant)
        tmp = directory / (CHECKPOINT_NAME + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        except OSError:
            # Checkpointing is an optimization over the log; a failed
            # write must never lose the authoritative state. Count it,
            # leave the log untruncated, and keep serving.
            METRICS.inc("durability.fsync_failures")
            return False
        return True

    # -- recovery ------------------------------------------------------------
    def recover(self, tenant: str) -> RecoveredState:
        """The trusted action prefix for one tenant (never raises)."""
        base: list[dict[str, Any]] = []
        seed: int | None = None
        checkpoint_path = self.checkpoint_path(tenant)
        if checkpoint_path.exists():
            try:
                payload = json.loads(checkpoint_path.read_text(encoding="utf-8"))
                base = list(payload["actions"])
                seed = payload.get("seed")
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError):
                # A half-written or rotted checkpoint contributes nothing;
                # the log may still carry a replayable prefix.
                METRICS.inc("durability.checkpoint_corrupt")
                base = []

        result = read_wal(self.wal_path(tenant))
        if result.stop_reason is not None:
            METRICS.inc(_STOP_COUNTERS[result.stop_reason])

        next_seq = len(base)
        tail: list[dict[str, Any]] = []
        stop_reason = result.stop_reason
        for record in result.records:
            seq = record.get("seq")
            if not isinstance(seq, int) or seq < next_seq:
                continue  # stale pre-checkpoint record (crash mid-compaction)
            if seq != next_seq:
                # The tail does not continue the trusted prefix: nothing
                # at or after the gap can be ordered, so none of it is
                # replayed.
                METRICS.inc("durability.recovery_seq_gaps")
                stop_reason = stop_reason or "seq-gap"
                break
            tail.append(record)
            next_seq += 1

        actions = base + tail
        if actions and METRICS.enabled:
            METRICS.inc("durability.sessions_recovered")
        return RecoveredState(
            actions,
            from_checkpoint=len(base),
            from_wal=len(tail),
            stop_reason=stop_reason,
            seed=seed,
        )

    # -- lifecycle -----------------------------------------------------------
    def close_tenant(self, tenant: str) -> None:
        writer = self._writers.pop(tenant, None)
        if writer is not None:
            writer.close()

    def close(self) -> None:
        for tenant in list(self._writers):
            self.close_tenant(tenant)

    def __enter__(self) -> "DurabilityStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
