"""Deterministic replay and the bit-identity state digest.

:func:`replay` re-applies a recovered action sequence to a *fresh*
session through the same public methods the user originally called. The
REPRO005 invariants (seeded RNG, no wall-clock reads outside
``util/rng.py``) plus the write-ahead log's pinned external inputs
(serialized copy events, resync-time page snapshots) make the rebuilt
session byte-for-byte equivalent to the one that died — which
:func:`state_digest` makes checkable: one canonical dict covering
workspace rows, committed relations, provenance, trust, MIRA edge
weights, linker weights, learned types, quarantine, views, and the
standing suggestion batch, hashed for cheap equality.

Actions that raised in the original run raise identically on replay
(same method, same arguments, same state). Replay therefore *expects*
:class:`~repro.errors.CopyCatError` from individual actions, counts
them, and keeps going — the error was part of the session's history,
not a recovery failure.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import CopyCatError
from ..obs import METRICS
from .actions import apply_action
from .recorder import SessionRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import CopyCatSession


@dataclass
class ReplayReport:
    """What one replay did: actions applied, and which of them raised."""

    applied: int
    errors: list[tuple[int, str, str]]

    @property
    def clean(self) -> bool:
        return not self.errors


def replay(session: "CopyCatSession", actions: list[dict[str, Any]]) -> ReplayReport:
    """Re-apply *actions* to *session* (recording suppressed throughout).

    The session's recorder — when attached — ends up holding the full
    replayed history, so subsequent live actions continue the sequence
    and the next checkpoint compacts everything.
    """
    recorder = session.durability or SessionRecorder()
    applied = 0
    errors: list[tuple[int, str, str]] = []
    with recorder.replay_mode():
        for index, action in enumerate(actions):
            name = action["name"]
            try:
                apply_action(session, name, action["args"])
            except CopyCatError as exc:
                # Deterministic re-raise: the original call failed the
                # same way. Anything *other* than a session-domain error
                # is a real replay bug and propagates.
                errors.append((index, name, str(exc)))
                METRICS.inc("durability.replay_action_errors")
            applied += 1
            METRICS.inc("durability.actions_replayed")
    if session.durability is not None:
        session.durability.history = [dict(a) for a in actions]
    return ReplayReport(applied=applied, errors=errors)


def attach_recorder(session: "CopyCatSession", recorder: SessionRecorder) -> SessionRecorder:
    """Hook *recorder* onto *session* (the ``session.durability`` slot)."""
    session.durability = recorder
    return recorder


# --------------------------------------------------------------- state digest
def _canonical(value: Any) -> Any:
    """Make *value* JSON-serializable with a stable ordering."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical(v) for v in value), key=str)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


def state_digest(session: "CopyCatSession") -> dict[str, Any]:
    """Everything user-visible (and learner-internal) a crash could lose."""
    catalog = session.catalog
    relations: dict[str, Any] = {}
    trust: dict[str, Any] = {}
    for name in catalog.relation_names():
        relation = catalog.relation(name)
        relations[name] = [list(row.values) for row in relation]
        metadata = catalog.metadata(name)
        trust[name] = {
            "trust": metadata.trust,
            "origin": metadata.origin,
            "notes": _canonical(dict(metadata.notes)),
        }

    linkers = {
        key: {"weights": dict(linker.weights), "updates": linker.updates}
        for key, linker in sorted(session._linkers.items())  # noqa: SLF001
    }

    suggestions = [
        {
            "source": s.source,
            "attrs": list(s.attribute_names),
            "values": _canonical(list(s.values)),
            "provenances": [str(p) for p in s.provenances],
        }
        for s in session._column_suggestions  # noqa: SLF001
    ]

    digest = {
        "workspace": session.workspace.render_text(),
        "relations": _canonical(relations),
        "trust": trust,
        "graph_weights": dict(session.integration_learner.graph.weights),
        "linkers": linkers,
        "types": session.type_learner.known_types(),
        "row_provenance": [str(p) for p in session._row_provenance],  # noqa: SLF001
        "query": session._query.describe() if session._query is not None else None,  # noqa: SLF001
        "suggestions": suggestions,
        "previewed": session._previewed,  # noqa: SLF001
        "views": session.view_names(),
        "cleaning_mode": session.cleaning_mode,
        "service_level": session.service_level,
        "quarantine_rows": [
            (entry.source, list(entry.row), entry.reason, entry.provenance)
            for entry in session.quarantine.rows()
        ],
        "quarantine_sources": session.quarantine.sources(),
        "catalog_version_counter": catalog.version_counter,
        "wrappers": sorted(session._wrappers),  # noqa: SLF001
    }
    return digest


def digest_hash(digest: dict[str, Any]) -> str:
    """A stable hash of :func:`state_digest` output for cheap equality."""
    blob = json.dumps(_canonical(digest), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
