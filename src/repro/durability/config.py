"""Durability configuration: one process-wide switch set.

Mirrors the other layers' config singletons (:mod:`repro.server.config`,
:mod:`repro.cache.config`, …): plain attributes on :data:`DURABILITY`,
programmatic overrides for tests and benchmarks
(:meth:`DurabilityConfig.disabled`, :meth:`DurabilityConfig.overridden`),
and environment variables read once at import:

- ``REPRO_DURABILITY=0`` disables the durable-session layer entirely —
  no recorder is attached, no files are touched, and every session
  reproduces pre-durability in-memory behavior bit-for-bit (the
  env-toggle contract every prior layer honors);
- ``REPRO_DURABILITY_ROOT`` names the directory holding per-tenant
  checkpoint + write-ahead-log files. Persistence is *active* only when
  both the flag is on and a root is configured (here or per
  :class:`~repro.server.manager.SessionManager`), so library users who
  never opt into a durability root keep today's purely in-memory
  sessions;
- ``REPRO_DURABILITY_CHECKPOINT`` — recorded actions between automatic
  checkpoints (compaction of the log into ``checkpoint.json``;
  default 64);
- ``REPRO_DURABILITY_FSYNC=1`` — fsync the log after every appended
  record and every checkpoint (defaults off: tests and benchmarks
  exercise crash-consistency via injected faults, not physical sync);
- ``REPRO_DURABILITY_FAULT_RATE`` / ``REPRO_DURABILITY_FAULT_SEED`` —
  ambient seeded write-fault injection for the log (torn final records,
  CRC corruption, truncation, fsync failures), the PR-3 chaos knob
  pattern applied to storage.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw is not None else default


def _env_str(name: str, default: str) -> str:
    raw = os.environ.get(name)
    return raw if raw is not None else default


class DurabilityConfig:
    """Mutable knobs for the durable-session layer."""

    def __init__(self) -> None:
        #: master switch; off means no recorder is ever attached.
        self.enabled = _env_flag("REPRO_DURABILITY", True)
        #: directory for per-tenant checkpoint + WAL files ("" = no
        #: persistence unless a manager passes an explicit root).
        self.root = _env_str("REPRO_DURABILITY_ROOT", "")
        #: recorded actions between automatic log compactions.
        self.checkpoint_interval = _env_int("REPRO_DURABILITY_CHECKPOINT", 64)
        #: fsync the log after every record and checkpoint.
        self.fsync = _env_flag("REPRO_DURABILITY_FSYNC", False)
        #: ambient write-fault probability per log operation.
        self.fault_rate = _env_float("REPRO_DURABILITY_FAULT_RATE", 0.0)
        #: seed for the hash-derived write-fault decisions.
        self.fault_seed = _env_int("REPRO_DURABILITY_FAULT_SEED", 0)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = (
        "enabled",
        "root",
        "checkpoint_interval",
        "fsync",
        "fault_rate",
        "fault_seed",
    )

    @contextmanager
    def disabled(self):
        """Temporarily force pure in-memory sessions (no recording)."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(
                    f"unknown durability knob {name!r}; known: {self.KNOBS}"
                )
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | float | bool | str]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        root = self.root or "<memory-only>"
        return (
            f"DurabilityConfig({state}, root={root!r}, "
            f"checkpoint_interval={self.checkpoint_interval}, "
            f"fsync={self.fsync})"
        )


#: The process-wide durability configuration recorders and stores consult.
DURABILITY = DurabilityConfig()
