"""Durable sessions: write-ahead action log, checkpoint/replay, recovery.

The paper's workflow is a long-lived accumulation of user intent —
pastes, accepts/rejects, link examples, trust feedback — and before this
layer all of it lived in memory and died with the process. This package
makes a session's history durable and its state reconstructible:

- :mod:`~repro.durability.config` — the :data:`DURABILITY` switch set
  (``REPRO_DURABILITY=0`` reproduces in-memory behavior bit-for-bit);
- :mod:`~repro.durability.wal` — the append-only CRC-framed log with
  prefix-consistent reads;
- :mod:`~repro.durability.recorder` — write-ahead event sourcing at the
  :class:`~repro.core.session.CopyCatSession` boundary, with periodic
  compaction of the log into a checkpoint file;
- :mod:`~repro.durability.actions` / :mod:`~repro.durability.docs` —
  per-action JSON codecs, including the copied documents themselves;
- :mod:`~repro.durability.replay` — deterministic re-execution and the
  bit-identity :func:`state_digest`;
- :mod:`~repro.durability.store` — per-tenant checkpoint + log files
  under a durability root, with damage-tolerant recovery;
- :mod:`~repro.durability.faults` — seeded torn-write / corruption /
  fsync-failure injection (the PR-3 chaos pattern applied to storage).

The session server composes these: :class:`~repro.server.manager.
SessionManager` checkpoints sessions through eviction instead of
dropping them, and recovers tenants from checkpoint + log tail on first
attach after a restart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .actions import (
    UNRECORDED,
    apply_action,
    encode_action,
    event_from_dict,
    event_to_dict,
    recordable_actions,
)
from .config import DURABILITY, DurabilityConfig
from .docs import SerializationError
from .faults import WAL_FAULTS, WalFaultInjector, WalFaultPolicy, WalFaultSpec
from .recorder import SessionRecorder, recorded
from .replay import ReplayReport, attach_recorder, digest_hash, replay, state_digest
from .store import DurabilityStore, RecoveredState
from .wal import InjectedWalFault, WalReadResult, WalWriter, encode_frame, read_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import CopyCatSession

__all__ = [
    "DURABILITY",
    "DurabilityConfig",
    "DurabilityStore",
    "InjectedWalFault",
    "RecoveredState",
    "ReplayReport",
    "SerializationError",
    "SessionRecorder",
    "UNRECORDED",
    "WAL_FAULTS",
    "WalFaultInjector",
    "WalFaultPolicy",
    "WalFaultSpec",
    "WalReadResult",
    "WalWriter",
    "apply_action",
    "attach_recorder",
    "digest_hash",
    "durability_stats_line",
    "encode_action",
    "encode_frame",
    "event_from_dict",
    "event_to_dict",
    "read_wal",
    "recordable_actions",
    "recorded",
    "recover_session",
    "replay",
    "state_digest",
]


def recover_session(
    session: "CopyCatSession",
    tenant: str,
    store: DurabilityStore,
    *,
    seed: int | None = None,
    checkpoint_interval: int | None = None,
) -> tuple[SessionRecorder, ReplayReport | None]:
    """Attach a recorder to a fresh session, replaying any stored history.

    The one-call recovery path: recover the trusted action prefix for
    *tenant*, hook a recorder onto *session*, re-apply the history, and
    leave the recorder positioned so the next live action continues the
    sequence (the replayed log tail still counts toward the next
    checkpoint).
    """
    recovered = store.recover(tenant)
    recorder = SessionRecorder(
        tenant, store, seed=seed, checkpoint_interval=checkpoint_interval
    )
    attach_recorder(session, recorder)
    report: ReplayReport | None = None
    if recovered.actions:
        report = replay(session, recovered.actions)
        recorder.mark_replayed_tail(recovered.from_wal)
    return recorder, report


def durability_stats_line(metrics: Any = None) -> str:
    """One-line summary of durability activity (``--trace`` output)."""
    from ..obs import METRICS

    m = metrics or METRICS
    logged = int(m.counter_value("durability.actions_logged"))
    checkpoints = int(m.counter_value("durability.checkpoints"))
    recovered = int(m.counter_value("durability.sessions_recovered"))
    replayed = int(m.counter_value("durability.actions_replayed"))
    torn = int(m.counter_value("durability.recovery_torn_records"))
    crc = int(m.counter_value("durability.recovery_crc_failures"))
    gaps = int(m.counter_value("durability.recovery_seq_gaps"))
    faults = int(m.counter_value("durability.faults_injected"))
    line = (
        f"durability: {logged} actions logged · {checkpoints} checkpoints · "
        f"{recovered} sessions recovered ({replayed} actions replayed) · "
        f"damage absorbed: {torn} torn / {crc} crc / {gaps} gaps · "
        f"{faults} faults injected"
    )
    if not DURABILITY.enabled:
        line += " · disabled"
    return line
