"""The session recorder: event sourcing at the CopyCatSession boundary.

A :class:`SessionRecorder` hangs off ``session.durability`` and observes
every semantic action through the :func:`recorded` decorator on the
session's public methods. The protocol is **write-ahead**: the action is
framed and appended to the tenant's log *before* the method body runs,
so a process killed mid-action recovers to the state *as if the action
completed* — replay simply re-executes it. (The alternative — logging
after — loses exactly the action the crash interrupted.)

Nesting: session methods call each other (``accept_column`` previews,
which may compute suggestions). Only the *outermost* user-invoked call
is an action; inner calls are its implementation detail and replaying
them separately would double-apply state. The recorder therefore tracks
call depth and records at depth zero only.

Checkpoints are **compacted history**, not state snapshots: the
checkpoint file holds the full serialized action sequence so far, and
recovery is always "fresh session, replay checkpoint actions + log
tail". One recovery code path, and bit-identity falls out of replay
re-running the real methods under the REPRO005 invariants (seeded RNG,
no wall clock) instead of a hand-written state serializer chasing every
learner's internals.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_rlock
from ..obs import METRICS
from ..server.overload import shielded_deadline
from .actions import encode_action
from .config import DURABILITY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import DurabilityStore


class SessionRecorder:
    """Records one session's actions; optionally persists them via a store."""

    def __init__(
        self,
        tenant: str = "session",
        store: "DurabilityStore | None" = None,
        *,
        seed: int | None = None,
        checkpoint_interval: int | None = None,
    ):
        self.tenant = tenant
        self.store = store
        self.seed = seed
        self.checkpoint_interval = (
            DURABILITY.checkpoint_interval
            if checkpoint_interval is None
            else checkpoint_interval
        )
        #: the full compacted action history (checkpoint base + tail).
        self.history: list[dict[str, Any]] = []
        #: actions appended since the last checkpoint (tail length).
        self.since_checkpoint = 0
        self.replaying = False
        self._depth = 0
        self._lock = make_rlock("SessionRecorder._lock")
        # Lifetime counters (always on; mirrored into METRICS when enabled).
        self.actions_recorded = 0
        self.checkpoints = 0

    # -- recording -----------------------------------------------------------
    @property
    def should_record(self) -> bool:
        return not self.replaying and self._depth == 0

    @contextmanager
    def action(self, name: str, payload: dict[str, Any]):
        """Write-ahead record one top-level action, then run its body."""
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionRecorder.history", self)
            record = {"seq": len(self.history), "name": name, "args": payload}
            self.history.append(record)
            self.since_checkpoint += 1
            self.actions_recorded += 1
            if self.store is not None:
                # Write-ahead ordering: the record must be durable before the
                # body runs, and seq order must match append order, so the
                # fsync (and the store's failure counters) stay under the
                # action lock.
                self.store.append(self.tenant, record)  # lint: allow=CONC002,CONC004 -- write-ahead ordering requires IO under the action lock
            self._depth += 1
        if METRICS.enabled:
            METRICS.inc("durability.actions_logged")
        try:
            yield record
        finally:
            with self._lock:
                self._depth -= 1
            if (
                self._depth == 0
                and self.store is not None
                and self.checkpoint_interval > 0
                and self.since_checkpoint >= self.checkpoint_interval
            ):
                self.checkpoint()

    def mark_replayed_tail(self, count: int) -> None:
        """Position the checkpoint counter after recovery.

        The replayed WAL tail still counts toward the next checkpoint;
        taken under the recording lock so a racing first live action
        cannot interleave with the repositioning.
        """
        with self._lock:
            self.since_checkpoint = count

    @contextmanager
    def replay_mode(self):
        """Suppress recording while logged actions are re-applied."""
        previous = self.replaying
        self.replaying = True
        try:
            yield self
        finally:
            self.replaying = previous

    # -- checkpointing -------------------------------------------------------
    def checkpoint(self) -> bool:
        """Compact the log into the checkpoint file; True on success.

        The write is atomic (tmp + rename) and the log is truncated only
        *after* the rename lands, all under the recording lock — a crash
        at any point leaves either the old checkpoint + full log or the
        new checkpoint + empty log, both of which replay to the same
        state.
        """
        if self.store is None:
            return False
        with self._lock:
            # Compact-then-truncate must be atomic with respect to new
            # appends or replayed-to state and logged tail could diverge,
            # so the checkpoint IO stays under the recording lock.
            wrote = self.store.write_checkpoint(  # lint: allow=CONC002,CONC004 -- checkpoint+truncate must be atomic vs appends
                self.tenant, list(self.history), seed=self.seed
            )
            if wrote:
                self.store.truncate_wal(self.tenant)
                self.since_checkpoint = 0
                self.checkpoints += 1
        if wrote and METRICS.enabled:
            METRICS.inc("durability.checkpoints")
            METRICS.inc("durability.log_truncations")
        return wrote

    def close(self) -> None:
        if self.store is not None:
            self.store.close_tenant(self.tenant)

    def __repr__(self) -> str:
        mode = "replaying" if self.replaying else "recording"
        return (
            f"SessionRecorder({self.tenant!r}, {mode}, "
            f"{len(self.history)} actions, {self.checkpoints} checkpoints)"
        )


def recorded(method: Callable) -> Callable:
    """Decorator: log this session method's calls through the recorder.

    Sessions without a recorder (``session.durability is None`` — the
    ``REPRO_DURABILITY=0`` path and every pre-existing standalone use)
    pay one attribute check and dispatch straight to the method,
    preserving in-memory behavior bit-for-bit.
    """
    name = method.__name__

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        recorder = self.durability
        if recorder is None or not recorder.should_record:
            return method(self, *args, **kwargs)
        payload = encode_action(name, self, args, kwargs)
        with recorder.action(name, payload):
            # The action is already written ahead; a cooperative deadline
            # cancellation mid-body would leave a logged action whose
            # effects never happened, breaking replay bit-identity. Shield
            # the body: recorded actions run to completion once admitted.
            with shielded_deadline():
                return method(self, *args, **kwargs)

    return wrapper
