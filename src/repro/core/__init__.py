"""CopyCat core: workspace, session, auto-complete, engine, export, usersim."""

from .autocomplete import AutoCompleteGenerator
from .engine import QueryEngine
from .export import to_csv, to_map_html, to_map_markers, to_xml
from .feedback import FeedbackEvent, FeedbackKind, FeedbackLog
from .session import CopyCatSession, PasteOutcome
from .suggestions import ColumnSuggestion, QuerySuggestion, RowSuggestion, TypeSuggestion
from .usersim import InteractionCounter, KeystrokeModel, ManualUser, ScpUser, TaskResult
from .workspace import Cell, CellState, Column, Mode, Workspace, WorkspaceTable

__all__ = [
    "AutoCompleteGenerator", "Cell", "CellState", "Column", "ColumnSuggestion",
    "CopyCatSession", "FeedbackEvent", "FeedbackKind", "FeedbackLog",
    "InteractionCounter", "KeystrokeModel", "ManualUser", "Mode",
    "PasteOutcome", "QueryEngine", "QuerySuggestion", "RowSuggestion",
    "ScpUser", "TaskResult", "TypeSuggestion", "Workspace", "WorkspaceTable",
    "to_csv", "to_map_html", "to_map_markers", "to_xml",
]
