"""User simulators and the keystroke cost model.

Section 5 cites the Karma evaluation: "query auto-completions ... saved
approximately 75% of keystrokes compared to manual integration of data by
copy and paste". We reproduce that measurement with two scripted users who
complete the *same* target table:

- :class:`ManualUser` copies and pastes every cell from the sources, one
  selection at a time — the baseline.
- :class:`ScpUser` drives a :class:`CopyCatSession`: pastes a couple of
  example rows, accepts row generalizations, accepts column
  auto-completions, and falls back to manual pastes only where the system's
  suggestions are wrong or missing.

The :class:`KeystrokeModel` maps primitive interactions to keystrokes. The
defaults are deliberately conservative (acceptance is a single key, but so
is much of the chrome around manual copying), and the benchmark sweeps them
to show the savings are not an artifact of one constant choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..substrate.documents.apps import Browser
from ..substrate.documents.dom import DomNode
from .session import CopyCatSession


@dataclass(frozen=True)
class KeystrokeModel:
    """Keystroke costs of primitive interactions.

    ``select_cost`` covers navigating to and selecting a region before a
    copy (arrow keys / mouse equivalents); copy and paste are the classic
    two-key chords; accepting or rejecting a suggestion is one key (Enter /
    Delete, as in Word's auto-complete, the paper's stated model); typing
    costs one keystroke per character.
    """

    select_cost: int = 4
    copy_cost: int = 2
    paste_cost: int = 2
    accept_cost: int = 1
    reject_cost: int = 1
    switch_source_cost: int = 2
    type_per_char: int = 1

    def copy_paste(self) -> int:
        """One full manual copy-paste of one selection."""
        return self.select_cost + self.copy_cost + self.paste_cost


@dataclass
class InteractionCounter:
    """Tallies primitive interactions and derives keystrokes."""

    model: KeystrokeModel = field(default_factory=KeystrokeModel)
    copies: int = 0
    pastes: int = 0
    selections: int = 0
    accepts: int = 0
    rejects: int = 0
    switches: int = 0
    typed_chars: int = 0

    def record_copy_paste(self, selections: int = 1) -> None:
        """One select→copy→paste round trip (possibly multi-region)."""
        self.selections += selections
        self.copies += 1
        self.pastes += 1

    def record_accept(self) -> None:
        """One suggestion acceptance (Enter / click)."""
        self.accepts += 1

    def record_reject(self) -> None:
        """One suggestion rejection (Delete / dismiss)."""
        self.rejects += 1

    def record_switch(self) -> None:
        """A context switch to a different source application."""
        self.switches += 1

    def record_typing(self, text: str) -> None:
        """Characters typed by hand (labels, corrections)."""
        self.typed_chars += len(text)

    @property
    def keystrokes(self) -> int:
        """Total keystrokes under the configured cost model."""
        m = self.model
        return (
            self.selections * m.select_cost
            + self.copies * m.copy_cost
            + self.pastes * m.paste_cost
            + self.accepts * m.accept_cost
            + self.rejects * m.reject_cost
            + self.switches * m.switch_source_cost
            + self.typed_chars * m.type_per_char
        )


@dataclass
class TaskResult:
    """Outcome of one simulated user completing the task."""

    keystrokes: int
    counter: InteractionCounter
    table: list[dict[str, Any]]
    correct: bool


class ManualUser:
    """Baseline: every cell of the target table is copied by hand.

    For each target row the user selects and copies each source fragment
    (name from the website, street, city, then the zip from the resolver
    page, etc.) and pastes it into a spreadsheet cell. Column headers are
    typed. No learning is involved.
    """

    def __init__(self, model: KeystrokeModel | None = None):
        self.model = model or KeystrokeModel()

    def complete(
        self,
        target_rows: Sequence[Mapping[str, Any]],
        columns: Sequence[str],
        per_source_columns: Sequence[Sequence[str]] | None = None,
    ) -> TaskResult:
        """Copy the whole target table cell-by-cell.

        ``per_source_columns`` groups columns by originating source; moving
        between sources costs a context switch per row per extra source.
        """
        counter = InteractionCounter(model=self.model)
        for name in columns:
            counter.record_typing(name)
        groups = per_source_columns or [columns]
        for _ in target_rows:
            for g_index, group in enumerate(groups):
                if g_index > 0:
                    counter.record_switch()
                for _column in group:
                    counter.record_copy_paste()
        table = [dict(row) for row in target_rows]
        return TaskResult(
            keystrokes=counter.keystrokes, counter=counter, table=table, correct=True
        )


class ScpUser:
    """Drives a CopyCat session the way the Example-1 integrator does."""

    def __init__(self, session: CopyCatSession, model: KeystrokeModel | None = None):
        self.session = session
        self.counter = InteractionCounter(model=model or KeystrokeModel())

    # -- import phase -----------------------------------------------------------
    def import_from_listing(
        self,
        browser: Browser,
        record_nodes: Sequence[DomNode],
        source_name: str,
        column_labels: Sequence[str],
        expected_rows: Sequence[Sequence[str]],
        max_examples: int = 4,
    ) -> bool:
        """Paste examples until the generalization matches; accept it.

        Returns True when the import ends up correct. Each example costs a
        real copy-paste; each wrong suggestion costs a reject.
        """
        expected = {tuple(str(c) for c in row) for row in expected_rows}
        for n_examples in range(1, max_examples + 1):
            browser.copy_record(record_nodes[n_examples - 1], source_name)
            self.counter.record_copy_paste()
            self.session.paste()
            table = self.session.workspace.tab(source_name)
            committed = {tuple(map(str, r)) for r in table.committed_rows()}
            suggested_ok = False
            for _attempt in range(3):
                current = committed | {
                    tuple(map(str, table.row_values(i)))
                    for i in table.suggested_row_indices()
                }
                if current == expected:
                    suggested_ok = True
                    break
                if self.session.reject_row_suggestions(source_name) is None:
                    break
                self.counter.record_reject()
            if suggested_ok:
                # Figure 1 shows per-row keep/remove controls: confirming the
                # generalization costs one interaction per suggested row.
                n_suggested = len(table.suggested_row_indices())
                self.session.accept_row_suggestions(source_name)
                for _ in range(max(1, n_suggested)):
                    self.counter.record_accept()
                break
        else:
            return False
        for index, label in enumerate(column_labels):
            self.session.label_column(index, label, tab=source_name)
            self.counter.record_typing(label)
        self.session.commit_source(source_name)
        self.counter.record_accept()  # the "save source" confirmation
        return True

    # -- integration phase ----------------------------------------------------------
    def extend_with_columns(
        self,
        wanted: Mapping[str, str],
        k: int = 6,
        max_rounds: int = 8,
    ) -> list[str]:
        """Accept column suggestions until every wanted attribute is present.

        ``wanted`` maps attribute name → providing source. Suggestions for
        unwanted columns are rejected (costing a keystroke and teaching
        MIRA); returns the attributes actually added.
        """
        added: list[str] = []
        missing = dict(wanted)
        for _ in range(max_rounds):
            if not missing:
                break
            suggestions = self.session.column_suggestions(k=k)
            if not suggestions:
                break
            chosen = None
            for index, suggestion in enumerate(suggestions):
                hit = [a for a in suggestion.attribute_names if a in missing
                       and missing[a] == suggestion.source]
                if hit:
                    chosen = (index, suggestion, hit)
                    break
            if chosen is None:
                # Nothing wanted in the list: reject the top suggestion so
                # the learner demotes it and surfaces alternatives.
                self.session.reject_column(0)
                self.counter.record_reject()
                continue
            # The user scans the dropdown and accepts the wanted suggestion
            # wherever it ranks; acceptance itself is the ranking feedback
            # (accepted outranks every shown alternative).
            index, suggestion, hit = chosen
            self.session.preview_column(index)
            self.session.accept_column(index)
            self.counter.record_accept()
            for attribute in hit:
                missing.pop(attribute, None)
                added.append(attribute)
        return added

    @property
    def keystrokes(self) -> int:
        """Total keystrokes this simulated user has spent."""
        return self.counter.keystrokes
