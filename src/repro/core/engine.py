"""The query engine facade (CopyCat's ORCHESTRA layer).

Section 2.3: "CopyCat employs the ORCHESTRA query answering system, which
builds a layer over a relational DBMS to annotate every answer with data
provenance." Here the relational substrate's evaluator plays that role;
this facade adds per-tuple explanation and feedback-target extraction.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..obs import METRICS, TRACER
from ..provenance.explain import Explanation, explain
from ..provenance.expressions import Provenance
from ..substrate.relational.algebra import Plan
from ..substrate.relational.catalog import Catalog
from ..substrate.relational.evaluator import Evaluator, Result
from ..substrate.relational.rows import Row, TupleId


class QueryEngine:
    """Evaluates plans and explains their answers."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._evaluator = Evaluator(catalog)
        self.queries_run = 0

    def run(self, plan: Plan, distinct: bool = True) -> Result:
        """Evaluate *plan*; with *distinct*, duplicates merge via ⊕."""
        self.queries_run += 1
        with TRACER.span("engine.run") as span, METRICS.timer("engine.run_ms"):
            result = self._evaluator.run(plan)
            merged = result.merged() if distinct else result
            if span.is_recording():
                span.set("plan", plan.describe())
                span.set("rows", len(merged.rows))
                if merged.degraded:
                    span.set("degraded", ",".join(merged.degraded_services()))
            METRICS.inc("engine.queries")
            if merged.degraded and METRICS.enabled:
                METRICS.inc("resilience.degraded_results")
            return merged

    def explain_row(self, prov: Provenance, plan: Plan | None = None) -> Explanation:
        """The Tuple Explanation pane for one annotated answer."""
        return explain(prov, self.catalog, plan)

    def base_tuples(self, prov: Provenance) -> frozenset[TupleId]:
        """Every base tuple involved in any derivation of the answer."""
        return prov.variables()

    def lookup(
        self, result: Result, key_values: Mapping[str, Any]
    ) -> list[tuple[Row, Provenance]]:
        """Rows of *result* matching all the given attribute values."""
        matches = []
        for row, prov in result.rows:
            if all(row.get(name) == value for name, value in key_values.items()):
                matches.append((row, prov))
        return matches
