"""The query engine facade (CopyCat's ORCHESTRA layer).

Section 2.3: "CopyCat employs the ORCHESTRA query answering system, which
builds a layer over a relational DBMS to annotate every answer with data
provenance." Here the relational substrate's evaluator plays that role;
this facade adds per-tuple explanation and feedback-target extraction.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..analysis.config import ANALYSIS
from ..analysis.plan_analyzer import PlanAnalyzer
from ..cache.fingerprint import plan_fingerprint
from ..cache.tiers import CacheTiers
from ..obs import METRICS, TRACER
from ..provenance.explain import Explanation, explain
from ..provenance.expressions import Provenance
from ..substrate.relational.algebra import Plan
from ..substrate.relational.catalog import Catalog
from ..substrate.relational.evaluator import Evaluator, Result
from ..substrate.relational.rows import Row, TupleId


class QueryEngine:
    """Evaluates plans and explains their answers."""

    def __init__(self, catalog: Catalog, tiers: CacheTiers | None = None):
        self.catalog = catalog
        self._evaluator = Evaluator(catalog, tiers)
        self.queries_run = 0
        # Static analysis (repro.analysis): every plan is checked against
        # the catalog — and the source graph when a supplier is wired in
        # (CopyCatSession does) — before it reaches the evaluator.
        self.graph_supplier: Callable[[], Any] | None = None
        self._analyzer = PlanAnalyzer(catalog)
        # The analysis-report memo is one of the evaluator's cache tiers:
        # private per engine by default, shared fleet-wide under the server
        # (analysis is pure graph-topology + catalog-schema work, so a
        # report is valid for every tenant on the same scope/version).
        self._analysis_memo = self._evaluator.tiers.analysis

    def _check_plan(self, plan: Plan) -> None:
        """Run the static plan analyzer; raises PlanAnalysisError on errors.

        Verdicts are memoized on ``(fingerprint, catalog.version)`` — the
        same key the result cache uses — so a suggestion refresh re-checking
        the same candidate plans pays the analysis once.
        """
        if self.graph_supplier is not None:
            self._analyzer.graph = self.graph_supplier()
        key = None
        try:
            key = (self.catalog.cache_scope, plan_fingerprint(plan), self.catalog.version)
        except TypeError:
            pass  # unregistered node type: analyze unmemoized; PLAN005 fires
        if key is not None:
            report = self._analysis_memo.get(key)
            if report is None:
                report = self._analyzer.check(plan)
                self._analysis_memo.put(key, report)
        else:
            report = self._analyzer.check(plan)
        if METRICS.enabled:
            METRICS.inc("analysis.plans_checked")
            if report.errors:
                METRICS.inc("analysis.errors", len(report.errors))
            if report.warnings:
                METRICS.inc("analysis.warnings", len(report.warnings))
        report.raise_if_errors()

    def run(self, plan: Plan, distinct: bool = True) -> Result:
        """Evaluate *plan*; with *distinct*, duplicates merge via ⊕."""
        self.queries_run += 1
        if ANALYSIS.enabled:
            self._check_plan(plan)
        with TRACER.span("engine.run") as span, METRICS.timer("engine.run_ms"):
            result = self._evaluator.run(plan)
            merged = result.merged() if distinct else result
            if span.is_recording():
                span.set("plan", plan.describe())
                span.set("rows", len(merged.rows))
                if merged.degraded:
                    span.set("degraded", ",".join(merged.degraded_services()))
            METRICS.inc("engine.queries")
            if merged.degraded and METRICS.enabled:
                METRICS.inc("resilience.degraded_results")
            return merged

    def set_service_level(self, level: str) -> None:
        """Propagate the session's brownout level into the evaluator."""
        self._evaluator.service_level = level

    def explain_row(self, prov: Provenance, plan: Plan | None = None) -> Explanation:
        """The Tuple Explanation pane for one annotated answer."""
        return explain(prov, self.catalog, plan)

    def base_tuples(self, prov: Provenance) -> frozenset[TupleId]:
        """Every base tuple involved in any derivation of the answer."""
        return prov.variables()

    def lookup(
        self, result: Result, key_values: Mapping[str, Any]
    ) -> list[tuple[Row, Provenance]]:
        """Rows of *result* matching all the given attribute values."""
        matches = []
        for row, prov in result.rows:
            if all(row.get(name) == value for name, value in key_values.items()):
                matches.append((row, prov))
        return matches
