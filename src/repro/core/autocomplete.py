"""The auto-complete generator (Figure 3).

"A ranked set of promising extractors and queries is produced by the
auto-complete generator. In turn these queries are run by the query engine
to produce example answers, which are output to the user as extra rows and
columns in the workspace."

This module turns learner outputs into executed, row-aligned suggestions:

- row suggestions: structure-learner generalizations minus the user's rows;
- type suggestions: model-learner hypotheses per column;
- column suggestions: integration-learner completions, executed by the
  engine, their values aligned to the current workspace rows, re-ranked by
  (cost, coverage).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..learning.integration.learner import IntegrationLearner
from ..learning.integration.queries import IntegrationQuery
from ..learning.model.type_learner import SemanticTypeLearner
from ..learning.structure.learner import StructureLearner
from ..obs import METRICS
from ..resilience.config import RESILIENCE
from ..server.overload import check_deadline
from ..substrate.documents.clipboard import CopyEvent
from ..substrate.relational.schema import ANY
from ..util.text import normalize
from .engine import QueryEngine
from .suggestions import ColumnSuggestion, QuerySuggestion, RowSuggestion, TypeSuggestion


class AutoCompleteGenerator:
    """Combines the three learners into executed workspace suggestions."""

    def __init__(
        self,
        engine: QueryEngine,
        structure_learner: StructureLearner,
        type_learner: SemanticTypeLearner,
        integration_learner: IntegrationLearner,
    ):
        self.engine = engine
        self.structure_learner = structure_learner
        self.type_learner = type_learner
        self.integration_learner = integration_learner

    # -- rows (import mode) -------------------------------------------------------
    def row_suggestions(
        self, event: CopyEvent, examples: Sequence[Sequence[str]]
    ) -> RowSuggestion | None:
        """Generalize the user's pastes into proposed additional rows."""
        generalization = self.structure_learner.generalize(event, examples)
        if not generalization.hypotheses:
            return None
        return RowSuggestion(
            source_name=event.context.source_name,
            rows=generalization.suggested_rows(),
            generalization=generalization,
        )

    # -- column types ---------------------------------------------------------------
    def type_suggestions(
        self, columns: Sequence[Sequence[Any]], top_k: int = 3
    ) -> list[TypeSuggestion]:
        """Ranked semantic-type hypotheses for each column of a table."""
        out = []
        for index, values in enumerate(columns):
            hypotheses = self.type_learner.recognize(
                [v for v in values if v is not None], top_k=top_k
            )
            out.append(TypeSuggestion(column_index=index, hypotheses=hypotheses))
        return out

    # -- columns (integration mode) -----------------------------------------------------
    def column_suggestions(
        self,
        query: IntegrationQuery,
        workspace_rows: Sequence[Mapping[str, Any]],
        k: int = 5,
        visible_attributes: Sequence[str] | None = None,
    ) -> list[ColumnSuggestion]:
        """Executed, aligned, ranked column auto-completions.

        ``workspace_rows`` are the committed rows of the current tab (dicts
        keyed by column label); alignment matches result rows to workspace
        rows on the attributes they share.
        """
        completions = self.integration_learner.column_completions(
            query, k=max(k * 2, k), visible_attributes=visible_attributes
        )
        catalog = self.engine.catalog
        base_names = set(query.output_schema(catalog).names)
        suggestions: list[ColumnSuggestion] = []
        for completion in completions:
            # Cooperative cancellation between candidate executions: a
            # refresh whose deadline lapsed stops before the next plan.
            check_deadline("autocomplete.completion")
            result = self.engine.run(completion.query.plan)
            schema = result.schema
            added = completion.added_attributes
            shared = [
                name
                for name in schema.names
                if name in base_names and workspace_rows and name in workspace_rows[0]
            ]
            values: list[tuple[Any, ...]] = []
            provenances = []
            alternatives: list[list[tuple[Any, ...]]] = []
            hits = 0
            for workspace_row in workspace_rows:
                matches = [
                    (row, prov)
                    for row, prov in result.rows
                    if all(
                        _soft_equal(row.get(name), workspace_row.get(name))
                        for name in shared
                    )
                ]
                if matches:
                    hits += 1
                    first_row, first_prov = matches[0]
                    values.append(tuple(first_row.get(name) for name in added))
                    provenances.append(first_prov)
                    alternatives.append(
                        [
                            tuple(row.get(name) for name in added)
                            for row, _ in matches[1:]
                        ]
                    )
                else:
                    values.append(tuple(None for _ in added))
                    provenances.append(None)
                    alternatives.append([])
            coverage = hits / len(workspace_rows) if workspace_rows else 0.0
            # Graceful degradation: a suggestion whose query lost a service
            # mid-execution is still offered (partial answers beat losing
            # the column), but rank-penalized per failed service and
            # flagged so the user sees why values are missing.
            degraded = result.degraded_services()
            score = completion.cost + RESILIENCE.degraded_penalty * len(degraded)
            if degraded and METRICS.enabled:
                METRICS.inc("resilience.degraded_suggestions")
            suggestions.append(
                ColumnSuggestion(
                    completion=completion,
                    attribute_names=added,
                    semantic_types=tuple(
                        schema.attribute(name).semantic_type if name in schema else ANY
                        for name in added
                    ),
                    values=values,
                    provenances=provenances,
                    alternatives=alternatives,
                    coverage=coverage,
                    score=score,
                    degraded=degraded,
                )
            )
        # Rank by learned cost (degradation-penalized); break ties by
        # executed coverage and by the trust scores the feedback loop
        # maintains per source ("the learners adjust source scores",
        # Section 2.2).
        suggestions.sort(
            key=lambda s: (s.score, -s.coverage, -self._source_trust(s), s.source)
        )
        return suggestions[:k]

    def _source_trust(self, suggestion: ColumnSuggestion) -> float:
        """Mean trust of the catalog sources the suggestion's query uses."""
        catalog = self.engine.catalog
        trusts = [
            catalog.metadata(node).trust
            for node in suggestion.query.nodes
            if node in catalog
        ]
        return sum(trusts) / len(trusts) if trusts else 1.0

    # -- cross-source paste (Steiner mode) ----------------------------------------------
    def query_suggestions(
        self, pasted_columns: Mapping[str, Sequence[Any]], k: int = 3
    ) -> list[QuerySuggestion]:
        """Steiner-mode query explanations for user-pasted cross-source tuples."""
        queries = self.integration_learner.explain_tuples(pasted_columns, k=k)
        return [QuerySuggestion(query=query, cost=query.cost) for query in queries]


def _soft_equal(a: Any, b: Any) -> bool:
    if a == b:
        return True
    if a is None or b is None:
        return False
    return normalize(str(a)) == normalize(str(b))
