"""Exporters: XML, CSV, and the Google-Maps-style mashup.

Section 2.1: "an SCP system should include built-in interfaces to data
visualization tools such as Google Maps, as well as the ability to export
data to standard formats." And the demo (Section 8): "Exporting data to
common application formats, including XML and, perhaps more interestingly,
the Google Maps interface."

The map export produces a self-contained HTML page with embedded marker
data (and a JSON payload mirroring what a maps API would ingest) — the
mashup-generator capability, minus the live network.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence
from xml.sax.saxutils import escape

from ..errors import ExportError
from .workspace import WorkspaceTable


def _rows_of(table_or_rows: WorkspaceTable | Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    if isinstance(table_or_rows, WorkspaceTable):
        return table_or_rows.as_dicts(committed_only=True)
    return [dict(row) for row in table_or_rows]


def to_xml(
    table_or_rows: WorkspaceTable | Sequence[Mapping[str, Any]],
    root: str = "table",
    row_element: str = "row",
) -> str:
    """Serialize rows as simple element-per-attribute XML."""
    rows = _rows_of(table_or_rows)
    lines = [f"<?xml version=\"1.0\" encoding=\"UTF-8\"?>", f"<{root}>"]
    for row in rows:
        lines.append(f"  <{row_element}>")
        for name, value in row.items():
            tag = _xml_name(name)
            if value is None:
                lines.append(f"    <{tag}/>")
            else:
                lines.append(f"    <{tag}>{escape(str(value))}</{tag}>")
        lines.append(f"  </{row_element}>")
    lines.append(f"</{root}>")
    return "\n".join(lines)


def _xml_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch in "_-" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"f_{cleaned}"
    return cleaned


def to_csv(table_or_rows: WorkspaceTable | Sequence[Mapping[str, Any]]) -> str:
    """RFC-4180-ish CSV with a header row."""
    rows = _rows_of(table_or_rows)
    if not rows:
        return ""
    header = list(rows[0].keys())

    def quote(value: Any) -> str:
        text = "" if value is None else str(value)
        if any(ch in text for ch in ",\"\n"):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(quote(name) for name in header)]
    for row in rows:
        lines.append(",".join(quote(row.get(name)) for name in header))
    return "\n".join(lines)


def to_map_markers(
    table_or_rows: WorkspaceTable | Sequence[Mapping[str, Any]],
    lat_attr: str = "Lat",
    lon_attr: str = "Lon",
    label_attr: str | None = None,
) -> list[dict[str, Any]]:
    """Marker dicts (lat, lon, label, info) for rows with geocodes."""
    rows = _rows_of(table_or_rows)
    markers = []
    for row in rows:
        lat, lon = row.get(lat_attr), row.get(lon_attr)
        if lat is None or lon is None:
            continue
        try:
            lat_f, lon_f = float(lat), float(lon)
        except (TypeError, ValueError):
            continue
        label = str(row.get(label_attr, "")) if label_attr else ""
        info = {k: v for k, v in row.items() if k not in (lat_attr, lon_attr)}
        markers.append({"lat": lat_f, "lon": lon_f, "label": label, "info": info})
    return markers


def to_map_html(
    table_or_rows: WorkspaceTable | Sequence[Mapping[str, Any]],
    lat_attr: str = "Lat",
    lon_attr: str = "Lon",
    label_attr: str | None = None,
    title: str = "CopyCat mashup",
) -> str:
    """A self-contained map mashup page with the marker payload embedded."""
    markers = to_map_markers(table_or_rows, lat_attr, lon_attr, label_attr)
    if not markers:
        raise ExportError(
            f"no mappable rows: need numeric {lat_attr!r}/{lon_attr!r} attributes"
        )
    payload = json.dumps(markers, indent=2, sort_keys=True)
    center_lat = sum(m["lat"] for m in markers) / len(markers)
    center_lon = sum(m["lon"] for m in markers) / len(markers)
    return f"""<!DOCTYPE html>
<html>
<head><title>{escape(title)}</title></head>
<body>
<h1>{escape(title)}</h1>
<div id="map" data-center-lat="{center_lat:.6f}" data-center-lon="{center_lon:.6f}"></div>
<script type="application/json" id="markers">
{payload}
</script>
<script>
// Stand-in for the Google Maps bootstrap: render one positioned div per
// marker so the page is self-contained and offline-testable.
const markers = JSON.parse(document.getElementById('markers').textContent);
const map = document.getElementById('map');
for (const m of markers) {{
  const pin = document.createElement('div');
  pin.className = 'pin';
  pin.title = m.label;
  pin.textContent = m.label + ' @ (' + m.lat + ', ' + m.lon + ')';
  map.appendChild(pin);
}}
</script>
</body>
</html>"""
