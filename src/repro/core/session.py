"""The CopyCat session: the SCP control loop.

Wires every component of Figure 3 together — clipboard/wrappers feed the
three learners, the auto-complete generator proposes rows/columns/types, the
query engine executes with provenance, the workspace displays, and user
feedback flows back to the learners.

Typical import-mode flow (Figure 1)::

    session = CopyCatSession()
    browser = Browser(session.clipboard, site)
    browser.navigate(url)
    browser.copy_record(first_row, "Shelters")
    outcome = session.paste()          # rows generalize, types suggested
    session.accept_row_suggestions()
    session.label_column(0, "Name")
    session.commit_source()            # Shelters enters the catalog

Integration-mode flow (Figure 2)::

    session.start_integration("Shelters")
    suggestions = session.column_suggestions()
    session.preview_column(0)          # Zip column appears highlighted
    print(session.explain(0).render()) # tuple explanation pane
    session.accept_column()            # feedback -> MIRA
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..cache.config import CACHE
from ..cache.tiers import CacheTiers
from ..drift import (
    DRIFT,
    QuarantineLog,
    WrapperRecord,
    add_provenance_note,
    apply_wrapper,
    note_drift_event,
    note_resync,
    quarantine_source_in_catalog,
    record_wrapper,
    refetch_event,
    reinduce_wrapper,
    release_source_in_catalog,
    validate_row,
    verify_extraction,
)
from ..durability.recorder import SessionRecorder, recorded
from ..errors import FeedbackError, NoHypothesisError, WorkspaceError
from ..obs import METRICS, TRACER
from ..learning.integration.learner import IntegrationLearner
from ..learning.integration.queries import IntegrationQuery
from ..learning.integration.source_graph import Association
from ..learning.model.seed import seed_type_learner
from ..learning.model.type_learner import SemanticTypeLearner
from ..learning.structure.learner import StructureLearner
from ..learning.transforms import Transform, TransformLearner
from ..linking.linker import LearnedLinker, LinkExample
from ..linking.similarity import FieldPair
from ..provenance.explain import Explanation
from ..resilience.config import RESILIENCE
from ..server.config import OVERLOAD
from ..server.overload import LEVEL_DEGRADED, LEVEL_NORMAL
from ..substrate.documents.clipboard import Clipboard, CopyEvent
from ..substrate.relational.catalog import Catalog, SourceMetadata
from ..substrate.relational.relation import Relation
from ..substrate.relational.schema import ANY, Attribute, Schema, SemanticType
from .autocomplete import AutoCompleteGenerator
from .engine import QueryEngine
from .feedback import FeedbackKind, FeedbackLog
from .suggestions import ColumnSuggestion, QuerySuggestion, RowSuggestion, TypeSuggestion
from .workspace import CellState, Workspace


@dataclass
class PasteOutcome:
    """What one paste produced: rows added, and the system's suggestions."""

    tab: str
    pasted_rows: list[int]
    row_suggestion: RowSuggestion | None
    type_suggestions: list[TypeSuggestion]

    @property
    def n_suggested_rows(self) -> int:
        """How many rows the system proposed beyond the user's paste."""
        return len(self.row_suggestion.rows) if self.row_suggestion else 0


@dataclass(frozen=True)
class ResyncReport:
    """What one :meth:`CopyCatSession.resync_source` call did.

    ``action`` is one of ``"clean"`` (wrapper still fits), ``"reinduced"``
    (drift detected, wrapper healed from the stored examples),
    ``"quarantined"`` (drift unrecoverable: last-known-good rows kept,
    source degraded), or ``"blind"`` (drift layer disabled: whatever the old
    wrapper extracted was committed, unverified).
    """

    source: str
    action: str
    rows_committed: int
    rows_quarantined: int
    reasons: tuple[str, ...] = ()

    @property
    def healed(self) -> bool:
        return self.action == "reinduced"


class CopyCatSession:
    """One interactive smart-copy-and-paste session."""

    OUTPUT_TAB = "Integration"

    def __init__(
        self,
        catalog: Catalog | None = None,
        clipboard: Clipboard | None = None,
        type_learner: SemanticTypeLearner | None = None,
        structure_learner: StructureLearner | None = None,
        seed: int = 0,
        relevance_threshold: float = 2.0,
        use_semantic_types: bool = True,
        cache_tiers: "CacheTiers | None" = None,
    ):
        self.catalog = catalog or Catalog()
        self.clipboard = clipboard or Clipboard()
        self.type_learner = type_learner or seed_type_learner(seed=seed)
        self.structure_learner = structure_learner or StructureLearner(
            type_learner=self.type_learner
        )
        self._linkers: dict[str, LearnedLinker] = {}
        self._linker_edges: dict[str, Association] = {}
        self.integration_learner = IntegrationLearner(
            self.catalog,
            relevance_threshold=relevance_threshold,
            use_semantic_types=use_semantic_types,
            linker_factory=self._linker_for,
        )
        # cache_tiers: the session server passes one shared bundle so every
        # tenant's evaluator amortizes the fleet's plan/analysis/columnar
        # work; standalone sessions keep private tiers (the default).
        self.engine = QueryEngine(self.catalog, cache_tiers)
        # Let the static plan analyzer cross-check DependentJoin bindings
        # against the learned source graph (repro.analysis PLAN003).
        self.engine.graph_supplier = lambda: self.integration_learner.graph
        self.autocomplete = AutoCompleteGenerator(
            self.engine,
            self.structure_learner,
            self.type_learner,
            self.integration_learner,
        )
        self.workspace = Workspace()
        self.log = FeedbackLog()

        self._events: dict[str, CopyEvent] = {}
        self._generalizations: dict[str, Any] = {}
        self._query: IntegrationQuery | None = None
        self._column_suggestions: list[ColumnSuggestion] = []
        self._suggestion_signature: Any = None  # state the standing batch reflects
        self._previewed: int | None = None  # index into _column_suggestions
        self._row_provenance: list[Any] = []  # per output-tab row
        self.cleaning_mode: bool = False
        self._views: dict[str, IntegrationQuery] = {}
        self._edit_history: dict[tuple[str, int], list[tuple[dict[str, Any], Any]]] = {}
        self.transform_learner = TransformLearner()
        # Drift layer: per-source wrapper records (for re-application and
        # self-healing re-induction) and the quarantine ledger.
        self.quarantine = QuarantineLog()
        self._wrappers: dict[str, WrapperRecord] = {}
        # Durability layer: when a recorder is attached (repro.durability),
        # every @recorded action below is written ahead to the tenant's
        # action log; None (the default) is the pure in-memory session.
        self.durability: SessionRecorder | None = None
        # Overload layer: the server's load controller moves sessions between
        # "normal" and "degraded" (brownout) service via set_service_level.
        self.service_level: str = LEVEL_NORMAL

    # ------------------------------------------------------------------ linkers
    def _linker_for(self, edge: Association) -> LearnedLinker:
        """One persistent learnable linker per (oriented) record-link edge."""
        if edge.key not in self._linkers:
            pairs = [FieldPair(left, right) for left, right in edge.conditions]
            self._linkers[edge.key] = LearnedLinker(pairs)
            self._linker_edges[edge.key] = edge
        return self._linkers[edge.key]

    # ================================================================ import mode
    @recorded
    def paste(self, event: CopyEvent | None = None, tab: str | None = None) -> PasteOutcome:
        """Paste the clipboard into the workspace and auto-complete.

        Adds the copied fields as user rows, replaces any standing row
        suggestions with a fresh generalization, and proposes column types.
        """
        event = event or self.clipboard.current()
        with TRACER.span("session.paste") as span, METRICS.timer("session.paste_ms"):
            self.workspace.checkpoint()
            tab_name = tab or event.context.source_name
            if not self.workspace.has_tab(tab_name):
                self.workspace.new_tab(tab_name)
            table = self.workspace.switch_to(tab_name)
            self._events[tab_name] = event

            pasted = table.append_rows(event.fields, state=CellState.USER)
            self.log.record(FeedbackKind.PASTE, tab=tab_name, rows=len(pasted))

            # Ignoring standing suggestions and pasting more data *is* feedback:
            # drop them and re-generalize from all committed rows.
            table.reject_rows()
            examples = table.committed_rows()
            examples = [[str(v) for v in row] for row in examples]
            with TRACER.span("session.paste.generalize"):
                suggestion = self.autocomplete.row_suggestions(event, examples)
            if suggestion is not None:
                self._generalizations[tab_name] = suggestion.generalization
                if DRIFT.enabled and suggestion.rows:
                    # Row-level verification of the generalized rows: junk
                    # the wrapper swept up is quarantined, never suggested.
                    arity = len(examples[0]) if examples else len(suggestion.rows[0])
                    kept = []
                    for index, row in enumerate(suggestion.rows):
                        reason = validate_row(row, arity)
                        if reason is None:
                            kept.append(row)
                        else:
                            self.quarantine.add_row(
                                tab_name, row, reason, f"{tab_name}[paste:{index}]"
                            )
                            METRICS.inc("drift.rows_quarantined")
                    suggestion.rows = kept
                table.append_rows(suggestion.rows, state=CellState.SUGGESTED)

            with TRACER.span("session.paste.suggest_types"):
                type_suggestions = self._suggest_types(tab_name)
            if span.is_recording():
                span.set("tab", tab_name)
                span.set("pasted_rows", len(pasted))
                span.set("suggested_rows", len(suggestion.rows) if suggestion else 0)
            METRICS.inc("session.pastes")
            return PasteOutcome(
                tab=tab_name,
                pasted_rows=pasted,
                row_suggestion=suggestion,
                type_suggestions=type_suggestions,
            )

    def _suggest_types(self, tab_name: str) -> list[TypeSuggestion]:
        table = self.workspace.tab(tab_name)
        columns = [table.column_values(c) for c in range(table.n_cols)]
        suggestions = self.autocomplete.type_suggestions(columns)
        for suggestion in suggestions:
            column = table.columns[suggestion.column_index]
            if column.state == CellState.USER and column.semantic_type.name != ANY.name:
                continue  # the user already chose; do not override
            if suggestion.best is not None:
                table.set_column_type(
                    suggestion.column_index,
                    suggestion.best.semantic_type,
                    alternatives=suggestion.alternatives(),
                    suggested=True,
                )
        return suggestions

    @recorded
    def accept_row_suggestions(self, tab: str | None = None, indices: Sequence[int] | None = None) -> int:
        """Accept the standing suggested rows (all by default); returns count."""
        self.workspace.checkpoint()
        table = self.workspace.tab(tab or self._current_tab())
        count = table.accept_rows(indices)
        self.log.record(FeedbackKind.ACCEPT_ROWS, tab=table.name, rows=count)
        return count

    @recorded
    def reject_row_suggestions(self, tab: str | None = None) -> RowSuggestion | None:
        """Reject the standing row suggestions: try the next hypothesis.

        Section 3.1: "If the user rejects the suggestions, the system will
        choose another hypothesis and revise the suggestions."
        """
        tab_name = tab or self._current_tab()
        table = self.workspace.tab(tab_name)
        removed = table.reject_rows()
        self.log.record(FeedbackKind.REJECT_ROWS, tab=tab_name, rows=removed)
        generalization = self._generalizations.get(tab_name)
        if generalization is None:
            return None
        try:
            generalization.reject_current()
        except NoHypothesisError:
            return None
        suggestion = RowSuggestion(
            source_name=tab_name,
            rows=generalization.suggested_rows(),
            generalization=generalization,
        )
        table.append_rows(suggestion.rows, state=CellState.SUGGESTED)
        return suggestion

    @recorded
    def label_column(self, col: int, name: str, tab: str | None = None) -> None:
        """User renames a column header (Figure 1's manual 'Name' label)."""
        table = self.workspace.tab(tab or self._current_tab())
        table.set_column_label(col, name)
        self.log.record(FeedbackKind.LABEL_COLUMN, tab=table.name, col=col, name=name)

    @recorded
    def set_column_type(
        self, col: int, semantic_type: SemanticType | str, tab: str | None = None,
        learn_from_values: bool = True,
    ) -> None:
        """User fixes a column's semantic type; new names define new types.

        Section 3.2: "If this is a new type of data ... the user can define
        this new type on the fly" and the model learner "will then use the
        data available in the source to learn to recognize this new type".
        """
        table = self.workspace.tab(tab or self._current_tab())
        values = [v for v in table.column_values(col) if v is not None]
        if isinstance(semantic_type, str):
            learned = self.type_learner.learn(semantic_type, values)
            semantic_type = learned.semantic_type
        elif learn_from_values and values:
            self.type_learner.learn(semantic_type, values)
        table.set_column_type(col, semantic_type, suggested=False)
        self.log.record(
            FeedbackKind.SET_TYPE, tab=table.name, col=col, type=semantic_type.name
        )

    @recorded
    def commit_source(self, tab: str | None = None, name: str | None = None) -> Relation:
        """Promote a tab to a catalog source (its description is now known)."""
        tab_name = tab or self._current_tab()
        METRICS.inc("session.sources_committed")
        table = self.workspace.tab(tab_name)
        source_name = name or tab_name
        schema = Schema(
            [Attribute(column.name, column.semantic_type) for column in table.columns]
        )
        relation = Relation(source_name, schema)
        rows = table.committed_rows()
        if DRIFT.enabled:
            kept = []
            for index, row in enumerate(rows):
                reason = validate_row(row, len(table.columns))
                if reason is None:
                    kept.append(row)
                else:
                    self.quarantine.add_row(
                        source_name, row, reason, f"{source_name}[{index}]"
                    )
                    METRICS.inc("drift.rows_quarantined")
            rows = kept
        for row in rows:
            relation.add(row)
        event = self._events.get(tab_name)
        metadata = SourceMetadata(
            origin="paste", url=event.context.url if event else None
        )
        self.catalog.add_relation(relation, metadata, replace=True)
        generalization = self._generalizations.get(tab_name)
        if (
            DRIFT.enabled
            and event is not None
            and generalization is not None
            and generalization.hypotheses
        ):
            # Snapshot the induced wrapper — hypothesis descriptor, user
            # examples, per-column type signatures — for later verification
            # and self-healing re-induction (see resync_source).
            self._wrappers[source_name] = record_wrapper(
                source_name,
                event,
                generalization.best,
                generalization.examples,
                rows,
            )
        self.integration_learner.refresh()
        self.log.record(
            FeedbackKind.COMMIT_SOURCE, tab=tab_name, source=source_name, rows=len(relation)
        )
        return relation

    # ============================================================== drift resync
    @recorded
    def resync_source(self, name: str) -> ResyncReport:
        """Re-extract a committed source from its live document.

        The recorded wrapper is re-applied and the extraction verified
        against the induction-time hypothesis (arity, record-count sanity,
        example coverage, per-column token-pattern distributions). On drift
        the wrapper is re-induced from the stored user examples — anchored
        by value, not position — and swapped in place; unrecoverable drift
        quarantines the source wholesale while its last-known-good rows keep
        serving, rank-penalized. Every outcome that changes what queries can
        answer bumps ``Catalog.version`` so plan/result caches invalidate.
        """
        record = self._wrappers.get(name)
        if record is None:
            raise FeedbackError(
                f"no wrapper recorded for source {name!r}: it was never "
                f"committed from a paste (or the drift layer was disabled)"
            )
        with TRACER.span("session.resync_source") as span, METRICS.timer(
            "session.resync_ms"
        ):
            event = refetch_event(record)
            if not DRIFT.enabled:
                # Blind resync: the pre-drift-layer behavior — whatever the
                # old wrapper extracts is committed, unverified.
                try:
                    rows = apply_wrapper(self.structure_learner, record, event)
                except NoHypothesisError:
                    rows = []
                if rows:
                    self._replace_source_rows(name, rows)
                return ResyncReport(name, "blind", len(rows), 0)

            METRICS.inc("drift.resyncs")
            note_resync(self.catalog, name)
            structural_reason: str | None = None
            rows = None
            try:
                rows = apply_wrapper(self.structure_learner, record, event)
            except NoHypothesisError as exc:
                structural_reason = str(exc)

            if rows is not None:
                METRICS.inc("drift.verifications")
                report = verify_extraction(record.snapshot, rows)
                if not report.drifted:
                    committed, quarantined = self._commit_resync(name, report)
                    self._lift_quarantine(name)
                    METRICS.inc("drift.resyncs_clean")
                    if span.is_recording():
                        span.set("source", name)
                        span.set("action", "clean")
                    return ResyncReport(name, "clean", committed, quarantined)
                reasons = report.reasons
            else:
                reasons = (structural_reason,)

            # Drift detected: heal by re-inducing from the stored examples.
            METRICS.inc("drift.detected")
            note_drift_event(self.catalog, name)
            try:
                healed, healed_report = reinduce_wrapper(
                    self.structure_learner, record, event
                )
            except NoHypothesisError as exc:
                self.quarantine.quarantine_source(name, str(exc))
                quarantine_source_in_catalog(self.catalog, name, str(exc))
                self.integration_learner.refresh()
                METRICS.inc("drift.sources_quarantined")
                self.log.record(
                    FeedbackKind.REJECT_ROWS, tab=name, quarantined=True
                )
                if span.is_recording():
                    span.set("source", name)
                    span.set("action", "quarantined")
                return ResyncReport(
                    name, "quarantined", 0, 0, tuple(reasons) + (str(exc),)
                )

            self._wrappers[name] = healed
            committed, quarantined = self._commit_resync(name, healed_report)
            add_provenance_note(self.catalog, name, f"reinduced:{name}")
            self._lift_quarantine(name)
            METRICS.inc("drift.reinduced")
            self.log.record(FeedbackKind.COMMIT_SOURCE, tab=name, reinduced=True)
            if span.is_recording():
                span.set("source", name)
                span.set("action", "reinduced")
                span.set("reasons", list(reasons))
            return ResyncReport(name, "reinduced", committed, quarantined, tuple(reasons))

    def _commit_resync(self, name: str, report) -> tuple[int, int]:
        """Commit a verified extraction: valid rows in, violations held out."""
        relation = Relation(name, self.catalog.relation(name).schema)
        for row in report.valid_rows:
            relation.add(list(row))
        self.quarantine.clear_rows(name)
        for violation in report.violations:
            self.quarantine.add_row(
                name, violation.row, violation.reason, f"{name}[{violation.index}]"
            )
        if report.violations:
            METRICS.inc("drift.rows_quarantined", len(report.violations))
        # Keep the metadata object (drift notes, trust) across the replace —
        # add_relation(replace=True) bumps Catalog.version, so fingerprint
        # caches can never serve rows from the superseded wrapper.
        self._replace_source_rows(name, None, relation=relation)
        return len(relation), len(report.violations)

    def _replace_source_rows(self, name: str, rows, relation: Relation | None = None) -> None:
        if relation is None:
            relation = Relation(name, self.catalog.relation(name).schema)
            for row in rows:
                relation.add(list(row))
        self.catalog.add_relation(relation, self.catalog.metadata(name), replace=True)
        self.integration_learner.refresh()

    def _lift_quarantine(self, name: str) -> None:
        if self.quarantine.is_quarantined(name):
            self.quarantine.release_source(name)
        release_source_in_catalog(self.catalog, name)

    # ============================================================ integration mode
    @recorded
    def start_integration(self, source: str, tab: str | None = None) -> str:
        """Open the integration output tab seeded with one source's rows."""
        self.workspace.enter_integration_mode()
        tab_name = tab or self.OUTPUT_TAB
        if self.workspace.has_tab(tab_name):
            raise WorkspaceError(f"integration tab {tab_name!r} already exists")
        table = self.workspace.new_tab(tab_name)
        self._query = self.integration_learner.base_query(source)
        result = self.engine.run(self._query.plan)
        schema = result.schema
        for attribute in schema:
            table.ensure_columns(table.n_cols + 1)
            table.set_column_label(table.n_cols - 1, attribute.name)
            table.set_column_type(table.n_cols - 1, attribute.semantic_type)
        self._row_provenance = []
        for row, prov in result.rows:
            table.append_row(list(row.values), state=CellState.USER)
            self._row_provenance.append(prov)
        self._column_suggestions = []
        self._previewed = None
        return tab_name

    @property
    def current_query(self) -> IntegrationQuery:
        """The integration query behind the output tab."""
        if self._query is None:
            raise FeedbackError("not in integration mode: call start_integration first")
        return self._query

    @recorded
    def set_service_level(self, level: str = LEVEL_NORMAL) -> str:
        """Move the session between full and degraded (brownout) service.

        Called by the server's load controller from inside the tenant's
        serialized request stream; recorded like any other action so a
        crash-replayed session passes through the same brownout windows and
        reconverges bit-for-bit. Degraded sessions reuse standing suggestion
        batches and skip dependent-join service consultations (partial,
        rank-penalized answers via the resilience degradation path).
        """
        if level not in (LEVEL_NORMAL, LEVEL_DEGRADED):
            raise FeedbackError(f"unknown service level {level!r}")
        self.service_level = level
        self.engine.set_service_level(level)
        return level

    @recorded
    def column_suggestions(
        self, k: int = 5, refresh: bool | None = None
    ) -> list[ColumnSuggestion]:
        """Ranked, executed column auto-completions for the output tab.

        With ``refresh=None`` (the default) the standing batch is reused as
        long as nothing it depends on has changed — the catalog version
        (sources, trust, link feedback), the current query, the learned
        edge weights, the committed workspace rows, and ``k`` together form
        a signature; any feedback action perturbs it and forces a
        recompute. ``refresh=True`` forces one unconditionally (the old
        default), ``refresh=False`` reuses whatever batch is standing.
        """
        if RESILIENCE.enabled:
            # Operational trust feedback: fold observed service failure
            # rates into edge weights *before* computing the signature, so
            # newly degraded health both perturbs the signature (forcing a
            # recompute) and sinks chronically failing services in ranking.
            self.integration_learner.absorb_service_health()
        if DRIFT.enabled:
            # Same for extraction-side trust: drift history and quarantine
            # fold into edge costs before the signature is computed.
            self.integration_learner.absorb_drift_events()
        if (
            OVERLOAD.enabled
            and self.service_level != LEVEL_NORMAL
            and refresh is not True
            and self._column_suggestions
        ):
            # Brownout: serve the standing batch even if its signature is
            # stale — a slightly outdated suggestion beats a recompute that
            # deepens the overload. refresh=True still forces one.
            if METRICS.enabled:
                METRICS.inc("overload.brownout_reuse")
            METRICS.inc("session.suggestions_reused")
            return self._column_suggestions
        signature = self._suggestions_signature(k) if CACHE.suggestions else None
        if refresh is None:
            refresh = not (
                signature is not None
                and self._column_suggestions
                and signature == self._suggestion_signature
            )
            if not refresh:
                METRICS.inc("session.suggestions_reused")
        if refresh or not self._column_suggestions:
            with TRACER.span("session.column_suggestions") as span, METRICS.timer(
                "session.column_suggestions_ms"
            ):
                table = self.workspace.tab(self.OUTPUT_TAB)
                rows = table.as_dicts(committed_only=True)
                self._column_suggestions = self.autocomplete.column_suggestions(
                    self.current_query, rows, k=k
                )
                if span.is_recording():
                    span.set("k", k)
                    span.set("suggestions", len(self._column_suggestions))
            METRICS.inc("session.suggestion_batches")
            METRICS.inc("session.suggestions_produced", len(self._column_suggestions))
            self._suggestion_signature = signature
            self._previewed = None
        return self._column_suggestions

    def _suggestions_signature(self, k: int) -> tuple:
        """Everything a suggestion batch depends on, comparable with ``==``."""
        query = self.current_query
        table = self.workspace.tab(self.OUTPUT_TAB)
        return (
            self.catalog.version,
            query.root,
            tuple(edge.key for edge in query.edges),
            k,
            table.as_dicts(committed_only=True),
            dict(self.integration_learner.graph.weights),
            self.integration_learner.relevance_threshold,
        )

    @recorded
    def preview_column(self, index: int = 0) -> ColumnSuggestion:
        """Show one suggestion in the table (highlighted, like Figure 2)."""
        suggestions = self._column_suggestions or self.column_suggestions()
        if not 0 <= index < len(suggestions):
            raise FeedbackError(f"no column suggestion #{index}")
        self._clear_preview()
        suggestion = suggestions[index]
        table = self.workspace.tab(self.OUTPUT_TAB)
        for position, attr_name in enumerate(suggestion.attribute_names):
            table.add_suggested_column(
                attr_name,
                [value[position] for value in suggestion.values],
                semantic_type=suggestion.semantic_types[position],
                provenances=suggestion.provenances,
            )
        self._previewed = index
        return suggestion

    def cell_alternatives(self, row: int) -> list[tuple[Any, ...]]:
        """Alternative values for the previewed suggestion at *row*.

        Example 1: "the shelter name may be ambiguous and might return
        multiple answers: here CopyCat would show the alternatives and allow
        the integrator to select the appropriate location."
        """
        if self._previewed is None:
            raise FeedbackError("no column suggestion is previewed")
        suggestion = self._column_suggestions[self._previewed]
        if not 0 <= row < len(suggestion.alternatives):
            raise FeedbackError(f"no row {row} in the previewed suggestion")
        return list(suggestion.alternatives[row])

    @recorded
    def choose_alternative(self, row: int, choice: int) -> tuple[Any, ...]:
        """Replace the previewed suggestion's value at *row* with an
        alternative the user picked from the ambiguity dropdown."""
        alternatives = self.cell_alternatives(row)
        if not 0 <= choice < len(alternatives):
            raise FeedbackError(
                f"row {row} has {len(alternatives)} alternatives; no #{choice}"
            )
        suggestion = self._column_suggestions[self._previewed]
        chosen = alternatives[choice]
        table = self.workspace.tab(self.OUTPUT_TAB)
        start = table.n_cols - len(suggestion.attribute_names)
        for offset, value in enumerate(chosen):
            table.set_cell(row, start + offset, value, state=CellState.SUGGESTED)
        # Record the user's disambiguation so the suggestion's committed
        # values reflect it if accepted.
        new_values = list(suggestion.values)
        previous = new_values[row]
        new_values[row] = chosen
        suggestion.values = new_values
        remaining = [alt for alt in suggestion.alternatives[row] if alt != chosen]
        suggestion.alternatives[row] = remaining + [previous]
        self.log.record(
            FeedbackKind.EDIT_CELL,
            tab=self.OUTPUT_TAB,
            row=row,
            disambiguated=True,
        )
        return chosen

    def _clear_preview(self) -> None:
        table = self.workspace.tab(self.OUTPUT_TAB)
        while any(column.state == CellState.SUGGESTED for column in table.columns):
            for position, column in enumerate(table.columns):
                if column.state == CellState.SUGGESTED:
                    table.reject_column(position)
                    break
        self._previewed = None

    @recorded
    def accept_column(self, index: int | None = None) -> ColumnSuggestion:
        """Accept a column suggestion: workspace commit + MIRA feedback."""
        suggestions = self._column_suggestions or self.column_suggestions()
        if index is None:
            index = self._previewed if self._previewed is not None else 0
        if not 0 <= index < len(suggestions):
            raise FeedbackError(f"no column suggestion #{index}")
        if self._previewed != index:
            self.preview_column(index)
        suggestion = suggestions[index]
        table = self.workspace.tab(self.OUTPUT_TAB)
        for position, column in reversed(list(enumerate(table.columns))):
            if column.state == CellState.SUGGESTED:
                table.accept_column(position)
        # Feedback: accepted suggestion outranks every alternative shown.
        with TRACER.span("session.accept_column.feedback"):
            self.integration_learner.accept_query(
                suggestion.query, [s.query for s in suggestions if s is not suggestion]
            )
        METRICS.inc("session.columns_accepted")
        # Row provenance now includes the new column's derivations.
        for i, prov in enumerate(suggestion.provenances):
            if prov is not None and i < len(self._row_provenance):
                self._row_provenance[i] = prov
        self._query = suggestion.query
        self._column_suggestions = []
        self._previewed = None
        self.log.record(
            FeedbackKind.ACCEPT_COLUMN,
            tab=self.OUTPUT_TAB,
            source=suggestion.source,
            attrs=suggestion.attribute_names,
        )
        return suggestion

    @recorded
    def reject_column(self, index: int | None = None) -> None:
        """Reject a suggestion: remove it and demote its query below threshold."""
        suggestions = self._column_suggestions or self.column_suggestions()
        if index is None:
            index = self._previewed if self._previewed is not None else 0
        if not 0 <= index < len(suggestions):
            raise FeedbackError(f"no column suggestion #{index}")
        suggestion = suggestions[index]
        if self._previewed == index:
            self._clear_preview()
        better = [self._query] if self._query and self._query.edges else []
        with TRACER.span("session.reject_column.feedback"):
            self.integration_learner.reject_query(suggestion.query, better)
        METRICS.inc("session.columns_rejected")
        self._column_suggestions = [s for s in suggestions if s is not suggestion]
        self.log.record(
            FeedbackKind.REJECT_COLUMN,
            tab=self.OUTPUT_TAB,
            source=suggestion.source,
            attrs=suggestion.attribute_names,
        )

    # -------------------------------------------------------------- explanations
    def explain(self, row_index: int) -> Explanation:
        """The Tuple Explanation pane for one output-tab row."""
        table = self.workspace.tab(self.OUTPUT_TAB)
        # Prefer cell-level provenance of the newest (suggested) column.
        prov = None
        for col in reversed(range(table.n_cols)):
            cell = table.cell(row_index, col)
            if cell.provenance is not None:
                prov = cell.provenance
                break
        if prov is None:
            if row_index >= len(self._row_provenance):
                raise FeedbackError(f"no provenance recorded for row {row_index}")
            prov = self._row_provenance[row_index]
        plan = None
        if self._previewed is not None and self._column_suggestions:
            plan = self._column_suggestions[self._previewed].query.plan
        elif self._query is not None:
            plan = self._query.plan
        return self.engine.explain_row(prov, plan)

    # ------------------------------------------------------- record-link feedback
    @recorded
    def add_link_example(
        self,
        left_row: Mapping[str, Any],
        right_row: Mapping[str, Any],
        edge_key: str | None = None,
        is_match: bool = True,
        right_pool: Sequence[Mapping[str, Any]] | None = None,
    ) -> int:
        """Teach a record-link edge from a user-demonstrated match.

        When the user pastes the matching contact next to a shelter, that
        pair is a positive example for the linker on the relevant edge.
        Returns the number of weight updates applied.
        """
        if edge_key is None:
            link_keys = [k for k in self._linkers if "record-link" in k]
            if len(link_keys) != 1:
                raise FeedbackError(
                    "edge_key required: "
                    + (f"candidates {link_keys}" if link_keys else "no link edges active")
                )
            edge_key = link_keys[0]
        linker = self._linkers.get(edge_key)
        if linker is None:
            edge = self.integration_learner.graph.edge(edge_key)
            linker = self._linker_for(edge)
            self._linker_edges[edge_key] = edge
        pool = list(right_pool) if right_pool is not None else self._link_pool(edge_key)
        updates = linker.train(
            [LinkExample(left=dict(left_row), right=dict(right_row), is_match=is_match)],
            pool,
        )
        # Link feedback changes record-link join answers: invalidate caches.
        self.catalog.bump_version()
        self.log.record(
            FeedbackKind.LINK_EXAMPLE, tab=self.OUTPUT_TAB, edge=edge_key, match=is_match
        )
        return updates

    def _link_pool(self, edge_key: str) -> list[dict[str, Any]]:
        # Linkers are keyed by *oriented* edges (compilation may flip the
        # graph edge), so consult the recorded orientation, not the graph.
        edge = self._linker_edges.get(edge_key)
        if edge is None:
            edge = self.integration_learner.graph.edge(edge_key)
        right = edge.right
        if self.catalog.is_service(right):
            return []
        return [row.as_dict() for row in self.catalog.relation(right)]

    # --------------------------------------------------------- cross-source paste
    def explain_pasted_tuples(
        self, columns: Mapping[str, Sequence[Any]], k: int = 3
    ) -> list[QuerySuggestion]:
        """Steiner mode: the user pasted joined tuples; rank explanations."""
        return self.autocomplete.query_suggestions(columns, k=k)

    def adopt_query(self, suggestion: QuerySuggestion, tab: str | None = None) -> str:
        """Replace the output tab with a chosen query's full results."""
        self.workspace.enter_integration_mode()
        tab_name = tab or self.OUTPUT_TAB
        if self.workspace.has_tab(tab_name):
            # Rebuild the tab from scratch with the adopted query's output.
            self.workspace._tabs.pop(tab_name)  # noqa: SLF001 - deliberate reset
            self.workspace._order.remove(tab_name)
        table = self.workspace.new_tab(tab_name)
        self._query = suggestion.query
        result = self.engine.run(suggestion.query.plan)
        for attribute in result.schema:
            table.ensure_columns(table.n_cols + 1)
            table.set_column_label(table.n_cols - 1, attribute.name)
            table.set_column_type(table.n_cols - 1, attribute.semantic_type)
        self._row_provenance = []
        for row, prov in result.rows:
            table.append_row(list(row.values), state=CellState.USER)
            self._row_provenance.append(prov)
        self.log.record(FeedbackKind.ADOPT_QUERY, tab=tab_name, query=suggestion.describe())
        return tab_name

    # ------------------------------------------------------------ data cleaning
    @recorded
    def enter_cleaning_mode(self) -> None:
        """Section 5 ("Data cleaning"): in cleaning mode "the system does
        not try to generalize any updates beyond the current tuple"."""
        self.cleaning_mode = True

    @recorded
    def exit_cleaning_mode(self) -> None:
        """Leave cleaning mode: edits may generalize again."""
        self.cleaning_mode = False

    @recorded
    def edit_cell(
        self, row: int, col: int, value: Any, tab: str | None = None
    ) -> list[Transform]:
        """Edit one cell; outside cleaning mode, try to generalize the edit.

        Returns the ranked transforms consistent with *all* edits the user
        has made to this column this session (empty in cleaning mode, or
        when no non-trivial transform explains them). The paper poses
        auto-detection of "cleaning vs generalizable change" as an open
        question; our heuristic: a single edit is treated as cleaning, and
        generalization is proposed only once two edits agree on a transform.
        """
        tab_name = tab or self._current_tab()
        table = self.workspace.tab(tab_name)
        old_row = {
            column.name: table.cell(row, c).value
            for c, column in enumerate(table.columns)
        }
        old_row["__old__"] = table.cell(row, col).value
        table.set_cell(row, col, value)
        self.log.record(FeedbackKind.EDIT_CELL, tab=tab_name, row=row, col=col)
        if self.cleaning_mode:
            return []
        history = self._edit_history.setdefault((tab_name, col), [])
        history.append((old_row, value))
        if len(history) < 2:
            return []
        transforms = self.transform_learner.learn(history)
        return [t for t in transforms if t.kind != "identity"]

    def apply_edit_generalization(
        self, col: int, transform: Transform, tab: str | None = None
    ) -> int:
        """Apply a learned edit transform to every committed row's cell.

        Returns the number of cells changed. Cells already matching the
        transform's output are left untouched.
        """
        tab_name = tab or self._current_tab()
        table = self.workspace.tab(tab_name)
        changed = 0
        for row_index in range(table.n_rows):
            if not table.row_state(row_index).is_committed:
                continue
            row_dict = {
                column.name: table.cell(row_index, c).value
                for c, column in enumerate(table.columns)
            }
            row_dict["__old__"] = table.cell(row_index, col).value
            new_value = transform.apply(row_dict)
            if new_value is not None and new_value != row_dict["__old__"]:
                table.set_cell(row_index, col, new_value)
                changed += 1
        self.log.record(
            FeedbackKind.EDIT_CELL,
            tab=tab_name,
            col=col,
            generalized=str(transform),
            changed=changed,
        )
        return changed

    # ------------------------------------------------- derived (transform) columns
    @recorded
    def add_derived_column(
        self,
        name: str,
        examples: Mapping[int, Any],
        tab: str | None = None,
    ) -> tuple[Transform, int]:
        """Flash-fill style: the user types a few values of a *new* column;
        the system learns the transform and auto-completes the rest.

        ``examples`` maps row index -> desired value. Returns the learned
        transform and the index of the new (suggested) column.
        """
        tab_name = tab or self._current_tab()
        table = self.workspace.tab(tab_name)
        training = []
        for row_index, target in examples.items():
            row_dict = {
                column.name: table.cell(row_index, c).value
                for c, column in enumerate(table.columns)
            }
            training.append((row_dict, target))
        transform = self.transform_learner.best(training)
        values = []
        for row_index in range(table.n_rows):
            row_dict = {
                column.name: table.cell(row_index, c).value
                for c, column in enumerate(table.columns)
            }
            values.append(transform.apply(row_dict))
        col = table.add_suggested_column(name, values)
        # The user's own example cells are theirs, not suggestions.
        for row_index in examples:
            table.cell(row_index, col).state = CellState.USER
        self.log.record(
            FeedbackKind.ACCEPT_COLUMN,
            tab=tab_name,
            derived=str(transform),
            name=name,
        )
        return transform, col

    # ----------------------------------------------------- tuple-level feedback
    @recorded
    def promote_row(self, row: int, tab: str | None = None) -> None:
        """Promote a tuple: raise trust in every source that derived it."""
        self._adjust_row_trust(row, tab, factor=1.1)

    @recorded
    def demote_row(
        self, row: int, tab: str | None = None, distrust_base_rows: bool = False
    ) -> list[str]:
        """Demote a tuple (Section 2.2: "promoting or demoting tuples").

        Trust drops for every contributing source. With
        ``distrust_base_rows`` the specific base tuples in the derivation
        are marked distrusted, so scans — and therefore *all* future
        suggestions — skip them: the integration-mode feedback reaches the
        source learners, the paper's Section-5 cooperation goal.
        """
        tab_name = tab or self.OUTPUT_TAB
        touched = self._adjust_row_trust(row, tab_name, factor=0.8)
        if distrust_base_rows:
            prov = self._provenance_for_row(row, tab_name)
            for tid in prov.variables():
                if tid.relation in self.catalog.relation_names():
                    notes = self.catalog.metadata(tid.relation).notes
                    notes.setdefault("distrusted_rows", set()).add(tid.index)
            # Distrusted rows change scan outputs: invalidate cached plans.
            self.catalog.bump_version()
        return touched

    def _provenance_for_row(self, row: int, tab_name: str):
        table = self.workspace.tab(tab_name)
        for col in reversed(range(table.n_cols)):
            cell = table.cell(row, col)
            if cell.provenance is not None:
                return cell.provenance
        if row < len(self._row_provenance) and self._row_provenance[row] is not None:
            return self._row_provenance[row]
        raise FeedbackError(f"no provenance recorded for row {row}")

    def _adjust_row_trust(self, row: int, tab: str | None, factor: float) -> list[str]:
        tab_name = tab or self.OUTPUT_TAB
        prov = self._provenance_for_row(row, tab_name)
        touched = sorted({tid.relation for tid in prov.variables()})
        for source in touched:
            if source in self.catalog:
                metadata = self.catalog.metadata(source)
                metadata.trust = max(0.05, min(1.0, metadata.trust * factor))
        # Trust feeds suggestion ranking: move the version so standing
        # suggestion batches (and version-keyed caches) refresh.
        self.catalog.bump_version()
        kind = FeedbackKind.ACCEPT_ROWS if factor >= 1 else FeedbackKind.REJECT_ROWS
        self.log.record(kind, tab=tab_name, row=row, sources=touched)
        return touched

    # ----------------------------------------------------------- union queries
    @recorded
    def union_sources(self, sources: Sequence[str], tab: str | None = None) -> str:
        """Union several committed sources into the output tab.

        Section 2.1: pasting data from a different source into contiguous
        *rows* "expresses a union"; schemas are homogenized by null padding
        (Section 4.2).
        """
        from ..substrate.relational.algebra import Scan, Union

        if len(sources) < 2:
            raise FeedbackError("a union needs at least two sources")
        plan = Union(tuple(Scan(source) for source in sources))
        self.workspace.enter_integration_mode()
        tab_name = tab or self.OUTPUT_TAB
        if self.workspace.has_tab(tab_name):
            self.workspace._tabs.pop(tab_name)  # noqa: SLF001 - deliberate reset
            self.workspace._order.remove(tab_name)
        table = self.workspace.new_tab(tab_name)
        result = self.engine.run(plan)
        for attribute in result.schema:
            table.ensure_columns(table.n_cols + 1)
            table.set_column_label(table.n_cols - 1, attribute.name)
            table.set_column_type(table.n_cols - 1, attribute.semantic_type)
        self._row_provenance = []
        for row, prov in result.rows:
            table.append_row(list(row.values), state=CellState.USER)
            self._row_provenance.append(prov)
        self.log.record(FeedbackKind.ADOPT_QUERY, tab=tab_name, query=plan.describe())
        return tab_name

    # ------------------------------------------------------------ mediated views
    @recorded
    def save_view(self, name: str) -> Relation:
        """Persist the current integration query as a mediated view.

        Section 1: the assembled table "could be persistently saved as an
        integrated, mediated view of the data, enabling user or application
        queries over a unified representation." The view is materialized
        into the catalog (so other queries can use it) and its defining
        query is retained so :meth:`refresh_view` can re-run it when the
        underlying sources change.
        """
        query = self.current_query
        relation = self._materialize(name, query)
        self._views[name] = query
        self.log.record(FeedbackKind.COMMIT_SOURCE, tab=self.OUTPUT_TAB, view=name)
        return relation

    @recorded
    def refresh_view(self, name: str) -> Relation:
        """Re-execute a saved view over the sources' current contents."""
        try:
            query = self._views[name]
        except KeyError:
            raise FeedbackError(f"no saved view named {name!r}") from None
        return self._materialize(name, query)

    def view_names(self) -> list[str]:
        """Names of every saved mediated view."""
        return sorted(self._views)

    def view_definition(self, name: str) -> IntegrationQuery:
        """The integration query defining a saved view."""
        try:
            return self._views[name]
        except KeyError:
            raise FeedbackError(f"no saved view named {name!r}") from None

    def _materialize(self, name: str, query: IntegrationQuery) -> Relation:
        result = self.engine.run(query.plan)
        relation = Relation(name, result.schema)
        for row, _ in result.rows:
            relation.add(list(row.values))
        self.catalog.add_relation(
            relation,
            SourceMetadata(origin="view", notes={"definition": query.describe()}),
            replace=True,
        )
        self.integration_learner.refresh()
        return relation

    # ------------------------------------------------------------- persistence
    def save(self, path) -> "Path":
        """Persist everything this session has learned (see repro.io)."""
        from ..io import save_session

        return save_session(self, path)

    def load(self, path) -> None:
        """Restore learned state saved by :meth:`save` (services must
        already be registered in this session's catalog)."""
        from ..io import load_session

        load_session(self, path)

    # ----------------------------------------------------------------- undo
    @recorded
    def undo(self) -> bool:
        """Undo the last checkpointed workspace interaction (§5)."""
        return self.workspace.undo()

    # ------------------------------------------------------------------- helpers
    def _current_tab(self) -> str:
        if self.workspace.current_tab is None:
            raise WorkspaceError("no active tab: paste something first")
        return self.workspace.current_tab

    def render(self) -> str:
        """ASCII rendering of the whole workspace (all tabs)."""
        return self.workspace.render_text()
