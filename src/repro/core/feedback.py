"""Feedback events and the session feedback log.

Section 2.2: "The user may provide feedback: promoting or demoting tuples,
modifying the headings or data type specifiers for the columns, or adding or
removing columns. Each of these actions provides information to the learners
in the system."

Every user interaction the session processes is recorded as a
:class:`FeedbackEvent`; the log is what the keystroke accounting, the tests,
and the "how did the system learn this" explanations read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class FeedbackKind(enum.Enum):
    """Every interaction category the session logs."""

    PASTE = "paste"
    ACCEPT_ROWS = "accept-rows"
    REJECT_ROWS = "reject-rows"
    ACCEPT_COLUMN = "accept-column"
    REJECT_COLUMN = "reject-column"
    LABEL_COLUMN = "label-column"
    SET_TYPE = "set-type"
    COMMIT_SOURCE = "commit-source"
    LINK_EXAMPLE = "link-example"
    ADOPT_QUERY = "adopt-query"
    EDIT_CELL = "edit-cell"


@dataclass(frozen=True)
class FeedbackEvent:
    """One logged interaction."""

    kind: FeedbackKind
    tab: str | None = None
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        where = f"@{self.tab}" if self.tab else ""
        return f"{self.kind.value}{where}({extras})"


class FeedbackLog:
    """Ordered record of all session interactions."""

    def __init__(self) -> None:
        self._events: list[FeedbackEvent] = []

    def record(self, kind: FeedbackKind, tab: str | None = None, **detail: Any) -> FeedbackEvent:
        """Append one interaction to the log."""
        event = FeedbackEvent(kind=kind, tab=tab, detail=detail)
        self._events.append(event)
        return event

    def events(self, kind: FeedbackKind | None = None) -> list[FeedbackEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: FeedbackKind | None = None) -> int:
        """Number of logged events (optionally of one kind)."""
        return len(self.events(kind))

    def __len__(self) -> int:
        return len(self._events)

    def render(self) -> str:
        """One line per event, in order."""
        return "\n".join(str(event) for event in self._events)
