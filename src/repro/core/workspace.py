"""The CopyCat workspace: a headless model of the spreadsheet-like UI.

Figures 1 and 2 show the GUI this module models: a table whose cells are
user-pasted or system-suggested (highlighted), column headers carrying
names and semantic types (``Street / PR-Street``), per-source tabs in
integration mode, and a tuple-explanation pane. All user interactions are
methods here; rendering is plain text.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..errors import WorkspaceError
from ..provenance.expressions import Provenance
from ..substrate.relational.schema import ANY, SemanticType


class CellState(enum.Enum):
    """Lifecycle of a workspace cell."""

    USER = "user"            # pasted or typed by the user
    SUGGESTED = "suggested"  # auto-complete proposal (highlighted in the UI)
    ACCEPTED = "accepted"    # suggestion the user accepted

    @property
    def is_committed(self) -> bool:
        return self in (CellState.USER, CellState.ACCEPTED)


class Mode(enum.Enum):
    """Section 2.1: the SCP system starts in import mode; a button or a
    cross-source paste switches it to integration mode."""

    IMPORT = "import"
    INTEGRATION = "integration"


@dataclass
class Cell:
    value: Any
    state: CellState = CellState.USER
    provenance: Provenance | None = None

    def __str__(self) -> str:
        return "" if self.value is None else str(self.value)


@dataclass
class Column:
    """A workspace column: label, semantic type, and how it got here."""

    name: str
    semantic_type: SemanticType = ANY
    state: CellState = CellState.USER
    #: Alternate semantic-type hypotheses for the header dropdown
    #: ("the other hypotheses will be available in a drop down list").
    alternatives: tuple[SemanticType, ...] = ()

    def header(self) -> str:
        type_part = (
            f" / {self.semantic_type}" if self.semantic_type.name != ANY.name else ""
        )
        marker = "?" if self.state == CellState.SUGGESTED else ""
        return f"{self.name}{type_part}{marker}"


class WorkspaceTable:
    """One tab: a grid of cells under typed, labeled columns."""

    def __init__(self, name: str):
        self.name = name
        self.columns: list[Column] = []
        self._grid: list[list[Cell]] = []

    # -- shape ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self._grid)

    @property
    def n_cols(self) -> int:
        return len(self.columns)

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.n_cols:
            raise WorkspaceError(f"{self.name}: no column {col}")

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise WorkspaceError(f"{self.name}: no row {row}")

    # -- columns --------------------------------------------------------------------
    def ensure_columns(self, count: int) -> None:
        while self.n_cols < count:
            index = self.n_cols
            self.columns.append(Column(name=f"Column{index + 1}"))
            for row in self._grid:
                row.append(Cell(None))

    def set_column_label(self, col: int, name: str) -> None:
        self._check_col(col)
        self.columns[col].name = name
        self.columns[col].state = CellState.USER

    def set_column_type(
        self,
        col: int,
        semantic_type: SemanticType,
        alternatives: Iterable[SemanticType] = (),
        suggested: bool = False,
    ) -> None:
        self._check_col(col)
        column = self.columns[col]
        column.semantic_type = semantic_type
        column.alternatives = tuple(alternatives)
        column.state = CellState.SUGGESTED if suggested else CellState.USER

    def column_values(self, col: int, committed_only: bool = False) -> list[Any]:
        self._check_col(col)
        return [
            row[col].value
            for row in self._grid
            if not committed_only or row[col].state.is_committed
        ]

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise WorkspaceError(f"{self.name}: no column named {name!r}")

    # -- rows ---------------------------------------------------------------------
    def append_row(
        self,
        values: Sequence[Any],
        state: CellState = CellState.USER,
        provenance: Provenance | None = None,
    ) -> int:
        self.ensure_columns(len(values))
        row = [Cell(value, state, provenance) for value in values]
        while len(row) < self.n_cols:
            row.append(Cell(None, state))
        self._grid.append(row)
        return self.n_rows - 1

    def append_rows(
        self, rows: Iterable[Sequence[Any]], state: CellState = CellState.USER
    ) -> list[int]:
        return [self.append_row(row, state) for row in rows]

    def row_values(self, row: int) -> list[Any]:
        self._check_row(row)
        return [cell.value for cell in self._grid[row]]

    def row_state(self, row: int) -> CellState:
        """A row's overall state: SUGGESTED if any cell still is."""
        self._check_row(row)
        states = {cell.state for cell in self._grid[row]}
        if CellState.SUGGESTED in states:
            return CellState.SUGGESTED
        if states == {CellState.ACCEPTED}:
            return CellState.ACCEPTED
        return CellState.USER

    def cell(self, row: int, col: int) -> Cell:
        self._check_row(row)
        self._check_col(col)
        return self._grid[row][col]

    def set_cell(self, row: int, col: int, value: Any, state: CellState = CellState.USER) -> None:
        cell = self.cell(row, col)
        cell.value = value
        cell.state = state

    def suggested_row_indices(self) -> list[int]:
        return [i for i in range(self.n_rows) if self.row_state(i) == CellState.SUGGESTED]

    def committed_rows(self) -> list[list[Any]]:
        return [
            self.row_values(i)
            for i in range(self.n_rows)
            if self.row_state(i).is_committed
        ]

    # -- suggestion lifecycle -----------------------------------------------------------
    def accept_rows(self, indices: Iterable[int] | None = None) -> int:
        """Accept suggested rows (all of them by default); returns count."""
        targets = list(indices) if indices is not None else self.suggested_row_indices()
        accepted = 0
        for index in targets:
            self._check_row(index)
            changed = False
            for cell in self._grid[index]:
                if cell.state == CellState.SUGGESTED:
                    cell.state = CellState.ACCEPTED
                    changed = True
            accepted += 1 if changed else 0
        return accepted

    def reject_rows(self, indices: Iterable[int] | None = None) -> int:
        """Remove suggested rows (all of them by default); returns count."""
        targets = sorted(
            indices if indices is not None else self.suggested_row_indices(),
            reverse=True,
        )
        removed = 0
        for index in targets:
            self._check_row(index)
            if self.row_state(index) != CellState.SUGGESTED:
                raise WorkspaceError(
                    f"{self.name}: row {index} is not a suggestion; cannot reject"
                )
            del self._grid[index]
            removed += 1
        return removed

    def add_suggested_column(
        self,
        name: str,
        values: Sequence[Any],
        semantic_type: SemanticType = ANY,
        provenances: Sequence[Provenance | None] | None = None,
    ) -> int:
        """Append a suggested column; values align with current rows."""
        if len(values) != self.n_rows:
            raise WorkspaceError(
                f"{self.name}: column of {len(values)} values for {self.n_rows} rows"
            )
        provenances = provenances or [None] * len(values)
        self.columns.append(
            Column(name=name, semantic_type=semantic_type, state=CellState.SUGGESTED)
        )
        for row, value, prov in zip(self._grid, values, provenances):
            row.append(Cell(value, CellState.SUGGESTED, prov))
        return self.n_cols - 1

    def accept_column(self, col: int) -> None:
        self._check_col(col)
        if self.columns[col].state != CellState.SUGGESTED:
            raise WorkspaceError(f"{self.name}: column {col} is not a suggestion")
        self.columns[col].state = CellState.ACCEPTED
        for row in self._grid:
            if row[col].state == CellState.SUGGESTED:
                row[col].state = CellState.ACCEPTED

    def reject_column(self, col: int) -> None:
        self._check_col(col)
        if self.columns[col].state != CellState.SUGGESTED:
            raise WorkspaceError(f"{self.name}: column {col} is not a suggestion")
        del self.columns[col]
        for row in self._grid:
            del row[col]

    # -- conversions --------------------------------------------------------------
    def as_dicts(self, committed_only: bool = True) -> list[dict[str, Any]]:
        out = []
        for i in range(self.n_rows):
            if committed_only and not self.row_state(i).is_committed:
                continue
            out.append(
                {column.name: cell.value for column, cell in zip(self.columns, self._grid[i])}
            )
        return out

    # -- rendering -----------------------------------------------------------------
    def render_text(self) -> str:
        """Deterministic ASCII rendering; suggestions are marked with ``*``."""
        headers = [column.header() for column in self.columns]
        body: list[list[str]] = []
        for i in range(self.n_rows):
            rendered = []
            for cell in self._grid[i]:
                mark = "*" if cell.state == CellState.SUGGESTED else ""
                rendered.append(f"{cell}{mark}")
            body.append(rendered)
        widths = [
            max([len(headers[c])] + [len(row[c]) for row in body]) if body else len(headers[c])
            for c in range(self.n_cols)
        ]
        def fmt(cells: list[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
        lines = [f"== {self.name} ==", fmt(headers), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in body)
        return "\n".join(lines)


class Workspace:
    """The whole workspace: tabbed tables plus the interaction mode."""

    MAX_UNDO = 50

    def __init__(self) -> None:
        self.mode: Mode = Mode.IMPORT
        self._tabs: dict[str, WorkspaceTable] = {}
        self._order: list[str] = []
        self.current_tab: str | None = None
        self._undo_stack: list[tuple[Mode, dict[str, WorkspaceTable], list[str], str | None]] = []

    def new_tab(self, name: str, switch: bool = True) -> WorkspaceTable:
        if name in self._tabs:
            raise WorkspaceError(f"tab {name!r} already exists")
        table = WorkspaceTable(name)
        self._tabs[name] = table
        self._order.append(name)
        if switch or self.current_tab is None:
            self.current_tab = name
        return table

    def tab(self, name: str) -> WorkspaceTable:
        try:
            return self._tabs[name]
        except KeyError:
            raise WorkspaceError(f"no tab named {name!r}") from None

    def has_tab(self, name: str) -> bool:
        return name in self._tabs

    @property
    def current(self) -> WorkspaceTable:
        if self.current_tab is None:
            raise WorkspaceError("workspace has no tabs yet")
        return self._tabs[self.current_tab]

    def switch_to(self, name: str) -> WorkspaceTable:
        if name not in self._tabs:
            raise WorkspaceError(f"no tab named {name!r}")
        self.current_tab = name
        return self._tabs[name]

    def tab_names(self) -> list[str]:
        return list(self._order)

    # -- undo (paper §5 "Advanced interactions": let users undo portions of
    # what they have demonstrated) ------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the workspace state; :meth:`undo` restores the latest."""
        snapshot = (
            self.mode,
            copy.deepcopy(self._tabs),
            list(self._order),
            self.current_tab,
        )
        self._undo_stack.append(snapshot)
        if len(self._undo_stack) > self.MAX_UNDO:
            del self._undo_stack[0]

    @property
    def can_undo(self) -> bool:
        return bool(self._undo_stack)

    def undo(self) -> bool:
        """Restore the most recent checkpoint; False when there is none."""
        if not self._undo_stack:
            return False
        self.mode, self._tabs, self._order, self.current_tab = self._undo_stack.pop()
        return True

    def enter_integration_mode(self) -> None:
        """Section 2.1: "The user can switch the SCP system into integration
        mode by clicking on a button, or by pasting data from a different
        source into a contiguous row or column"."""
        self.mode = Mode.INTEGRATION

    def render_text(self) -> str:
        parts = [f"[mode: {self.mode.value}]"]
        parts.extend(self._tabs[name].render_text() for name in self._order)
        return "\n\n".join(parts)
