"""Suggestion objects flowing from the learners to the workspace.

The auto-complete generator (Figure 3) produces three kinds of suggestion:
row auto-completions (structure learner generalizations), column type
hypotheses (model learner), and column auto-completions (integration
learner queries, executed). Each carries enough context for the workspace
to display it and for feedback to be routed back to its learner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..learning.integration.learner import ColumnCompletion
from ..learning.integration.queries import IntegrationQuery
from ..learning.model.type_learner import TypeHypothesis
from ..learning.structure.learner import GeneralizationResult
from ..provenance.expressions import Provenance
from ..substrate.relational.schema import SemanticType


@dataclass
class RowSuggestion:
    """New rows proposed by generalizing the user's pastes."""

    source_name: str
    rows: list[list[str]]
    generalization: GeneralizationResult

    @property
    def mechanism(self) -> str:
        """Human-readable description of how the rows were derived."""
        return self.generalization.best.describe()

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class TypeSuggestion:
    """Ranked semantic-type hypotheses for one column."""

    column_index: int
    hypotheses: list[TypeHypothesis]

    @property
    def best(self) -> TypeHypothesis | None:
        """The top-ranked type hypothesis, or None when none cleared the bar."""
        return self.hypotheses[0] if self.hypotheses else None

    def alternatives(self) -> list[SemanticType]:
        """Runner-up types for the header dropdown."""
        return [hypothesis.semantic_type for hypothesis in self.hypotheses[1:]]


@dataclass
class ColumnSuggestion:
    """An executed column auto-completion, aligned to the workspace rows.

    ``values[i]`` / ``provenances[i]`` align with committed workspace row i;
    a None value means the query produced no answer for that row.
    ``alternatives[i]`` counts extra candidate values (the ambiguity the
    paper surfaces so "the integrator [can] select the appropriate
    location").

    ``degraded`` names services that failed while executing the query
    (graceful degradation): the suggestion is still shown, but its score
    carries a rank penalty and its explanation flags the failure.
    """

    completion: ColumnCompletion
    attribute_names: tuple[str, ...]
    semantic_types: tuple[SemanticType, ...]
    values: list[tuple[Any, ...]]
    provenances: list[Provenance | None]
    alternatives: list[list[tuple[Any, ...]]]
    coverage: float
    score: float
    degraded: tuple[str, ...] = ()

    @property
    def query(self) -> IntegrationQuery:
        """The extended integration query this suggestion executes."""
        return self.completion.query

    @property
    def source(self) -> str:
        """The source/service contributing the new columns."""
        return self.completion.added_source

    @property
    def is_degraded(self) -> bool:
        return bool(self.degraded)

    def describe(self) -> str:
        attrs = ", ".join(self.attribute_names)
        line = (
            f"[cost={self.score:.2f}, coverage={self.coverage:.0%}] "
            f"{attrs} from {self.source} via {self.completion.edge.kind}"
        )
        if self.degraded:
            line += f" DEGRADED({', '.join(self.degraded)})"
        return line


@dataclass
class QuerySuggestion:
    """A ranked Steiner-mode query explaining user-pasted tuples."""

    query: IntegrationQuery
    cost: float

    def describe(self) -> str:
        return self.query.describe()
