"""AST-based repo invariant linter (REPRO001–REPRO005).

Run as ``python -m repro.analysis.lint src/`` (CI's ``lint-invariants``
job), or programmatically::

    from repro.analysis.lint import Linter
    diagnostics = Linter().run(["src"])

See :mod:`~repro.analysis.lint.rules` for the rule catalog and
:mod:`~repro.analysis.lint.engine` for the suppression syntax.
"""

from __future__ import annotations

from .engine import Linter, SourceFile, main, parse_source

__all__ = ["Linter", "SourceFile", "main", "parse_source"]
