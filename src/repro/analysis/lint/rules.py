"""The repo invariant rules (REPRO001–REPRO006).

Each rule exists because an invariant was only ever enforced by
convention across the obs/cache/resilience/drift layers:

- **REPRO001** — environment variables are read only in ``config.py``
  modules, once at import. A stray ``os.environ`` read anywhere else
  makes behavior depend on *when* a module was imported and escapes the
  ``disabled()``/``overridden()`` override machinery.
- **REPRO002** — every metric name passed to ``METRICS.inc`` / ``gauge``
  / ``observe`` / ``timer`` must match a pattern declared in
  :mod:`repro.obs.registry`, so counters cannot silently diverge from
  the names dashboards and ``--trace`` summaries read back.
- **REPRO003** — no bare ``except:`` / ``except Exception`` whose body
  neither re-raises nor records the failure (log or metric). Swallowed
  exceptions were how stale-wrapper rows used to slip through.
- **REPRO004** — every ``Plan`` subclass must be registered with both
  the cache fingerprint table (``_register`` in ``fingerprint.py``) and
  the analyzer dispatch (``_checks`` in ``plan_analyzer.py``).
- **REPRO005** — no unseeded randomness or wall-clock reads in
  deterministic paths: module-level ``random.*`` calls, argless
  ``random.Random()``, ``time.time()``, and ``datetime.now()`` must go
  through :mod:`repro.util.rng` (or be suppressed with justification).
- **REPRO006** — every ``@recorded`` method on ``CopyCatSession`` must
  have a registered encoder/applier pair in
  :mod:`repro.durability.actions` (reflective, mirrors the fingerprint
  completeness self-check): a decorated method without a codec logs
  actions that crash write-ahead replay.

Every diagnostic carries ``file:line``; see :mod:`~repro.analysis.lint.
engine` for the suppression syntax.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ...obs.registry import declared_samples, is_declared
from ..diagnostics import ERROR, Diagnostic
from .engine import SourceFile

#: files in which REPRO001 allows environment reads.
_ENV_ALLOWED_FILES = {"config.py"}
#: files in which REPRO005 allows raw randomness / clock reads.
_RNG_ALLOWED_FILES = {"rng.py"}

_METRIC_MUTATORS = {"inc", "gauge", "observe", "timer"}
_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "seed", "getrandbits",
}
_CLOCK_FNS = {"time", "time_ns"}
_DATETIME_FNS = {"now", "utcnow", "today"}


# -- REPRO001: env reads live in config modules -------------------------------
def rule_env_reads(sf: SourceFile) -> Iterable[Diagnostic]:
    if sf.name in _ENV_ALLOWED_FILES:
        return
    os_env_names: set[str] = set()
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    os_env_names.add(alias.asname or alias.name)
    for node in ast.walk(sf.tree):
        hit = None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "os" and node.attr in ("environ", "getenv"):
                hit = f"os.{node.attr}"
        elif isinstance(node, ast.Name) and node.id in os_env_names:
            if isinstance(node.ctx, ast.Load):
                hit = node.id
        if hit:
            yield Diagnostic(
                "REPRO001", ERROR,
                f"{hit} read outside a config module; route it through the "
                f"layer's config.py so disabled()/overridden() can see it",
                path=sf.location(node.lineno),
            )


# -- REPRO002: metric names must be declared ----------------------------------
def _metric_name_parts(node: ast.expr) -> list[str | None]:
    """Literal fragments of a metric-name expression; ``None`` marks a hole."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        parts: list[str | None] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(None)
        return parts
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _metric_name_parts(node.left) + _metric_name_parts(node.right)
    return [None]


def rule_metric_names(sf: SourceFile) -> Iterable[Diagnostic]:
    samples = None  # computed lazily, once per file that needs it
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _METRIC_MUTATORS or not node.args:
            continue
        receiver = ast.unparse(node.func.value)
        if not receiver.endswith("METRICS"):
            continue
        parts = _metric_name_parts(node.args[0])
        literals = [p for p in parts if p is not None]
        if not literals:
            continue  # fully dynamic: nothing checkable statically
        if len(parts) == 1:
            name = parts[0]
            if not is_declared(name):
                yield Diagnostic(
                    "REPRO002", ERROR,
                    f"metric {name!r} is not declared in repro.obs.registry",
                    path=sf.location(node.lineno),
                )
            continue
        shape = "".join(re.escape(p) if p is not None else ".+" for p in parts)
        if samples is None:
            samples = declared_samples()
        pattern = re.compile(shape)
        if not any(pattern.fullmatch(sample) for sample in samples):
            rendered = "".join(p if p is not None else "<…>" for p in parts)
            yield Diagnostic(
                "REPRO002", ERROR,
                f"dynamically-built metric name {rendered!r} matches no "
                f"pattern declared in repro.obs.registry",
                path=sf.location(node.lineno),
            )


# -- REPRO003: no silent overbroad excepts ------------------------------------
def _is_overbroad(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names: list[ast.expr] = list(kind.elts) if isinstance(kind, ast.Tuple) else [kind]
    return any(
        isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
        for name in names
    )


def _body_records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            rendered = ast.unparse(node.func)
            if "METRICS" in rendered or "log" in rendered.lower() or "warn" in rendered.lower():
                return True
    return False


def rule_overbroad_except(sf: SourceFile) -> Iterable[Diagnostic]:
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_overbroad(node) and not _body_records_failure(node):
            caught = ast.unparse(node.type) if node.type is not None else "everything"
            yield Diagnostic(
                "REPRO003", ERROR,
                f"overbroad except ({caught}) neither re-raises nor records "
                f"the failure; narrow it, or log/count before swallowing",
                path=sf.location(node.lineno),
            )


# -- REPRO004: every Plan subclass is dispatch-registered ---------------------
def _registration_calls(sf: SourceFile, fn_name: str) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == fn_name
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            out.add(node.args[0].id)
    return out


def rule_plan_dispatch(files: list[SourceFile]) -> Iterable[Diagnostic]:
    fingerprint_files = [sf for sf in files if sf.name == "fingerprint.py"]
    analyzer_files = [sf for sf in files if sf.name == "plan_analyzer.py"]
    if not fingerprint_files and not analyzer_files:
        return  # registries are outside the lint set: nothing to compare
    classes: dict[str, tuple[SourceFile, int, list[str]]] = {}
    for sf in files:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                bases = [
                    base.id if isinstance(base, ast.Name) else base.attr
                    for base in node.bases
                    if isinstance(base, (ast.Name, ast.Attribute))
                ]
                classes[node.name] = (sf, node.lineno, bases)
    # transitive closure of "is a Plan subclass" over base names.
    plan_like = {"Plan"}
    grew = True
    while grew:
        grew = False
        for name, (_, _, bases) in classes.items():
            if name not in plan_like and any(base in plan_like for base in bases):
                plan_like.add(name)
                grew = True
    plan_like.discard("Plan")
    fingerprinted: set[str] = set()
    for sf in fingerprint_files:
        fingerprinted |= _registration_calls(sf, "_register")
    checked: set[str] = set()
    for sf in analyzer_files:
        checked |= _registration_calls(sf, "_checks")
    for name in sorted(plan_like):
        sf, lineno, _ = classes[name]
        if fingerprint_files and name not in fingerprinted:
            yield Diagnostic(
                "REPRO004", ERROR,
                f"Plan subclass {name!r} has no _register(...) entry in "
                f"repro/cache/fingerprint.py; its results would never cache "
                f"(and could alias if added via isinstance)",
                path=sf.location(lineno),
            )
        if analyzer_files and name not in checked:
            yield Diagnostic(
                "REPRO004", ERROR,
                f"Plan subclass {name!r} has no _checks(...) entry in "
                f"repro/analysis/plan_analyzer.py; the static analyzer "
                f"would reject every plan containing it",
                path=sf.location(lineno),
            )


# -- REPRO005: determinism (seeded rng, no wall clock) ------------------------
def rule_determinism(sf: SourceFile) -> Iterable[Diagnostic]:
    if sf.name in _RNG_ALLOWED_FILES:
        return
    for node in ast.walk(sf.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        if not isinstance(func.value, ast.Name):
            continue
        module, attr = func.value.id, func.attr
        message = None
        if module == "random" and attr in _RANDOM_FNS:
            message = (
                f"module-level random.{attr}() is unseeded; derive a "
                f"Random from repro.util.rng instead"
            )
        elif module == "random" and attr == "Random" and not node.args and not node.keywords:
            message = (
                "random.Random() without a seed is nondeterministic; use "
                "repro.util.rng.make_rng/derive_rng"
            )
        elif module == "time" and attr in _CLOCK_FNS:
            message = (
                f"time.{attr}() reads the wall clock in a deterministic "
                f"path; inject the timestamp or use a monotonic timer"
            )
        elif module in ("datetime", "date") and attr in _DATETIME_FNS:
            message = (
                f"{module}.{attr}() reads the wall clock; pass the date in "
                f"explicitly so runs reproduce"
            )
        if message:
            yield Diagnostic(
                "REPRO005", ERROR, message, path=sf.location(node.lineno)
            )


# -- REPRO006: every @recorded session method has a durability codec ----------
def _recorded_methods(cls: ast.ClassDef) -> Iterable[tuple[str, int]]:
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for dec in item.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "recorded":
                yield item.name, item.lineno
                break


def rule_recorded_codecs(files: list[SourceFile]) -> Iterable[Diagnostic]:
    """Reflective check: ``@recorded`` methods vs the action codec table."""
    targets = [
        (sf, node)
        for sf in files
        if sf.name == "session.py"
        for node in sf.tree.body
        if isinstance(node, ast.ClassDef) and node.name == "CopyCatSession"
    ]
    if not targets:
        return
    try:
        from ...durability.actions import UNRECORDED, recordable_actions
    except ImportError:
        return  # durability layer absent from this checkout: nothing to compare
    registered = set(recordable_actions())
    unrecorded = set(UNRECORDED)
    for sf, cls in targets:
        for name, lineno in _recorded_methods(cls):
            if name in unrecorded:
                yield Diagnostic(
                    "REPRO006", ERROR,
                    f"@recorded method {name!r} is listed in durability."
                    f"actions.UNRECORDED; drop the decorator or the listing",
                    path=sf.location(lineno),
                )
            elif name not in registered:
                yield Diagnostic(
                    "REPRO006", ERROR,
                    f"@recorded method {name!r} has no encoder/applier pair in "
                    f"repro/durability/actions.py; a durable session would "
                    f"crash write-ahead logging this action",
                    path=sf.location(lineno),
                )


FILE_RULES = (
    rule_env_reads,
    rule_metric_names,
    rule_overbroad_except,
    rule_determinism,
)
PROJECT_RULES = (rule_plan_dispatch, rule_recorded_codecs)
