"""The lint driver: file collection, suppression, reporting.

Rules are plain functions (see :mod:`repro.analysis.lint.rules`):

- *file rules* take one parsed :class:`SourceFile` and yield
  :class:`~repro.analysis.diagnostics.Diagnostic` records;
- *project rules* take the full file list (cross-file invariants such as
  REPRO004's dispatch-completeness check).

Suppression syntax: a trailing comment on the offending line —

- ``# lint: allow`` silences every rule on that line;
- ``# lint: allow=REPRO003`` (comma-separated for several codes)
  silences only the named rules. Anything after the codes is free-form
  justification text.

A named suppression that silences nothing is itself reported (LINT001,
warning): stale allows outlive refactors and quietly blanket-exempt the
line from rules that never fired there. Only codes matching the linter's
``stale_prefixes`` are policed, so a ``CONC``-family run does not flag
``REPRO`` allows it never evaluates (and vice versa); a bare allow (no
``=CODE`` list) is exempt by design — it declares intent to silence
everything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from ..diagnostics import Diagnostic

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*allow(?:=\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?"
)

#: sentinel for "every code suppressed on this line".
ALL_CODES = None


@dataclass
class SourceFile:
    """One parsed python file plus its per-line suppressions."""

    path: Path
    text: str
    tree: ast.Module
    #: line number -> set of suppressed codes, or :data:`ALL_CODES` for all.
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.name

    def location(self, lineno: int) -> str:
        return f"{self.path}:{lineno}"

    def is_suppressed(self, code: str, lineno: int) -> bool:
        if lineno not in self.suppressions:
            return False
        codes = self.suppressions[lineno]
        return codes is ALL_CODES or code in codes


def _scan_suppressions(text: str) -> dict[int, set[str] | None]:
    """Per-line suppressions, read from *comments only*.

    Tokenizing (rather than regexing raw lines) keeps docstrings that
    *mention* the syntax — this module's own, the README examples — from
    registering as live suppressions on their line.
    """
    out: dict[int, set[str] | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # unparseable files already fail hard in parse_source
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if not match:
            continue
        codes = match.group("codes")
        lineno = token.start[0]
        if codes is None:
            out[lineno] = ALL_CODES
        else:
            out[lineno] = {code.strip() for code in codes.split(",")}
    return out


def parse_source(path: Path, text: str | None = None) -> SourceFile:
    """Parse *path* (raises ``SyntaxError`` for unparseable files)."""
    if text is None:
        text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(path=path, text=text, tree=tree,
                      suppressions=_scan_suppressions(text))


FileRule = Callable[[SourceFile], Iterable[Diagnostic]]
ProjectRule = Callable[[list[SourceFile]], Iterable[Diagnostic]]


class Linter:
    """Runs every registered rule over a set of paths."""

    def __init__(
        self,
        file_rules: tuple[FileRule, ...] | None = None,
        project_rules: tuple[ProjectRule, ...] | None = None,
        stale_prefixes: tuple[str, ...] = ("REPRO", "LINT"),
    ):
        if file_rules is None or project_rules is None:
            from .rules import FILE_RULES, PROJECT_RULES

        self.file_rules = FILE_RULES if file_rules is None else file_rules
        self.project_rules = PROJECT_RULES if project_rules is None else project_rules
        self.stale_prefixes = stale_prefixes

    @staticmethod
    def collect(paths: Iterable[str | Path]) -> list[Path]:
        """Every ``.py`` file under *paths* (files taken as-is), sorted."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.update(path.rglob("*.py"))
            else:
                files.add(path)
        return sorted(files)

    def run(self, paths: Iterable[str | Path]) -> list[Diagnostic]:
        """Lint *paths*; returns the post-suppression diagnostics, sorted."""
        sources: list[SourceFile] = []
        diagnostics: list[Diagnostic] = []
        for path in self.collect(paths):
            try:
                sources.append(parse_source(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                diagnostics.append(Diagnostic(
                    "REPRO000", "error",
                    f"could not parse file: {exc}",
                    path=str(path),
                ))
        by_path = {str(sf.path): sf for sf in sources}
        found: list[Diagnostic] = []
        for sf in sources:
            for rule in self.file_rules:
                found.extend(rule(sf))
        for rule in self.project_rules:
            found.extend(rule(sources))
        consumed: dict[tuple[str, int], set[str]] = {}
        for diag in found:
            sf, lineno = self._locate(diag, by_path)
            if sf is not None and lineno is not None and sf.is_suppressed(diag.code, lineno):
                consumed.setdefault((str(sf.path), lineno), set()).add(diag.code)
                continue
            diagnostics.append(diag)
        diagnostics.extend(self._stale_suppressions(sources, consumed))
        diagnostics.sort(key=lambda d: (d.path or "", d.code, d.message))
        return diagnostics

    def _stale_suppressions(
        self,
        sources: list[SourceFile],
        consumed: dict[tuple[str, int], set[str]],
    ) -> list[Diagnostic]:
        """LINT001 for every named allow that silenced no diagnostic."""
        stale: list[Diagnostic] = []
        for sf in sources:
            for lineno, codes in sorted(sf.suppressions.items()):
                if codes is ALL_CODES:
                    continue
                used = consumed.get((str(sf.path), lineno), set())
                for code in sorted(codes - used):
                    if not code.startswith(self.stale_prefixes):
                        continue
                    stale.append(Diagnostic(
                        "LINT001", "warning",
                        f"stale suppression: '# lint: allow={code}' silences "
                        "nothing on this line — remove it or fix the code it "
                        "was justifying",
                        path=sf.location(lineno),
                    ))
        return stale

    @staticmethod
    def _locate(diag: Diagnostic, by_path: dict[str, SourceFile]):
        if not diag.path or ":" not in diag.path:
            return None, None
        path, _, lineno = diag.path.rpartition(":")
        if not lineno.isdigit():
            return None, None
        return by_path.get(path), int(lineno)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: lint the given paths (default ``src``)."""
    args = list(argv) if argv is not None else []
    paths = [a for a in args if not a.startswith("-")] or ["src"]
    diagnostics = Linter().run(paths)
    for diagnostic in diagnostics:
        print(diagnostic.render())
    n_files = len(Linter.collect(paths))
    if diagnostics:
        print(f"lint: {len(diagnostics)} finding(s) in {n_files} file(s)")
        return 1
    print(f"lint: clean ({n_files} file(s))")
    return 0
