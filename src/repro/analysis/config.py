"""Analysis-layer configuration: one process-wide switch set, env-overridable.

Mirrors :mod:`repro.cache.config` / :mod:`repro.resilience.config` /
:mod:`repro.drift.config`: a singleton (:data:`ANALYSIS`) of plain
attributes that hot call sites read directly, with programmatic overrides
for tests (:meth:`AnalysisConfig.disabled`, :meth:`AnalysisConfig.
overridden`) and environment variables read once at import:

- ``REPRO_ANALYSIS=0`` disables the static plan analyzer entirely (plans
  reach the evaluator unchecked, exactly as before this layer existed);
- ``REPRO_ANALYSIS_GATE_CACHE=0`` keeps the analyzer but stops it from
  gating plan-cache admission on fingerprint field coverage;
- ``REPRO_ANALYSIS_MAX_LINK_PAIRS`` is the estimated cross-product size
  above which an unblocked record-link join draws a blowup warning;
- ``REPRO_ANALYSIS_MAX_UNION_PARTS`` is the union width above which an
  unbounded-``Union`` warning fires;
- ``REPRO_ANALYSIS_MEMO_CAPACITY`` bounds the per-engine memo of analysis
  reports (keyed on ``(plan fingerprint, catalog version)``, so a
  suggestion refresh re-checks each candidate plan only once).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


class AnalysisConfig:
    """Mutable knobs for the static plan analyzer."""

    def __init__(self) -> None:
        #: master switch; off reproduces the pre-analysis behavior
        #: bit-for-bit (no pre-execution checks, no admission gating).
        self.enabled = _env_flag("REPRO_ANALYSIS", True)
        #: refuse plan-cache admission for nodes whose fingerprint does not
        #: cover every dataclass field (two distinct plans could alias).
        self.gate_cache = _env_flag("REPRO_ANALYSIS_GATE_CACHE", True)
        #: estimated left×right pair count above which an unblocked
        #: record-link join is flagged as a potential cartesian blowup.
        self.max_link_pairs = _env_int("REPRO_ANALYSIS_MAX_LINK_PAIRS", 250_000)
        #: union width above which the unbounded-Union warning fires.
        self.max_union_parts = _env_int("REPRO_ANALYSIS_MAX_UNION_PARTS", 16)
        #: capacity of the per-engine analysis-report memo.
        self.memo_capacity = _env_int("REPRO_ANALYSIS_MEMO_CAPACITY", 1024)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = (
        "enabled", "gate_cache", "max_link_pairs", "max_union_parts",
        "memo_capacity",
    )

    @contextmanager
    def disabled(self):
        """Temporarily turn the static analyzer off."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown analysis knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"AnalysisConfig({state}, gate_cache={self.gate_cache}, "
            f"max_link_pairs={self.max_link_pairs}, "
            f"max_union_parts={self.max_union_parts})"
        )


#: The process-wide analysis configuration every layer consults.
ANALYSIS = AnalysisConfig()
