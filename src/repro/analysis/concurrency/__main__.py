"""``python -m repro.analysis.concurrency [paths...]``."""

import sys

from .rules import main

raise SystemExit(main(sys.argv[1:]))
