"""Runtime lockset / race harness (Part 2 of the concurrency pass).

The static model (:mod:`~repro.analysis.concurrency.model`) predicts which
locks exist and in which order code paths *may* nest them. This module
observes what actually happens: with ``REPRO_RACECHECK=1`` every lock
built through :func:`make_lock` / :func:`make_rlock` becomes a tracked
wrapper feeding one process-wide :class:`LockTracker`, which records

- **acquisition order** — whenever a thread acquires lock *B* while
  holding lock *A*, the edge ``A -> B`` is counted. CI asserts the
  observed edge set is acyclic and never *inverts* the static model's
  order (merging observed edges into the static graph must not create a
  cycle). Observed edges the static analyzer missed (dynamic dispatch it
  cannot resolve) are fine — the property checked is consistency of the
  partial order, not equality of the graphs;
- **locksets** — instrumented shared fields call :meth:`LockTracker.
  note_access`; the tracker runs the Eraser state machine (virgin ->
  exclusive -> shared -> shared-modified, intersecting the candidate
  lockset on every post-publication access) and records a violation when
  a field reaches shared-modified with an empty lockset.

Import shape: this module is imported by the *leaf* lock-owning modules
(``obs/metrics.py``, ``cache/lru.py``, ``util/text.py``), so it must pull
in nothing beyond :mod:`threading` and its own config —
``repro.analysis.__init__`` resolves its heavy members lazily precisely
so this chain stays flat.

Determinism caveat: tracking by lock *name* (``"LRUCache._lock"``), not
instance, deliberately folds every instance of a class onto one graph
node — that is what makes the order model class-level, matching the
static analyzer. Self-edges (holding one instance's lock while taking a
sibling instance's same-named lock) are therefore skipped at runtime;
true self-deadlocks are the static analyzer's CONC001 job.
"""

from __future__ import annotations

import threading

from .config import RACECHECK

__all__ = [
    "RACECHECK",
    "TRACKER",
    "LockTracker",
    "TrackedLock",
    "TrackedRLock",
    "conc_stats_line",
    "find_cycle",
    "make_lock",
    "make_rlock",
]


class _FieldState:
    """Eraser per-field record: state machine position + candidate lockset."""

    __slots__ = ("state", "owner", "lockset", "written", "reported")

    def __init__(self, owner: int, lockset: frozenset, written: bool):
        self.state = "exclusive"
        self.owner = owner
        self.lockset = lockset
        self.written = written
        self.reported = False


class _Held(threading.local):
    """Per-thread stack of tracked-lock names currently held."""

    def __init__(self):
        self.stack: list[str] = []


def find_cycle(edges) -> list[str] | None:
    """One cycle in the digraph *edges* (iterable of ``(a, b)``), or None.

    Returns the cycle as a node path ``[n0, n1, ..., n0]``. Iterative
    three-color DFS, so a deep graph cannot blow the recursion limit.
    """
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    color = {node: 0 for node in graph}  # 0 white, 1 on stack, 2 done
    for root in sorted(graph):
        if color[root] != 0:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        path: list[str] = []
        while stack:
            node, idx = stack[-1]
            if idx == 0:
                color[node] = 1
                path.append(node)
            succs = graph[node]
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                if color[nxt] == 1:
                    return path[path.index(nxt):] + [nxt]
                if color[nxt] == 0:
                    stack.append((nxt, 0))
            else:
                color[node] = 2
                path.pop()
                stack.pop()
    return None


class LockTracker:
    """Records lock-acquisition order and Eraser-style locksets."""

    def __init__(self):
        self._mutex = threading.Lock()  # guards the aggregates below
        self._held = _Held()
        #: (held, acquired) -> times observed.
        self.edges: dict[tuple[str, str], int] = {}
        #: lock name -> acquisition count.
        self.acquisitions: dict[str, int] = {}
        #: Eraser state per (field name, owner id).
        self._fields: dict[tuple[str, int], _FieldState] = {}
        #: human-readable lockset-violation records (one per field).
        self.violations: list[str] = []

    # -- lock events ---------------------------------------------------------
    def note_acquire(self, name: str) -> None:
        stack = self._held.stack
        if stack:
            with self._mutex:
                for held in stack:
                    if held != name:  # name-level self-edges: see module doc
                        edge = (held, name)
                        self.edges[edge] = self.edges.get(edge, 0) + 1
                self.acquisitions[name] = self.acquisitions.get(name, 0) + 1
        else:
            with self._mutex:
                self.acquisitions[name] = self.acquisitions.get(name, 0) + 1
        stack.append(name)

    def note_release(self, name: str) -> None:
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def held(self) -> tuple[str, ...]:
        return tuple(self._held.stack)

    # -- Eraser lockset tracking ----------------------------------------------
    def note_access(self, name: str, owner=None, write: bool = True) -> None:
        """Record one access to shared field *name* of instance *owner*.

        States follow Eraser's refinement: a field stays ``exclusive``
        while a single thread touches it (its lockset tracks the *latest*
        access, so unlocked initialization before publication never
        trips); the first access from a second thread moves it to
        ``shared`` (reads) or ``shared-modified`` (any write before or
        now), after which every access intersects the candidate lockset
        with the locks currently held. An empty lockset in
        shared-modified is a violation, reported once per field.
        """
        tid = threading.get_ident()
        locks = frozenset(self._held.stack)
        key = (name, id(owner) if owner is not None else 0)
        with self._mutex:
            st = self._fields.get(key)
            if st is None:
                self._fields[key] = _FieldState(tid, locks, write)
                return
            if st.state == "exclusive":
                if tid == st.owner:
                    st.lockset = locks
                    st.written = st.written or write
                    return
                st.state = "shared_modified" if (st.written or write) else "shared"
                st.lockset = st.lockset & locks
            else:
                st.lockset = st.lockset & locks
                if write and st.state == "shared":
                    st.state = "shared_modified"
            st.written = st.written or write
            if st.state == "shared_modified" and not st.lockset and not st.reported:
                st.reported = True
                self.violations.append(
                    f"{name}: written by multiple threads with no consistent lock "
                    f"(lockset empty at access under {sorted(locks) or 'no locks'})"
                )

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "locks": len(self.acquisitions),
                "acquisitions": sum(self.acquisitions.values()),
                "edges": len(self.edges),
                "fields": len(self._fields),
                "violations": len(self.violations),
            }

    def order_graph(self) -> dict[tuple[str, str], int]:
        with self._mutex:
            return dict(self.edges)

    def check_against(self, static_edges, static_locks=()) -> list[str]:
        """Problems in the observed order vs the static model (empty = ok).

        Checks, over the observed edges whose endpoints the static model
        knows about: (1) the observed acquisition order alone is acyclic;
        (2) merging it into the static order graph creates no cycle — an
        observed edge whose reverse is statically reachable is an order
        inversion. Locks the model has never heard of (test scaffolding)
        are ignored, and lockset violations are reported separately via
        :attr:`violations`.
        """
        static_edges = {tuple(edge) for edge in static_edges}
        known = set(static_locks)
        for a, b in static_edges:
            known.add(a)
            known.add(b)
        observed = {
            edge for edge in self.order_graph()
            if edge[0] in known and edge[1] in known
        }
        problems: list[str] = []
        cycle = find_cycle(observed)
        if cycle is not None:
            problems.append(
                "observed lock acquisition order is cyclic: " + " -> ".join(cycle)
            )
        else:
            cycle = find_cycle(observed | static_edges)
            if cycle is not None:
                problems.append(
                    "observed acquisition order inverts the static lock-order "
                    "model: merged cycle " + " -> ".join(cycle)
                )
        return problems

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self.acquisitions.clear()
            self._fields.clear()
            self.violations.clear()


#: The process-wide tracker every tracked lock and probe feeds.
TRACKER = LockTracker()


class TrackedLock:
    """``threading.Lock`` recording acquisition order into a tracker."""

    __slots__ = ("name", "_inner", "_tracker")

    def __init__(self, name: str, tracker: LockTracker | None = None):
        self.name = name
        self._inner = threading.Lock()
        self._tracker = tracker if tracker is not None else TRACKER

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got and RACECHECK.enabled:
            self._tracker.note_acquire(self.name)
        return got

    def release(self) -> None:
        if RACECHECK.enabled:
            self._tracker.note_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


class TrackedRLock:
    """``threading.RLock`` wrapper; reentrant re-acquisition records no edge."""

    __slots__ = ("name", "_inner", "_tracker", "_depth")

    def __init__(self, name: str, tracker: LockTracker | None = None):
        self.name = name
        self._inner = threading.RLock()
        self._tracker = tracker if tracker is not None else TRACKER
        self._depth = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got and RACECHECK.enabled:
            depth = getattr(self._depth, "value", 0) + 1
            self._depth.value = depth
            if depth == 1:
                self._tracker.note_acquire(self.name)
        return got

    def release(self) -> None:
        if RACECHECK.enabled:
            depth = getattr(self._depth, "value", 0)
            if depth:
                self._depth.value = depth - 1
                if depth == 1:
                    self._tracker.note_release(self.name)
        self._inner.release()

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"TrackedRLock({self.name!r})"


def make_lock(name: str):
    """A mutex named for the static model: plain ``Lock`` unless tracking.

    *name* is the canonical lock identity shared with the static analyzer
    (``"Class.attr"`` for instance locks, ``"module.NAME"`` for
    module-level ones, ``"Class.<method>"`` for method-local locks) — the
    analyzer reads the literal out of the call site, so the two layers
    cannot drift apart.
    """
    if RACECHECK.enabled:
        return TrackedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """Reentrant sibling of :func:`make_lock`."""
    if RACECHECK.enabled:
        return TrackedRLock(name)
    return threading.RLock()


def conc_stats_line(tracker: LockTracker | None = None) -> str:
    """One-line summary of the race harness (``--trace`` output)."""
    if not RACECHECK.enabled:
        return "conc: racecheck off"
    t = tracker if tracker is not None else TRACKER
    s = t.stats()
    return (
        f"conc: racecheck on · {s['locks']} locks · "
        f"{s['acquisitions']} acquisitions · {s['edges']} order edges · "
        f"{s['fields']} fields · {s['violations']} lockset violations"
    )
