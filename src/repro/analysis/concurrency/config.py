"""Race-check configuration: one process-wide switch, env-overridable.

Mirrors :mod:`repro.analysis.config` and the other layer configs: a
singleton (:data:`RACECHECK`) of plain attributes read directly on hot
paths, programmatic overrides for tests
(:meth:`RaceCheckConfig.overridden`), and environment variables read once
at import:

- ``REPRO_RACECHECK=1`` turns the runtime lockset/race harness **on**
  (default off): every lock built through
  :func:`repro.analysis.concurrency.runtime.make_lock` becomes a tracked
  wrapper recording acquisition order, and the ``note_access`` probes on
  guarded fields feed the Eraser-style lockset checker. Off, the factory
  returns plain ``threading`` locks and every probe is a single attribute
  test — the <5% disabled-overhead bound in
  ``benchmarks/test_bench_racecheck_overhead.py``.

The flag is latched per lock at *creation* time: flipping it mid-process
affects probes immediately but only locks created afterwards are tracked.
Tests therefore build fresh instances inside ``overridden(enabled=True)``;
CI's ``race-detect`` job sets the variable for the whole process so even
the module-level locks (``METRICS``, the intern pool) are tracked.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = False) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


class RaceCheckConfig:
    """Mutable knobs for the runtime lockset/race harness."""

    def __init__(self) -> None:
        #: master switch; off keeps every lock a plain threading primitive.
        self.enabled = _env_flag("REPRO_RACECHECK", False)

    #: knobs :meth:`overridden` accepts.
    KNOBS = ("enabled",)

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown racecheck knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        return f"RaceCheckConfig({'on' if self.enabled else 'off'})"


#: The process-wide race-check configuration.
RACECHECK = RaceCheckConfig()
