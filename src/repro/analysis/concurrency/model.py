"""Static concurrency model: lock discovery, regions, and the order graph.

Builds, from the parsed source tree alone, the model the CONC rules and
the runtime harness both consume:

- **lock declarations** — every ``threading.Lock/RLock/Condition`` (or
  :func:`~repro.analysis.concurrency.runtime.make_lock` /
  ``make_rlock``) bound to an instance attribute, a dataclass field, a
  module-level name, or a method local. Locks built through the factory
  take their canonical name from the string literal at the call site, so
  the static and runtime layers agree by construction; bare ``threading``
  constructions are named structurally (``Class.attr``, ``module.NAME``,
  ``Class.<method>`` for method locals).
- **lock regions** — a linear pre-order walk of each function tracking
  the stack of held locks: ``with <lock>:`` blocks, explicit
  ``.acquire()``/``.release()`` pairs, and ``with`` on a
  ``@contextmanager`` that is itself holding a lock at its ``yield``
  (single-flight's shape: the caller's body runs under the exported
  lock).
- **call graph** — calls are resolved through ``self``, typed attributes
  (``self._memo = LRUCache(...)``, dataclass field annotations,
  parameter and return annotations, module-level singletons such as
  ``METRICS``), then by globally-unique bare name as a last resort —
  never for ubiquitous collection-method names (``get``, ``append``,
  ``items``, ...), which would bind dict/deque calls to cache methods.
- **summaries** — a fixpoint propagates, per function, the set of locks
  transitively acquired, the blocking effects reachable (sleep, fsync,
  ``Future.result``, queue gets, service ``invoke``), and whether the
  function transitively mutates METRICS.

The model is deliberately an *under*-approximation where dynamic dispatch
defeats resolution (dict-of-callables, ``getattr`` chains): a missed edge
can hide a finding, never invent one, and the runtime harness closes the
gap by checking observed orders against this graph. Unresolvable
annotations (forward references to names outside the tree, exotic
subscripts) degrade to "unknown type", never to an error.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from ..lint.engine import Linter, SourceFile, parse_source

#: threading constructors recognized as lock declarations.
LOCK_KINDS = {"Lock", "RLock", "Condition"}
#: factory name -> lock kind (runtime wrappers carrying a canonical name).
LOCK_FACTORIES = {"make_lock": "Lock", "make_rlock": "RLock"}

#: method names too common to resolve by global uniqueness (binding a
#: dict's .get or a deque's .append to some class's method by accident
#: would invent call edges everywhere).
_COMMON_NAMES = frozenset({
    "acquire", "add", "append", "appendleft", "cancel", "clear", "close",
    "copy", "count", "decode", "discard", "encode", "extend", "findall",
    "finditer", "flush", "format", "fullmatch", "get", "group", "index",
    "insert", "items", "join", "keys", "locked", "lower", "match",
    "move_to_end", "notify", "notify_all", "open", "pop", "popitem",
    "popleft", "put", "read", "release", "remove", "reverse", "run",
    "search", "send", "set", "setdefault", "shutdown", "sort", "split",
    "start", "stop", "strip", "sub", "submit", "update", "upper",
    "values", "wait", "write",
})

_INIT_METHODS = {"__init__", "__post_init__", "__new__"}

#: metric-registry mutators (mirrors the REPRO002 rule).
_METRIC_MUTATORS = {"inc", "gauge", "observe", "timer"}


def _iter_expr(node: ast.AST):
    """``ast.walk`` over an expression, pruning deferred bodies (lambdas)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, ast.Lambda):
                continue
            stack.append(child)


def _blocking_effect(call: ast.Call) -> str | None:
    """The blocking-effect label for *call*, or None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        name, recv = func.attr, func.value
    elif isinstance(func, ast.Name):
        name, recv = func.id, None
    else:
        return None
    if name in ("sleep", "_sleep"):
        return "sleep"
    if name in ("fsync", "_fsync"):
        return "fsync"
    if name == "invoke":
        return "service invoke"
    if name == "result" and recv is not None and not call.args:
        rendered = ast.unparse(recv).lower()
        if isinstance(recv, ast.Call) or "future" in rendered or "fut" == rendered:
            return "Future.result"
    if name in ("get", "join") and recv is not None:
        if "queue" in ast.unparse(recv).lower():
            return f"queue.{name}"
    return None


def _is_metrics_mutation(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_MUTATORS:
        return False
    if not call.args:
        return False
    return ast.unparse(func.value).endswith("METRICS")


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock: canonical name, kind, declaration site."""

    name: str
    kind: str
    path: str  # "file:line"


@dataclass
class _ClassInfo:
    name: str
    module: str
    bases: tuple[str, ...]
    lineno: int
    path: str
    lock_attrs: set[str] = field(default_factory=set)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class FuncInfo:
    """One function/method plus its direct facts and fixpoint summaries."""

    qual: str
    cls: str | None
    module: str
    sf: SourceFile
    node: ast.AST
    decorators: tuple[str, ...]
    env: dict[str, str] = field(default_factory=dict)        # local var -> class
    env_locks: dict[str, str] = field(default_factory=dict)  # local var -> lock name
    # direct facts (one region walk):
    direct_locks: set[str] = field(default_factory=set)
    callsites: list[tuple[str, tuple[str, ...], str]] = field(default_factory=list)
    direct_blocking: list[tuple[tuple[str, ...], str, str]] = field(default_factory=list)
    direct_metrics: list[tuple[tuple[str, ...], str]] = field(default_factory=list)
    acquire_events: list[tuple[tuple[str, ...], str, str]] = field(default_factory=list)
    context_locks: set[str] = field(default_factory=set)     # held at a yield (@contextmanager)
    # fixpoint summaries:
    sum_locks: set[str] = field(default_factory=set)
    sum_blocking: dict[str, str] = field(default_factory=dict)  # effect -> origin qual
    sum_metrics: bool = False

    @property
    def name(self) -> str:
        return self.qual.rsplit(".", 1)[-1]


@dataclass
class Write:
    owner: str
    attr: str
    guarded: bool
    path: str
    func: str


class ConcurrencyModel:
    """Everything the CONC rules and the runtime comparison need."""

    def __init__(self):
        self.locks: dict[str, LockInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        #: (held_lock, acquired_lock) -> up to 3 sites establishing it.
        self.edges: dict[tuple[str, str], list[str]] = {}
        #: (held, effect, via-or-None, path) — blocking call inside a region.
        self.blocking_events: list[tuple[tuple[str, ...], str, str | None, str]] = []
        #: (held, via-or-None, path) — METRICS mutation inside a region.
        self.metrics_events: list[tuple[tuple[str, ...], str | None, str]] = []
        self.writes: list[Write] = []
        self.files: int = 0

    def lock_names(self) -> set[str]:
        return set(self.locks)

    def edge_set(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def server_locks(self) -> set[str]:
        """Locks declared in the server layer (files under ``server``)."""
        return {
            name for name, info in self.locks.items()
            if "server" in Path(info.path.rsplit(":", 1)[0]).parts
            or "server" in Path(info.path.rsplit(":", 1)[0]).stem
        }

    def metrics_locks(self) -> set[str]:
        return {name for name in self.locks if name.startswith("Metrics.")}


class _Builder:
    def __init__(self, sources: list[SourceFile]):
        self.sources = sources
        self.model = ConcurrencyModel()
        #: bare function name -> list of quals (for unique-name resolution).
        self.by_name: dict[str, list[str]] = {}
        #: singleton instance name -> set of class names (``METRICS`` -> Metrics).
        self.instances: dict[str, set[str]] = {}

    # -- pass 1: declarations -------------------------------------------------
    def collect(self) -> None:
        model = self.model
        model.files = len(self.sources)
        # 1a: register every class and function first, so annotations in
        # one file can name classes defined in a later (sort-order) file.
        pending: list[tuple[SourceFile, str, ast.ClassDef]] = []
        for sf in self.sources:
            stem = sf.path.stem
            for node in sf.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._register_class(sf, stem, node)
                    pending.append((sf, stem, node))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._register_function(sf, stem, None, f"{stem}.{node.name}", node)
                elif isinstance(node, ast.Assign):
                    self._collect_module_assign(sf, stem, node)
        # 1b: now resolve lock declarations and attribute types.
        for sf, stem, node in pending:
            self._scan_class_body(sf, node)

    def _decorator_names(self, node) -> tuple[str, ...]:
        out = []
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if isinstance(target, ast.Name):
                out.append(target.id)
            elif isinstance(target, ast.Attribute):
                out.append(target.attr)
        return tuple(out)

    def _register_function(self, sf, stem, cls, qual, node) -> None:
        fn = FuncInfo(
            qual=qual, cls=cls, module=stem, sf=sf, node=node,
            decorators=self._decorator_names(node),
        )
        self.model.functions[qual] = fn
        self.by_name.setdefault(node.name, []).append(qual)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(sf, stem, cls, f"{qual}.{child.name}", child)

    def _register_class(self, sf, stem, node: ast.ClassDef) -> None:
        bases = tuple(
            b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases if isinstance(b, (ast.Name, ast.Attribute))
        )
        info = _ClassInfo(
            name=node.name, module=stem, bases=bases,
            lineno=node.lineno, path=str(sf.path),
        )
        # later definition of a same-named class would clobber; first wins
        # deterministically (sources are sorted by path).
        self.model.classes.setdefault(node.name, info)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(sf, stem, node.name, f"{node.name}.{item.name}", item)

    def _scan_class_body(self, sf, node: ast.ClassDef) -> None:
        info = self.model.classes.get(node.name)
        if info is None or info.path != str(sf.path) or info.lineno != node.lineno:
            return  # a shadowed duplicate definition: first one owns the facts
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method_decls(sf, info, item)
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                attr = item.target.id
                kind, lit = (None, None)
                if item.value is not None:
                    kind, lit = self._lock_value(item.value)
                if kind:
                    self._declare_lock(lit or f"{node.name}.{attr}", kind, sf, item.lineno)
                    info.lock_attrs.add(attr)
                else:
                    t = self._ann_to_class(item.annotation)
                    if t:
                        info.attr_types[attr] = t

    def _scan_method_decls(self, sf, info: _ClassInfo, method) -> None:
        """``self.X = <lock or typed value>`` sites anywhere in the class."""
        param_types: dict[str, str] = {}
        args = method.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            t = self._ann_to_class(a.annotation)
            if t:
                param_types[a.arg] = t
        for node in ast.walk(method):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            kind, lit = self._lock_value(value)
            if kind:
                self._declare_lock(lit or f"{info.name}.{attr}", kind, sf, node.lineno)
                info.lock_attrs.add(attr)
                continue
            t = self._value_type(value, param_types)
            if t and attr not in info.attr_types:
                info.attr_types[attr] = t
            if isinstance(node, ast.AnnAssign):
                t = self._ann_to_class(node.annotation)
                if t:
                    info.attr_types[attr] = t

    def _collect_module_assign(self, sf, stem, node: ast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        kind, lit = self._lock_value(node.value)
        if kind:
            self._declare_lock(lit or f"{stem}.{name}", kind, sf, node.lineno)
            return
        if isinstance(node.value, ast.Call):
            func = node.value.func
            cls = None
            if isinstance(func, ast.Name):
                cls = func.id
            elif isinstance(func, ast.Attribute):
                cls = func.attr
            if cls:
                self.instances.setdefault(name, set()).add(cls)

    def _declare_lock(self, name: str, kind: str, sf, lineno: int) -> None:
        if name not in self.model.locks:
            self.model.locks[name] = LockInfo(name, kind, f"{sf.path}:{lineno}")

    def _lock_value(self, node) -> tuple[str | None, str | None]:
        """``(kind, explicit_name)`` when *node* constructs (or factories) a lock."""
        if node is None:
            return None, None
        if isinstance(node, ast.Lambda):
            return self._lock_value(node.body)
        if isinstance(node, ast.Attribute):
            # a callable reference like ``threading.Lock`` (default_factory=)
            if isinstance(node.value, ast.Name) and node.value.id == "threading":
                if node.attr in LOCK_KINDS:
                    return node.attr, None
            return None, None
        if isinstance(node, ast.Name):
            if node.id in LOCK_FACTORIES:
                return LOCK_FACTORIES[node.id], None
            return None, None
        if not isinstance(node, ast.Call):
            return None, None
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "threading"
                and func.attr in LOCK_KINDS
            ):
                return func.attr, None
        elif isinstance(func, ast.Name):
            if func.id in LOCK_FACTORIES:
                lit = None
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    lit = node.args[0].value
                return LOCK_FACTORIES[func.id], lit
            if func.id in LOCK_KINDS:
                return func.id, None
            if func.id == "field":
                for kw in node.keywords:
                    if kw.arg == "default_factory":
                        return self._lock_value(kw.value)
        return None, None

    # -- type resolution -------------------------------------------------------
    def _ann_to_class(self, ann) -> str | None:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Name):
            return ann.id if ann.id in self.model.classes else None
        if isinstance(ann, ast.Attribute):
            return ann.attr if ann.attr in self.model.classes else None
        if isinstance(ann, ast.BinOp):
            return self._ann_to_class(getattr(ann, "left", None)) or \
                self._ann_to_class(getattr(ann, "right", None))
        if isinstance(ann, ast.Subscript):
            return self._ann_to_class(ann.value) or self._ann_to_class(ann.slice)
        return None

    def _value_type(self, node, env: dict[str, str]) -> str | None:
        """Best-effort class of an expression, given a local type env."""
        if isinstance(node, ast.Name):
            t = env.get(node.id)
            if t:
                return t
            classes = self.instances.get(node.id)
            if classes and len(classes) == 1:
                cls = next(iter(classes))
                return cls if cls in self.model.classes else None
            return None
        if isinstance(node, ast.IfExp):
            return self._value_type(node.body, env) or self._value_type(node.orelse, env)
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                t = self._value_type(operand, env)
                if t:
                    return t
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.model.classes:
                return func.id
            if isinstance(func, ast.Attribute) and func.attr in self.model.classes:
                return func.attr
            return None
        return None

    def resolve_type(self, node, fn: FuncInfo) -> str | None:
        """Class of *node* inside *fn* (``self``, locals, attr chains, calls)."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return fn.cls
            return self._value_type(node, fn.env)
        if isinstance(node, ast.Attribute):
            base = self.resolve_type(node.value, fn)
            if base is None:
                return None
            return self._attr_type(base, node.attr)
        if isinstance(node, (ast.IfExp, ast.BoolOp)):
            return self._value_type(node, fn.env)
        if isinstance(node, ast.Call):
            direct = self._value_type(node, fn.env)
            if direct:
                return direct
            callee = self.resolve_call(node, fn)
            if callee is not None:
                ret = getattr(self.model.functions[callee].node, "returns", None)
                return self._ann_to_class(ret)
        return None

    def _attr_type(self, cls: str, attr: str) -> str | None:
        seen = set()
        while cls and cls not in seen:
            seen.add(cls)
            info = self.model.classes.get(cls)
            if info is None:
                return None
            if attr in info.attr_types:
                return info.attr_types[attr]
            cls = info.bases[0] if info.bases else None
        return None

    def _method_on(self, cls: str, name: str) -> str | None:
        seen = set()
        while cls and cls not in seen:
            seen.add(cls)
            qual = f"{cls}.{name}"
            if qual in self.model.functions:
                return qual
            info = self.model.classes.get(cls)
            cls = info.bases[0] if info and info.bases else None
        return None

    def resolve_call(self, node: ast.Call, fn: FuncInfo) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            nid = func.id
            nested = f"{fn.qual}.{nid}"
            if nested in self.model.functions:
                return nested
            local = f"{fn.module}.{nid}"
            if local in self.model.functions:
                return local
            if nid not in _COMMON_NAMES:
                cands = self.by_name.get(nid, ())
                if len(cands) == 1:
                    return cands[0]
            return None
        if isinstance(func, ast.Attribute):
            attr = func.attr
            recv_cls = self.resolve_type(func.value, fn)
            if recv_cls:
                qual = self._method_on(recv_cls, attr)
                if qual:
                    return qual
            if attr not in _COMMON_NAMES:
                cands = self.by_name.get(attr, ())
                if len(cands) == 1:
                    return cands[0]
        return None

    def resolve_lock_expr(self, node, fn: FuncInfo) -> str | None:
        """The lock name *node* denotes, or None (not a known lock)."""
        if isinstance(node, ast.Name):
            local = fn.env_locks.get(node.id)
            if local:
                return local
            name = f"{fn.module}.{node.id}"
            if name in self.model.locks:
                return name
            # imported module-level lock: unique suffix match.
            cands = [
                n for n in self.model.locks
                if n.endswith(f".{node.id}") and n.split(".", 1)[0] not in self.model.classes
            ]
            if len(cands) == 1:
                return cands[0]
            return None
        if isinstance(node, ast.Attribute):
            owner = self.resolve_type(node.value, fn)
            if owner is None:
                return None
            seen = set()
            while owner and owner not in seen:
                seen.add(owner)
                info = self.model.classes.get(owner)
                if info is None:
                    return None
                if node.attr in info.lock_attrs:
                    name = f"{info.name}.{node.attr}"
                    # factory-named declarations may differ; prefer an exact
                    # registered name, else the structural one.
                    return name if name in self.model.locks else name
                owner = info.bases[0] if info.bases else None
        return None

    # -- pass 2: local type environments ---------------------------------------
    def build_envs(self) -> None:
        for fn in self.model.functions.values():
            node = fn.node
            args = node.args
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                t = self._ann_to_class(a.annotation)
                if t:
                    fn.env[a.arg] = t
            for stmt in ast.walk(node):
                target = None
                value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                if target is None or not isinstance(target, ast.Name):
                    continue
                kind, lit = self._lock_value(value)
                if kind:
                    name = lit or self._local_lock_name(fn)
                    self._declare_lock(name, kind, fn.sf, stmt.lineno)
                    fn.env_locks[target.id] = name
                    continue
                if isinstance(stmt, ast.AnnAssign):
                    t = self._ann_to_class(stmt.annotation)
                    if t:
                        fn.env[target.id] = t
                        continue
                t = self._value_type(value, fn.env) if value is not None else None
                if t:
                    fn.env[target.id] = t
                elif value is not None and isinstance(value, ast.Attribute):
                    if isinstance(value.value, ast.Name) and value.value.id == "self" and fn.cls:
                        t = self._attr_type(fn.cls, value.attr)
                        if t:
                            fn.env[target.id] = t

    def _local_lock_name(self, fn: FuncInfo) -> str:
        owner = fn.cls or fn.module
        return f"{owner}.<{fn.name}>"

    # -- pass 3: region walks (iterated for context-manager lock export) -------
    def scan(self) -> None:
        for _ in range(4):
            self.model.writes.clear()
            for fn in self.model.functions.values():
                fn.direct_locks.clear()
                fn.callsites.clear()
                fn.direct_blocking.clear()
                fn.direct_metrics.clear()
                fn.acquire_events.clear()
            before = {q: set(f.context_locks) for q, f in self.model.functions.items()}
            for fn in self.model.functions.values():
                _RegionWalker(self, fn).walk_function()
            after = {q: set(f.context_locks) for q, f in self.model.functions.items()}
            if before == after:
                break

    def context_locks_of(self, node, fn: FuncInfo) -> tuple[str, ...]:
        """Locks a ``with <call>`` context acquires for its body."""
        if not isinstance(node, ast.Call):
            return ()
        callee = self.resolve_call(node, fn)
        if callee is None:
            return ()
        return tuple(sorted(self.model.functions[callee].context_locks))

    # -- pass 4: fixpoint summaries + event emission ----------------------------
    def summarize(self) -> None:
        functions = self.model.functions
        changed = True
        while changed:
            changed = False
            for fn in functions.values():
                locks = set(fn.direct_locks)
                blocking: dict[str, str] = {
                    effect: fn.qual for _, effect, _ in fn.direct_blocking
                }
                metrics = bool(fn.direct_metrics)
                for callee, _, _ in fn.callsites:
                    c = functions[callee]
                    locks |= c.sum_locks
                    for effect, origin in c.sum_blocking.items():
                        blocking.setdefault(effect, origin)
                    metrics = metrics or c.sum_metrics
                if locks != fn.sum_locks or blocking != fn.sum_blocking \
                        or metrics != fn.sum_metrics:
                    fn.sum_locks = locks
                    fn.sum_blocking = blocking
                    fn.sum_metrics = metrics
                    changed = True

    def emit(self) -> None:
        model = self.model
        metrics_locks = model.metrics_locks()
        seen_blocking: set[tuple[str, str]] = set()
        seen_metrics: set[str] = set()

        def add_edge(a: str, b: str, site: str) -> None:
            sites = model.edges.setdefault((a, b), [])
            if len(sites) < 3 and site not in sites:
                sites.append(site)

        for fn in model.functions.values():
            for held, name, site in fn.acquire_events:
                for lock in held:
                    if lock != name:
                        add_edge(lock, name, site)
                    elif model.locks.get(name) and model.locks[name].kind == "Lock":
                        add_edge(name, name, site)  # non-reentrant self-deadlock
            for held, effect, site in fn.direct_blocking:
                if held and (site, effect) not in seen_blocking:
                    seen_blocking.add((site, effect))
                    model.blocking_events.append((held, effect, None, site))
            for held, site in fn.direct_metrics:
                relevant = tuple(lock for lock in held if lock not in metrics_locks)
                if relevant and site not in seen_metrics:
                    seen_metrics.add(site)
                    model.metrics_events.append((relevant, None, site))
            for callee, held, site in fn.callsites:
                if not held:
                    continue
                c = model.functions[callee]
                for acquired in sorted(c.sum_locks):
                    if acquired in held:
                        continue
                    for lock in held:
                        add_edge(lock, acquired, site)
                for effect, origin in sorted(c.sum_blocking.items()):
                    if (site, effect) not in seen_blocking:
                        seen_blocking.add((site, effect))
                        model.blocking_events.append((held, effect, origin, site))
                if c.sum_metrics:
                    relevant = tuple(lock for lock in held if lock not in metrics_locks)
                    if relevant and site not in seen_metrics:
                        seen_metrics.add(site)
                        model.metrics_events.append((relevant, callee, site))


class _RegionWalker:
    """Linear pre-order walk of one function, tracking held locks."""

    def __init__(self, builder: _Builder, fn: FuncInfo):
        self.b = builder
        self.fn = fn
        self.held: list[str] = []
        self.is_cm = "contextmanager" in fn.decorators or \
            "asynccontextmanager" in fn.decorators

    def site(self, node) -> str:
        return f"{self.fn.sf.path}:{node.lineno}"

    def walk_function(self) -> None:
        self.walk(self.fn.node.body)

    def walk(self, stmts) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def push(self, name: str, node) -> None:
        self.fn.direct_locks.add(name)
        self.fn.acquire_events.append((tuple(self.held), name, self.site(node)))
        self.held.append(name)

    def pop(self, name: str) -> None:
        for i in range(len(self.held) - 1, -1, -1):
            if self.held[i] == name:
                del self.held[i]
                return

    def stmt(self, node) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # deferred bodies: analyzed as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                self.expr(item.context_expr)
                lock = self.b.resolve_lock_expr(item.context_expr, self.fn)
                locks = (lock,) if lock else \
                    self.b.context_locks_of(item.context_expr, self.fn)
                for name in locks:
                    self.push(name, node)
                    acquired.append(name)
            self.walk(node.body)
            for name in reversed(acquired):
                self.pop(name)
            return
        # writes first (Assign/AugAssign/AnnAssign), then generic traversal.
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self.note_writes(target)
        for fieldname, value in ast.iter_fields(node):
            if fieldname in ("body", "orelse", "finalbody", "handlers"):
                continue
            self.visit_field(value)
        for block in ("body", "orelse", "finalbody"):
            stmts = getattr(node, block, None)
            if stmts:
                self.walk(stmts)
        for handler in getattr(node, "handlers", ()):
            self.walk(handler.body)

    def visit_field(self, value) -> None:
        if isinstance(value, ast.AST):
            if isinstance(value, ast.expr):
                self.expr(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    self.expr(item)

    def note_writes(self, target) -> None:
        fn = self.fn
        if fn.name in _INIT_METHODS:
            return
        for node in ast.walk(target):
            if not isinstance(node, ast.Attribute) or not isinstance(node.ctx, ast.Store):
                continue
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                owner = fn.cls
            else:
                owner = self.b.resolve_type(node.value, fn)
            if owner is None:
                continue
            info = self.b.model.classes.get(owner)
            if info is None or not info.lock_attrs or node.attr in info.lock_attrs:
                continue
            guarded = any(lock.startswith(f"{owner}.") for lock in self.held)
            self.b.model.writes.append(
                Write(owner, node.attr, guarded, self.site(node), fn.qual)
            )

    def expr(self, node) -> None:
        fn = self.fn
        for sub in _iter_expr(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                if self.is_cm and self.held:
                    fn.context_locks.update(self.held)
                continue
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            # explicit acquire()/release() pairs on a resolvable lock.
            if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
                lock = self.b.resolve_lock_expr(func.value, fn)
                if lock is not None:
                    if func.attr == "acquire":
                        self.push(lock, sub)
                    else:
                        self.pop(lock)
                    continue
            # recorded even with nothing held: the *caller* may hold a
            # lock, and summaries must carry the effect up the chain.
            effect = _blocking_effect(sub)
            if effect is not None:
                fn.direct_blocking.append((tuple(self.held), effect, self.site(sub)))
            if _is_metrics_mutation(sub):
                fn.direct_metrics.append((tuple(self.held), self.site(sub)))
            callee = self.b.resolve_call(sub, fn)
            if callee is not None and callee != fn.qual:
                fn.callsites.append((callee, tuple(self.held), self.site(sub)))


def build_model(sources: list[SourceFile]) -> ConcurrencyModel:
    """The full concurrency model for *sources* (parsed lint files)."""
    builder = _Builder(sorted(sources, key=lambda sf: str(sf.path)))
    builder.collect()
    builder.build_envs()
    builder.scan()
    builder.summarize()
    builder.emit()
    return builder.model


def build_model_from_paths(paths) -> ConcurrencyModel:
    """Convenience: collect, parse, and model every ``.py`` under *paths*."""
    sources = []
    for path in Linter.collect(paths):
        try:
            sources.append(parse_source(path))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
    return build_model(sources)
