"""Concurrency correctness pass: static lock analysis + runtime race harness.

Part 1 (static, :mod:`.model` + :mod:`.rules`): an AST pass over ``src/``
discovering every lock, building the cross-module lock-acquisition graph
from ``with``-regions and transitive calls, and reporting

- **CONC001** — lock-order inversions (cycles in the acquisition graph);
- **CONC002** — blocking calls under a lock (``Future.result``,
  ``queue.get``, ``sleep``, ``fsync``, service ``invoke``);
- **CONC003** — shared attributes written both inside and outside the
  owning class's lock regions;
- **CONC004** — METRICS mutation while holding a non-metrics lock;
- **CONC005** — ``@recorded`` bodies that acquire server locks
  (deadlock-with-replay hazard).

Run it as ``python -m repro.analysis.concurrency src/``; suppressions use
the PR-5 lint syntax — ``lint: allow=CONC002 -- reason`` after a ``#`` on
the offending line.

Part 2 (runtime, :mod:`.runtime`): with ``REPRO_RACECHECK=1`` every lock
built through :func:`make_lock`/:func:`make_rlock` is a tracked wrapper
feeding an Eraser-style lockset tracker; CI runs the stress suites under
it and asserts the observed acquisition order never inverts the static
model and no guarded field ends shared-modified with an empty lockset.

Only the runtime half (plus config) is imported eagerly — it sits on the
import path of leaf lock-owning modules; the static half resolves lazily.
"""

from __future__ import annotations

from .config import RACECHECK, RaceCheckConfig
from .runtime import (
    TRACKER,
    LockTracker,
    TrackedLock,
    TrackedRLock,
    conc_stats_line,
    find_cycle,
    make_lock,
    make_rlock,
)

_LAZY = {
    "ConcurrencyModel": ".model",
    "build_model": ".model",
    "build_model_from_paths": ".model",
    "CONC_RULES": ".rules",
    "main": ".rules",
    "rule_concurrency": ".rules",
}

__all__ = [
    "CONC_RULES",
    "ConcurrencyModel",
    "LockTracker",
    "RACECHECK",
    "RaceCheckConfig",
    "TRACKER",
    "TrackedLock",
    "TrackedRLock",
    "build_model",
    "build_model_from_paths",
    "conc_stats_line",
    "find_cycle",
    "main",
    "make_lock",
    "make_rlock",
    "rule_concurrency",
]


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(modname, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
