"""The CONC rules: diagnostics over the static concurrency model.

One project rule (:func:`rule_concurrency`) builds the
:class:`~repro.analysis.concurrency.model.ConcurrencyModel` for the file
set and reports:

- **CONC001** — lock-order inversion: an acquisition edge ``A -> B``
  where ``B`` already reaches ``A`` in the cross-module graph (two code
  paths nest the same locks in opposite orders — the classic deadlock),
  including ``with``-in-``with`` on the same non-reentrant lock.
- **CONC002** — blocking call under a lock: ``sleep``, ``fsync``,
  ``Future.result``, queue gets/joins, or a service ``invoke`` executed
  (directly or transitively) inside a lock region serializes every other
  thread contending for that lock behind IO.
- **CONC003** — inconsistent guarding: an attribute of a lock-owning
  class written both inside and outside that class's lock regions; the
  unguarded sites are the findings (``__init__`` is exempt — objects are
  thread-local until published).
- **CONC004** — METRICS mutation while holding a non-metrics lock:
  metrics fan out to sinks and take the registry's own lock; emitting
  under a layer lock couples unrelated lock hierarchies (the repo
  convention is to record under the lock, emit after).
- **CONC005** — a ``@recorded`` method transitively acquiring a server
  lock: replay happens under the server's registry lock, so a recorded
  action that re-enters server locking deadlocks crash recovery.

Suppression reuses the lint engine's syntax — ``lint: allow=CONC002 --
reason`` after a ``#``; :func:`main` runs with ``stale_prefixes=("CONC",)``
so unused CONC allows are themselves reported, and REPRO allows are left
alone.
"""

from __future__ import annotations

from typing import Iterable

from ..diagnostics import ERROR, Diagnostic
from ..lint.engine import Linter, SourceFile
from .model import ConcurrencyModel, build_model

#: the model built by the most recent :func:`rule_concurrency` run —
#: stashed for the CLI summary line and for tests inspecting the graph.
LAST_MODEL: ConcurrencyModel | None = None


def _reachability(edges: Iterable[tuple[str, str]]):
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
    memo: dict[str, set[str]] = {}

    def reaches(src: str) -> set[str]:
        cached = memo.get(src)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            for nxt in graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        memo[src] = seen
        return seen

    return reaches


def _conc001(model: ConcurrencyModel) -> Iterable[Diagnostic]:
    reaches = _reachability(model.edges)
    for (a, b), sites in sorted(model.edges.items()):
        if a == b:
            yield Diagnostic(
                "CONC001", ERROR,
                f"lock {a!r} is re-acquired while already held and is not "
                f"reentrant; this self-deadlocks — use an RLock or restructure",
                path=sites[0],
            )
        elif a in reaches(b):
            yield Diagnostic(
                "CONC001", ERROR,
                f"lock-order inversion: {b!r} is acquired while holding "
                f"{a!r} here, but another path acquires {a!r} while holding "
                f"{b!r} — two threads interleaving these paths deadlock",
                path=sites[0],
            )


def _conc002(model: ConcurrencyModel) -> Iterable[Diagnostic]:
    for held, effect, via, site in sorted(
        model.blocking_events, key=lambda e: (e[3], e[1])
    ):
        through = f" (via {via})" if via else ""
        yield Diagnostic(
            "CONC002", ERROR,
            f"blocking call ({effect}){through} while holding "
            f"{', '.join(repr(h) for h in held)}; every thread contending "
            f"for the lock now waits on this IO — move it outside the region",
            path=site,
        )


def _conc003(model: ConcurrencyModel) -> Iterable[Diagnostic]:
    by_attr: dict[tuple[str, str], list] = {}
    for w in model.writes:
        by_attr.setdefault((w.owner, w.attr), []).append(w)
    for (owner, attr), writes in sorted(by_attr.items()):
        guarded = [w for w in writes if w.guarded]
        unguarded = [w for w in writes if not w.guarded]
        if not guarded or not unguarded:
            continue
        sample = guarded[0].path
        for w in unguarded:
            yield Diagnostic(
                "CONC003", ERROR,
                f"{owner}.{attr} is written here without the owner's lock "
                f"but under it elsewhere ({sample}); racing writers can "
                f"interleave — guard this write or document the fast path",
                path=w.path,
            )


def _conc004(model: ConcurrencyModel) -> Iterable[Diagnostic]:
    for held, via, site in sorted(model.metrics_events, key=lambda e: e[2]):
        through = f" (via {via})" if via else ""
        yield Diagnostic(
            "CONC004", ERROR,
            f"METRICS mutated{through} while holding "
            f"{', '.join(repr(h) for h in held)}; metrics take their own "
            f"registry lock — record under the lock, emit after releasing",
            path=site,
        )


def _conc005(model: ConcurrencyModel) -> Iterable[Diagnostic]:
    server_locks = model.server_locks()
    if not server_locks:
        return
    for qual in sorted(model.functions):
        fn = model.functions[qual]
        if fn.cls is None or "recorded" not in fn.decorators:
            continue
        hit = sorted(fn.sum_locks & server_locks)
        if hit:
            yield Diagnostic(
                "CONC005", ERROR,
                f"@recorded method {fn.name!r} transitively acquires server "
                f"lock(s) {', '.join(repr(h) for h in hit)}; replay runs "
                f"under the registry lock, so this deadlocks crash recovery",
                path=f"{fn.sf.path}:{fn.node.lineno}",
            )


def rule_concurrency(files: list[SourceFile]) -> Iterable[Diagnostic]:
    """Project rule: build the concurrency model, emit CONC001–CONC005."""
    global LAST_MODEL
    model = build_model(files)
    LAST_MODEL = model
    yield from _conc001(model)
    yield from _conc002(model)
    yield from _conc003(model)
    yield from _conc004(model)
    yield from _conc005(model)


CONC_RULES = (rule_concurrency,)


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.analysis.concurrency src/``."""
    args = list(argv) if argv is not None else []
    paths = [a for a in args if not a.startswith("-")] or ["src"]
    linter = Linter(file_rules=(), project_rules=CONC_RULES,
                    stale_prefixes=("CONC",))
    diagnostics = linter.run(paths)
    for diagnostic in diagnostics:
        print(diagnostic.render())
    model = LAST_MODEL
    summary = ""
    if model is not None:
        summary = (
            f" · {len(model.locks)} locks · {len(model.edges)} order edges "
            f"in {model.files} file(s)"
        )
    if diagnostics:
        print(f"conc: {len(diagnostics)} finding(s){summary}")
        return 1
    print(f"conc: clean{summary}")
    return 0
