"""Static analysis: pre-execution plan checks and the repo invariant linter.

Two levels, one goal — move whole classes of bugs from runtime (or from
silently-wrong cached results) to a deterministic static check:

- **Level 1 — plan analyzer** (:mod:`~repro.analysis.plan_analyzer`):
  semantic checks over the ``Plan`` algebra against the catalog and
  source graph — schema/arity inference, binding-pattern satisfiability,
  provenance soundness, blowup warnings, and fingerprint/dispatch
  completeness (:mod:`~repro.analysis.fingerprint_check`). Wired into
  :class:`repro.core.engine.QueryEngine` (every plan is checked before it
  reaches the evaluator) and into plan-cache admission, behind the
  env-tunable :data:`ANALYSIS` config.
- **Level 2 — repo linter** (:mod:`~repro.analysis.lint`): an AST-based
  lint pass enforcing repo-wide invariants (REPRO001–REPRO005), run by CI
  as ``python -m repro.analysis.lint src/``.
"""

from __future__ import annotations

from .config import ANALYSIS, AnalysisConfig
from .diagnostics import AnalysisReport, Diagnostic
from .fingerprint_check import plan_subclasses, self_check
from .plan_analyzer import PlanAnalyzer, predicate_attributes

__all__ = [
    "ANALYSIS",
    "AnalysisConfig",
    "AnalysisReport",
    "Diagnostic",
    "PlanAnalyzer",
    "analysis_stats_line",
    "plan_subclasses",
    "predicate_attributes",
    "self_check",
]


def analysis_stats_line(metrics=None) -> str:
    """One-line summary of the analysis counters (``--trace`` output)."""
    from ..obs import METRICS

    m = metrics or METRICS
    checked = int(m.counter_value("analysis.plans_checked"))
    memo_hits = int(m.counter_value("analysis.memo.hits"))
    memo_misses = int(m.counter_value("analysis.memo.misses"))
    errors = int(m.counter_value("analysis.errors"))
    warnings = int(m.counter_value("analysis.warnings"))
    gate = int(m.counter_value("analysis.cache_gate_rejections"))
    line = (
        f"analysis: plans checked {checked} "
        f"(memo {memo_hits}h/{memo_misses}m) · "
        f"errors {errors} warnings {warnings} · "
        f"cache admissions refused {gate}"
    )
    if not ANALYSIS.enabled:
        line += " · disabled"
    return line
