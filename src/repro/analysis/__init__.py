"""Static analysis: plan checks, the repo linter, and the concurrency pass.

Three levels, one goal — move whole classes of bugs from runtime (or from
silently-wrong cached results) to a deterministic static check:

- **Level 1 — plan analyzer** (:mod:`~repro.analysis.plan_analyzer`):
  semantic checks over the ``Plan`` algebra against the catalog and
  source graph — schema/arity inference, binding-pattern satisfiability,
  provenance soundness, blowup warnings, and fingerprint/dispatch
  completeness (:mod:`~repro.analysis.fingerprint_check`). Wired into
  :class:`repro.core.engine.QueryEngine` (every plan is checked before it
  reaches the evaluator) and into plan-cache admission, behind the
  env-tunable :data:`ANALYSIS` config.
- **Level 2 — repo linter** (:mod:`~repro.analysis.lint`): an AST-based
  lint pass enforcing repo-wide invariants (REPRO001–REPRO006), run by CI
  as ``python -m repro.analysis.lint src/``.
- **Level 3 — concurrency pass** (:mod:`~repro.analysis.concurrency`):
  static lock-order/lockset analysis (CONC001–CONC005, ``python -m
  repro.analysis.concurrency src/``) plus the opt-in runtime race
  harness (``REPRO_RACECHECK=1``).

Heavy members resolve lazily (PEP 562): the runtime race harness lives
under this package yet is imported by leaf lock-owning modules
(``obs/metrics.py``, ``cache/lru.py``, ``util/text.py``), so importing
``repro.analysis.concurrency.runtime`` must not drag in the plan
analyzer, which imports the cache layer, which imports obs — a cycle.
Only the config is eager.
"""

from __future__ import annotations

from .config import ANALYSIS, AnalysisConfig

_LAZY = {
    "AnalysisReport": ".diagnostics",
    "Diagnostic": ".diagnostics",
    "PlanAnalyzer": ".plan_analyzer",
    "predicate_attributes": ".plan_analyzer",
    "plan_subclasses": ".fingerprint_check",
    "self_check": ".fingerprint_check",
}

__all__ = [
    "ANALYSIS",
    "AnalysisConfig",
    "AnalysisReport",
    "Diagnostic",
    "PlanAnalyzer",
    "analysis_stats_line",
    "plan_subclasses",
    "predicate_attributes",
    "self_check",
]


def __getattr__(name: str):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(modname, __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


def analysis_stats_line(metrics=None) -> str:
    """One-line summary of the analysis counters (``--trace`` output)."""
    from ..obs import METRICS

    m = metrics or METRICS
    checked = int(m.counter_value("analysis.plans_checked"))
    memo_hits = int(m.counter_value("analysis.memo.hits"))
    memo_misses = int(m.counter_value("analysis.memo.misses"))
    errors = int(m.counter_value("analysis.errors"))
    warnings = int(m.counter_value("analysis.warnings"))
    gate = int(m.counter_value("analysis.cache_gate_rejections"))
    line = (
        f"analysis: plans checked {checked} "
        f"(memo {memo_hits}h/{memo_misses}m) · "
        f"errors {errors} warnings {warnings} · "
        f"cache admissions refused {gate}"
    )
    if not ANALYSIS.enabled:
        line += " · disabled"
    return line
