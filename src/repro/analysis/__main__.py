"""``python -m repro.analysis`` — the fingerprint-completeness self-check.

Exits nonzero when any ``Plan`` subclass lacks a registered fingerprint,
a field-complete fingerprint, or an analyzer check. CI runs this in the
``lint-invariants`` job so a new operator cannot land half-wired.
"""

from __future__ import annotations

import sys

from .fingerprint_check import plan_subclasses, self_check


def main() -> int:
    report = self_check()
    covered = plan_subclasses()
    if report.diagnostics:
        for diagnostic in report.diagnostics:
            print(diagnostic.render())
        print(f"self-check FAILED: {len(report.diagnostics)} gap(s) "
              f"across {len(covered)} Plan subclasses")
        return 1
    print(f"self-check passed: {len(covered)} Plan subclasses, "
          f"fingerprints field-complete, analyzer dispatch complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
