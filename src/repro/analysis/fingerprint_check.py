"""Fingerprint- and dispatch-completeness verification.

Reflects over every ``Plan`` subclass the process knows about (the full
transitive ``__subclasses__`` closure) and asserts:

- each has a cache fingerprint registered in
  :mod:`repro.cache.fingerprint` (exact-type dispatch — a subclass never
  silently inherits its parent's fingerprint and aliases cache entries);
- the registered fingerprint **covers every dataclass field** of the
  node, so no field can change a plan's behaviour without changing its
  fingerprint;
- each has an analyzer check registered in
  :mod:`repro.analysis.plan_analyzer`.

Run standalone via ``python -m repro.analysis`` (the CI
``lint-invariants`` job) or from tests via :func:`self_check`.
"""

from __future__ import annotations

from ..cache.fingerprint import is_registered, uncovered_fields
from ..substrate.relational.algebra import Plan
from .diagnostics import ERROR, AnalysisReport, Diagnostic
from .plan_analyzer import is_checked


def plan_subclasses() -> tuple[type, ...]:
    """Every (transitive) subclass of :class:`Plan` currently defined."""
    seen: list[type] = []
    stack = list(Plan.__subclasses__())
    while stack:
        cls = stack.pop()
        if cls not in seen:
            seen.append(cls)
            stack.extend(cls.__subclasses__())
    return tuple(sorted(seen, key=lambda cls: cls.__qualname__))


def fingerprint_completeness() -> list[Diagnostic]:
    """Fingerprint registration + field coverage for every Plan subclass."""
    diags: list[Diagnostic] = []
    for cls in plan_subclasses():
        where = f"{cls.__module__}.{cls.__qualname__}"
        if not is_registered(cls):
            diags.append(Diagnostic(
                "PLAN005", ERROR,
                f"Plan subclass {cls.__name__!r} has no fingerprint "
                f"registered in repro.cache.fingerprint; its results "
                f"can never be cached and a future registration by "
                f"isinstance would alias",
                path=where,
            ))
            continue
        gaps = uncovered_fields(cls)
        if gaps:
            diags.append(Diagnostic(
                "PLAN005", ERROR,
                f"fingerprint for {cls.__name__!r} does not cover "
                f"field(s) {sorted(gaps)}; two plans differing only "
                f"there would share a cache entry",
                path=where,
            ))
    return diags


def analyzer_completeness() -> list[Diagnostic]:
    """Analyzer-dispatch registration for every Plan subclass."""
    diags: list[Diagnostic] = []
    for cls in plan_subclasses():
        if not is_checked(cls):
            diags.append(Diagnostic(
                "PLAN005", ERROR,
                f"Plan subclass {cls.__name__!r} has no analyzer check "
                f"registered in repro.analysis.plan_analyzer",
                path=f"{cls.__module__}.{cls.__qualname__}",
            ))
    return diags


def self_check() -> AnalysisReport:
    """The full completeness report (empty = every operator is covered)."""
    return AnalysisReport(tuple(fingerprint_completeness() + analyzer_completeness()))
