"""Diagnostics: the shared finding type for both analysis levels.

The plan analyzer (level 1) and the repo linter (level 2) both report
:class:`Diagnostic` records — a stable code, a severity, a message, and a
location. Plan diagnostics locate themselves by *operator* (the offending
plan node's ``describe()``); lint diagnostics by *path* (``file:line``).

Codes
-----
Plan analyzer (``PLAN``):

- ``PLAN001`` — unknown or wrong-kind source (scan of a missing relation,
  scan of a service, dependent join on a missing service);
- ``PLAN002`` — unknown attribute (projection, rename, selection
  predicate, join key, grouping key, aggregate input, binding source);
- ``PLAN003`` — unsatisfiable binding pattern (service inputs left
  unbound by the dependent-join input map or the source-graph node);
- ``PLAN004`` — provenance unsoundness (a leaf source unreachable from
  ``Plan.sources()``: some node overrides ``_collect_sources`` badly);
- ``PLAN005`` — unregistered plan node type (no analyzer dispatch and/or
  no complete fingerprint coverage);
- ``PLAN101`` — potential cartesian blowup (warning);
- ``PLAN102`` — unbounded/over-wide union (warning);
- ``PLAN103`` — degenerate operator parameter (warning: threshold that
  links everything, non-positive limit).

Repo linter (``REPRO``): see :mod:`repro.analysis.lint.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanAnalysisError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code, severity, message, and where it points."""

    code: str
    severity: str
    message: str
    operator: str | None = None   # plan diagnostics: offending node describe()
    path: str | None = None       # lint diagnostics: "file:line"

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self) -> str:
        location = self.path or self.operator or "<plan>"
        return f"{location}: {self.severity} {self.code}: {self.message}"


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analysis pass: every diagnostic, split by severity."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        """True when no *error* was found (warnings do not block)."""
        return not self.errors

    def raise_if_errors(self) -> None:
        """Raise :class:`PlanAnalysisError` carrying every error found."""
        errors = self.errors
        if errors:
            summary = "; ".join(d.render() for d in errors[:3])
            if len(errors) > 3:
                summary += f" (+{len(errors) - 3} more)"
            raise PlanAnalysisError(
                f"plan failed static analysis with {len(errors)} error(s): {summary}",
                diagnostics=errors,
            )

    def render(self) -> str:
        if not self.diagnostics:
            return "analysis: clean"
        return "\n".join(d.render() for d in self.diagnostics)
