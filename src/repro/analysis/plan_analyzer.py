"""Level-1 static analysis: semantic checks over the ``Plan`` algebra.

Given a plan plus the catalog (and, when available, the integration
learner's source graph), :class:`PlanAnalyzer` re-derives every operator's
output schema bottom-up and checks, *before anything executes*:

- **schema/arity soundness** — every attribute a ``Project``, ``Rename``,
  ``Select`` predicate, ``Join`` key, ``GroupBy`` key/aggregate, or
  dependent-join binding references actually exists at that point in the
  tree (``PLAN002``), and every scanned source / invoked service exists in
  the catalog with the right kind (``PLAN001``);
- **binding-pattern satisfiability** — a ``DependentJoin`` must bind every
  input its service's binding pattern (and its source-graph node, the
  paper's Section-4 binding restrictions) declares (``PLAN003``);
- **provenance soundness** — the set of leaves the analyzer visits must be
  exactly ``plan.sources()``; a node overriding ``_collect_sources``
  inconsistently would silently break explanation and trust feedback
  (``PLAN004``);
- **dispatch completeness** — every node type must be known to both the
  analyzer and the cache fingerprint registry (``PLAN005``), so new
  operators cannot slip past either;
- **resource warnings** — unblocked record-link joins whose estimated
  cross product exceeds ``ANALYSIS.max_link_pairs`` (``PLAN101``),
  over-wide unions (``PLAN102``), and degenerate parameters such as a
  link threshold that matches everything or a non-positive limit
  (``PLAN103``).

The analyzer never executes services or scans rows; row-count estimates
come from catalog relation sizes and are deliberately rough upper bounds
(warnings only). Errors are reserved for plans that are *wrong*, so every
plan the integration learner legitimately produces passes clean.

Schema inference is best-effort: when a subtree's schema cannot be
derived (unknown source, unregistered node), checks that would need it
are skipped instead of cascading false positives.
"""

from __future__ import annotations

from typing import Callable

from ..substrate.relational.aggregates import GroupBy
from ..substrate.relational.algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    Scan,
    Select,
    Union,
)
from ..substrate.relational.catalog import Catalog
from ..substrate.relational.predicates import (
    And,
    AttrCompare,
    Compare,
    Contains,
    IsNull,
    Not,
    NotNull,
    Or,
    Predicate,
)
from ..substrate.relational.schema import Schema, SchemaError
from ..cache.fingerprint import is_registered
from .config import ANALYSIS
from .diagnostics import ERROR, WARNING, AnalysisReport, Diagnostic

#: Exact-type checker dispatch (mirrors the fingerprint registry's shape).
_CHECKERS: dict[type, Callable] = {}


def _checks(node_type: type):
    """Register the analyzer method for *node_type* (exact-type dispatch)."""

    def wrap(fn: Callable) -> Callable:
        _CHECKERS[node_type] = fn
        return fn

    return wrap


def checked_types() -> tuple[type, ...]:
    """Every plan node type with a registered analyzer check."""
    return tuple(_CHECKERS)


def is_checked(node_type: type) -> bool:
    return node_type in _CHECKERS


def _uncheck(node_type: type) -> None:
    """Remove a registration (test hook for synthetic node types)."""
    _CHECKERS.pop(node_type, None)


def predicate_attributes(predicate: Predicate) -> frozenset[str]:
    """Every attribute name a predicate tree references.

    Unknown predicate subclasses contribute nothing (they cannot be
    introspected statically); the standard combinators recurse.
    """
    out: set[str] = set()
    _collect_predicate_attrs(predicate, out)
    return frozenset(out)


def _collect_predicate_attrs(predicate: Predicate, out: set[str]) -> None:
    if isinstance(predicate, (Compare, IsNull, NotNull, Contains)):
        out.add(predicate.attribute)
    elif isinstance(predicate, AttrCompare):
        out.add(predicate.left)
        out.add(predicate.right)
    elif isinstance(predicate, (And, Or)):
        for part in predicate.parts:
            _collect_predicate_attrs(part, out)
    elif isinstance(predicate, Not):
        _collect_predicate_attrs(predicate.inner, out)


class PlanAnalyzer:
    """Checks plans against a catalog (and optionally a source graph)."""

    def __init__(self, catalog: Catalog, graph=None):
        self.catalog = catalog
        #: the integration learner's :class:`SourceGraph`, when one exists;
        #: used to verify dependent joins against node binding patterns.
        self.graph = graph
        #: when set (by :meth:`infer_schemas`), every node's derived output
        #: schema is recorded here, keyed on ``id(node)``.
        self._schemas: dict[int, Schema | None] | None = None

    def infer_schemas(self, plan: Plan) -> dict[int, Schema | None]:
        """Bottom-up output-schema inference for every node of *plan*.

        Returns ``id(node) -> Schema`` (``None`` where inference failed:
        unknown source, unregistered node type, schema error). Diagnostics
        are discarded — this is the inference half of :meth:`check`, reused
        by the columnar evaluator to precompile per-operator closures with
        attribute positions resolved once per plan.
        """
        self._schemas = {}
        try:
            self._infer(plan, [], set())
            return self._schemas
        finally:
            self._schemas = None

    def check(self, plan: Plan) -> AnalysisReport:
        """Analyze *plan*; returns every diagnostic found (never raises)."""
        diags: list[Diagnostic] = []
        leaves: set[str] = set()
        self._infer(plan, diags, leaves)
        declared = set(plan.sources())
        for name in sorted(leaves - declared):
            diags.append(Diagnostic(
                "PLAN004", ERROR,
                f"leaf source {name!r} is not reported by sources(); "
                f"provenance and trust feedback over it would be unsound",
                operator=plan.describe(),
            ))
        for name in sorted(declared - leaves):
            diags.append(Diagnostic(
                "PLAN004", ERROR,
                f"sources() reports {name!r} but no leaf in the tree reads it",
                operator=plan.describe(),
            ))
        return AnalysisReport(tuple(diags))

    # -- traversal -----------------------------------------------------------
    def _infer(
        self, plan: Plan, diags: list[Diagnostic], leaves: set[str]
    ) -> Schema | None:
        """Bottom-up schema inference, appending diagnostics as it goes."""
        checker = _CHECKERS.get(type(plan))
        if checker is None:
            diags.append(Diagnostic(
                "PLAN005", ERROR,
                f"plan node type {type(plan).__name__!r} has no analyzer "
                f"check registered (repro.analysis.plan_analyzer)",
                operator=plan.describe(),
            ))
            if not is_registered(type(plan)):
                diags.append(Diagnostic(
                    "PLAN005", ERROR,
                    f"plan node type {type(plan).__name__!r} has no cache "
                    f"fingerprint registered (repro.cache.fingerprint)",
                    operator=plan.describe(),
                ))
            for child in plan.children():
                self._infer(child, diags, leaves)
            if self._schemas is not None:
                self._schemas[id(plan)] = None
            return None
        if not is_registered(type(plan)):
            diags.append(Diagnostic(
                "PLAN005", ERROR,
                f"plan node type {type(plan).__name__!r} has no cache "
                f"fingerprint registered (repro.cache.fingerprint)",
                operator=plan.describe(),
            ))
        schema = checker(self, plan, diags, leaves)
        if self._schemas is not None:
            self._schemas[id(plan)] = schema
        return schema

    def _missing_attr(
        self, plan: Plan, name: str, schema: Schema, role: str
    ) -> Diagnostic:
        return Diagnostic(
            "PLAN002", ERROR,
            f"{role} references unknown attribute {name!r} "
            f"(available: {', '.join(schema.names)})",
            operator=plan.describe(),
        )

    # -- row-count estimation (warnings only) --------------------------------
    def _estimate_rows(self, plan: Plan) -> int | None:
        """A rough upper bound on the node's output cardinality, if knowable."""
        if isinstance(plan, Scan):
            if plan.source in self.catalog and not self.catalog.is_service(plan.source):
                return len(self.catalog.relation(plan.source))
            return None
        if isinstance(plan, (Select, Project, Rename, Distinct)):
            return self._estimate_rows(plan.child)
        if isinstance(plan, Limit):
            child = self._estimate_rows(plan.child)
            bound = max(plan.count, 0)
            return bound if child is None else min(child, bound)
        if isinstance(plan, (DependentJoin, GroupBy)):
            return self._estimate_rows(plan.child)
        if isinstance(plan, Union):
            total = 0
            for part in plan.parts:
                estimate = self._estimate_rows(part)
                if estimate is None:
                    return None
                total += estimate
            return total
        if isinstance(plan, (Join, RecordLinkJoin)):
            left = self._estimate_rows(plan.left)
            right = self._estimate_rows(plan.right)
            if left is None or right is None:
                return None
            return left * right
        return None

    # -- per-operator checks --------------------------------------------------
    @_checks(Scan)
    def _check_scan(self, plan: Scan, diags, leaves) -> Schema | None:
        leaves.add(plan.source)
        if plan.source not in self.catalog:
            diags.append(Diagnostic(
                "PLAN001", ERROR,
                f"scan of unknown source {plan.source!r} "
                f"(catalog has: {', '.join(self.catalog.source_names()) or 'nothing'})",
                operator=plan.describe(),
            ))
            return None
        if self.catalog.is_service(plan.source):
            diags.append(Diagnostic(
                "PLAN001", ERROR,
                f"{plan.source!r} is a service with binding restrictions; "
                f"Scan reads base relations — use DependentJoin to invoke it",
                operator=plan.describe(),
            ))
            return None
        return self.catalog.relation(plan.source).schema

    @_checks(Select)
    def _check_select(self, plan: Select, diags, leaves) -> Schema | None:
        schema = self._infer(plan.child, diags, leaves)
        if schema is not None:
            for name in sorted(predicate_attributes(plan.predicate)):
                if name not in schema:
                    diags.append(self._missing_attr(plan, name, schema, "selection predicate"))
        return schema

    @_checks(Project)
    def _check_project(self, plan: Project, diags, leaves) -> Schema | None:
        schema = self._infer(plan.child, diags, leaves)
        if schema is None:
            return None
        present = [name for name in plan.names if name in schema]
        for name in plan.names:
            if name not in schema:
                diags.append(self._missing_attr(plan, name, schema, "projection"))
        return schema.project(present)

    @_checks(Rename)
    def _check_rename(self, plan: Rename, diags, leaves) -> Schema | None:
        schema = self._infer(plan.child, diags, leaves)
        if schema is None:
            return None
        mapping = {}
        for old, new in plan.mapping:
            if old not in schema:
                diags.append(self._missing_attr(plan, old, schema, "rename"))
            else:
                mapping[old] = new
        try:
            return schema.rename(mapping)
        except SchemaError as exc:
            diags.append(Diagnostic(
                "PLAN002", ERROR,
                f"rename produces an invalid schema: {exc}",
                operator=plan.describe(),
            ))
            return None

    @_checks(Join)
    def _check_join(self, plan: Join, diags, leaves) -> Schema | None:
        left = self._infer(plan.left, diags, leaves)
        right = self._infer(plan.right, diags, leaves)
        for left_attr, right_attr in plan.conditions:
            if left is not None and left_attr not in left:
                diags.append(self._missing_attr(plan, left_attr, left, "join key (left side)"))
            if right is not None and right_attr not in right:
                diags.append(self._missing_attr(plan, right_attr, right, "join key (right side)"))
        if left is None or right is None:
            return None
        right_join_attrs = {r for _, r in plan.conditions}
        remaining = [attr for attr in right if attr.name not in right_join_attrs]
        return left.concat(Schema(remaining), disambiguate=True)

    @_checks(DependentJoin)
    def _check_dependentjoin(self, plan: DependentJoin, diags, leaves) -> Schema | None:
        schema = self._infer(plan.child, diags, leaves)
        leaves.add(plan.service)
        if plan.service not in self.catalog:
            diags.append(Diagnostic(
                "PLAN001", ERROR,
                f"dependent join on unknown service {plan.service!r}",
                operator=plan.describe(),
            ))
            return None
        if not self.catalog.is_service(plan.service):
            diags.append(Diagnostic(
                "PLAN001", ERROR,
                f"{plan.service!r} is a base relation, not a service; "
                f"use Join/Scan instead of DependentJoin",
                operator=plan.describe(),
            ))
            return None
        service = self.catalog.service(plan.service)
        mapped = {service_input for service_input, _ in plan.input_map}
        missing = [name for name in service.input_names if name not in mapped]
        if missing:
            diags.append(Diagnostic(
                "PLAN003", ERROR,
                f"binding pattern unsatisfied: service {plan.service!r} "
                f"requires inputs {list(service.input_names)} but "
                f"{missing} are never bound by the input map",
                operator=plan.describe(),
            ))
        for extra in sorted(mapped - set(service.input_names)):
            diags.append(Diagnostic(
                "PLAN003", WARNING,
                f"input map binds {extra!r}, which is not an input of "
                f"service {plan.service!r} (inputs: {list(service.input_names)})",
                operator=plan.describe(),
            ))
        if schema is not None:
            for service_input, child_attr in plan.input_map:
                if child_attr not in schema:
                    diags.append(self._missing_attr(
                        plan, child_attr, schema,
                        f"binding of service input {service_input!r}",
                    ))
        # The source graph carries the paper's binding restrictions too;
        # when the learner's graph knows this service, cross-check it (the
        # catalog and graph can drift apart only through a bug).
        if self.graph is not None and self.graph.has_node(plan.service):
            node = self.graph.node(plan.service)
            graph_missing = [name for name in node.inputs if name not in mapped]
            if graph_missing:
                diags.append(Diagnostic(
                    "PLAN003", ERROR,
                    f"source-graph node {plan.service!r} declares inputs "
                    f"{list(node.inputs)}; {graph_missing} are never bound",
                    operator=plan.describe(),
                ))
        if schema is None:
            return None
        outputs = [service.schema.attribute(name) for name in service.output_names]
        return schema.concat(Schema(outputs), disambiguate=True)

    @_checks(RecordLinkJoin)
    def _check_recordlinkjoin(self, plan: RecordLinkJoin, diags, leaves) -> Schema | None:
        left = self._infer(plan.left, diags, leaves)
        right = self._infer(plan.right, diags, leaves)
        if plan.threshold <= 0.0:
            diags.append(Diagnostic(
                "PLAN103", WARNING,
                f"link threshold {plan.threshold:g} accepts every pair; "
                f"the join degenerates to a cross product",
                operator=plan.describe(),
            ))
        try:
            block_pairs = plan.linker.block_attribute_pairs()
        except Exception:  # lint: allow=REPRO003 -- defensive: linker is user code
            block_pairs = None
        if block_pairs:
            for left_attr, right_attr in block_pairs:
                if left is not None and left_attr not in left:
                    diags.append(Diagnostic(
                        "PLAN002", WARNING,
                        f"blocking key {left_attr!r} missing from the left "
                        f"input (available: {', '.join(left.names)})",
                        operator=plan.describe(),
                    ))
                if right is not None and right_attr not in right:
                    diags.append(Diagnostic(
                        "PLAN002", WARNING,
                        f"blocking key {right_attr!r} missing from the right "
                        f"input (available: {', '.join(right.names)})",
                        operator=plan.describe(),
                    ))
        else:
            left_rows = self._estimate_rows(plan.left)
            right_rows = self._estimate_rows(plan.right)
            if (
                left_rows is not None
                and right_rows is not None
                and left_rows * right_rows > ANALYSIS.max_link_pairs
            ):
                diags.append(Diagnostic(
                    "PLAN101", WARNING,
                    f"record-link join scores every pair (~{left_rows}x"
                    f"{right_rows} = {left_rows * right_rows} comparisons, "
                    f"over the {ANALYSIS.max_link_pairs} limit) and the "
                    f"linker derives no blocking keys",
                    operator=plan.describe(),
                ))
        if left is None or right is None:
            return None
        return left.concat(right, disambiguate=True)

    @_checks(Union)
    def _check_union(self, plan: Union, diags, leaves) -> Schema | None:
        if len(plan.parts) > ANALYSIS.max_union_parts:
            diags.append(Diagnostic(
                "PLAN102", WARNING,
                f"union of {len(plan.parts)} inputs (over the "
                f"{ANALYSIS.max_union_parts} limit); consider bounding the "
                f"candidate set before unioning",
                operator=plan.describe(),
            ))
        merged: Schema | None = None
        complete = True
        for part in plan.parts:
            schema = self._infer(part, diags, leaves)
            if schema is None:
                complete = False
            elif merged is None:
                merged = schema
            else:
                merged = merged.merge_for_union(schema)
        return merged if complete else None

    @_checks(Distinct)
    def _check_distinct(self, plan: Distinct, diags, leaves) -> Schema | None:
        return self._infer(plan.child, diags, leaves)

    @_checks(Limit)
    def _check_limit(self, plan: Limit, diags, leaves) -> Schema | None:
        if plan.count <= 0:
            diags.append(Diagnostic(
                "PLAN103", WARNING,
                f"limit of {plan.count} rows produces an empty result",
                operator=plan.describe(),
            ))
        return self._infer(plan.child, diags, leaves)

    @_checks(GroupBy)
    def _check_groupby(self, plan: GroupBy, diags, leaves) -> Schema | None:
        schema = self._infer(plan.child, diags, leaves)
        if schema is None:
            return None
        ok = True
        for key in plan.keys:
            if key not in schema:
                diags.append(self._missing_attr(plan, key, schema, "grouping key"))
                ok = False
        for spec in plan.aggregates:
            if spec.attribute not in schema:
                diags.append(self._missing_attr(
                    plan, spec.attribute, schema, f"aggregate {spec.fn}()"
                ))
                ok = False
        if not ok:
            return None
        try:
            return plan.output_schema(self.catalog)
        except Exception:  # lint: allow=REPRO003 -- child schema re-derivation may differ
            return None
