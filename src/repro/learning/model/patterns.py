"""Pattern induction and distribution comparison.

A learned semantic type is represented as *distributions of patterns* at
several generalization levels. Recognition does not require "a perfect
match. Rather, the system evaluates whether the distribution of matched
patterns is statistically similar to the matches on the training data"
(Section 3.2). We compare distributions with cosine similarity and (when
sample sizes allow) a chi-square goodness-of-fit check.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ...util.text import normalize, tokenize
from .tokens import LEVEL_CLASS, LEVEL_KIND, mixed_symbols, value_symbols

Pattern = tuple[str, ...]


def learn_constants(values: Sequence[str], min_fraction: float = 0.1) -> frozenset[str]:
    """Surface tokens appearing in at least *min_fraction* of values.

    These become CONST symbols in the mixed pattern language — the stable
    scaffolding of a format (street suffixes, area-code parentheses, state
    abbreviations).
    """
    if not values:
        return frozenset()
    document_frequency: Counter[str] = Counter()
    for value in values:
        seen = {token.text for token in tokenize(str(value))}
        document_frequency.update(seen)
    threshold = max(2, math.ceil(min_fraction * len(values)))
    if len(values) == 1:
        threshold = 1
    return frozenset(
        token for token, count in document_frequency.items() if count >= threshold
    )


@dataclass(frozen=True)
class PatternDistribution:
    """A normalized histogram over patterns."""

    counts: tuple[tuple[Pattern, int], ...]
    total: int

    @staticmethod
    def from_patterns(patterns: Iterable[Pattern]) -> "PatternDistribution":
        counter = Counter(patterns)
        items = tuple(sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])))
        return PatternDistribution(counts=items, total=sum(counter.values()))

    def as_dict(self) -> dict[Pattern, float]:
        if self.total == 0:
            return {}
        return {pattern: count / self.total for pattern, count in self.counts}

    def top(self, k: int = 5) -> list[Pattern]:
        return [pattern for pattern, _ in self.counts[:k]]

    def cosine(self, other: "PatternDistribution") -> float:
        """Cosine similarity between the two normalized histograms."""
        a = self.as_dict()
        b = other.as_dict()
        if not a or not b:
            return 0.0
        dot = sum(a[p] * b.get(p, 0.0) for p in a)
        norm_a = math.sqrt(sum(v * v for v in a.values()))
        norm_b = math.sqrt(sum(v * v for v in b.values()))
        if norm_a == 0 or norm_b == 0:
            return 0.0
        return dot / (norm_a * norm_b)

    def coverage(self, other: "PatternDistribution") -> float:
        """Fraction of *other*'s mass whose patterns were seen in training."""
        known = {pattern for pattern, _ in self.counts}
        b = other.as_dict()
        return sum(mass for pattern, mass in b.items() if pattern in known)

    def chi_square_statistic(self, observed: "PatternDistribution") -> float:
        """Chi-square statistic of *observed* counts vs this expected dist.

        Unseen-pattern mass is pooled into a single smoothed "other" cell so
        novel patterns penalize but do not produce infinities.
        """
        expected = self.as_dict()
        if not expected or observed.total == 0:
            return float("inf")
        smoothing = 0.5
        statistic = 0.0
        other_observed = 0
        for pattern, count in observed.counts:
            if pattern in expected:
                expected_count = expected[pattern] * observed.total
                statistic += (count - expected_count) ** 2 / max(expected_count, smoothing)
            else:
                other_observed += count
        statistic += other_observed**2 / smoothing if other_observed else 0.0
        return statistic


@dataclass(frozen=True)
class TypeSignature:
    """The full learned representation of one semantic type's format."""

    constants: frozenset[str]
    mixed: PatternDistribution      # constants + class symbols
    class_level: PatternDistribution
    kind_level: PatternDistribution
    n_values: int
    mean_length: float
    vocabulary: frozenset[str] = frozenset()  # normalized full training values

    @staticmethod
    def from_values(values: Sequence[str]) -> "TypeSignature":
        values = [str(value) for value in values]
        constants = learn_constants(values)
        mixed = PatternDistribution.from_patterns(
            mixed_symbols(value, constants) for value in values
        )
        class_level = PatternDistribution.from_patterns(
            value_symbols(value, LEVEL_CLASS) for value in values
        )
        kind_level = PatternDistribution.from_patterns(
            value_symbols(value, LEVEL_KIND) for value in values
        )
        lengths = [len(value) for value in values] or [0]
        return TypeSignature(
            constants=constants,
            mixed=mixed,
            class_level=class_level,
            kind_level=kind_level,
            n_values=len(values),
            mean_length=sum(lengths) / len(lengths),
            vocabulary=frozenset(normalize(value) for value in values),
        )

    @property
    def closedness(self) -> float:
        """1 - distinct/total over training values.

        Near 1 for closed vocabularies (a handful of city names repeated
        many times); near 0 for open types (streets, person names).
        """
        if self.n_values == 0:
            return 0.0
        return 1.0 - len(self.vocabulary) / self.n_values

    def merged_with(self, values: Sequence[str]) -> "TypeSignature":
        """Refine with additional training data (Section 3.2: "patterns can
        be refined over time as additional training data becomes available").

        Re-derives the signature from the union of implied and new samples by
        replaying stored counts; counts are exact because we keep histograms.
        """
        new = TypeSignature.from_values(values)
        return TypeSignature(
            constants=self.constants | new.constants,
            mixed=_merge(self.mixed, new.mixed),
            class_level=_merge(self.class_level, new.class_level),
            kind_level=_merge(self.kind_level, new.kind_level),
            n_values=self.n_values + new.n_values,
            mean_length=(
                self.mean_length * self.n_values + new.mean_length * new.n_values
            )
            / max(self.n_values + new.n_values, 1),
            vocabulary=self.vocabulary | new.vocabulary,
        )

    def similarity(self, values: Sequence[str]) -> float:
        """Score how well a candidate column matches this type, in [0, 1].

        Blends cosine similarity at the three levels (specific levels count
        more when they match) with training-pattern coverage.
        """
        values = [str(value) for value in values]
        if not values:
            return 0.0
        candidate_mixed = PatternDistribution.from_patterns(
            mixed_symbols(value, self.constants) for value in values
        )
        candidate_class = PatternDistribution.from_patterns(
            value_symbols(value, LEVEL_CLASS) for value in values
        )
        candidate_kind = PatternDistribution.from_patterns(
            value_symbols(value, LEVEL_KIND) for value in values
        )
        mixed_score = self.mixed.cosine(candidate_mixed)
        class_score = self.class_level.cosine(candidate_class)
        kind_score = self.kind_level.cosine(candidate_kind)
        coverage = self.class_level.coverage(candidate_class)
        const_hits = self.constant_hit_rate(values)
        vocab_score = self.vocabulary_score(values)
        # For closed vocabularies, membership is stronger evidence than the
        # exact histogram over members (which shifts from source to source),
        # so weight shifts from the mixed-pattern cosine to vocabulary.
        shift = 0.15 * self.closedness if self.closedness >= 0.75 else 0.0
        score = (
            (0.25 - shift) * mixed_score
            + 0.15 * class_score
            + 0.05 * kind_score
            + 0.15 * coverage
            + 0.15 * const_hits
            + (0.25 + shift) * vocab_score
        )
        return max(0.0, min(1.0, score))

    def vocabulary_score(self, values: Sequence[str]) -> float:
        """Vocabulary evidence for the candidate column, in [0, 1].

        For a *closed* training vocabulary (high :attr:`closedness`) the
        candidate's in-vocabulary rate is direct evidence — hits argue for
        the type, misses argue against. For an *open* vocabulary the feature
        is uninformative, so it returns a neutral 0.5: an open type neither
        gains nor loses from unseen values.
        """
        closed = self.closedness
        if closed < 0.75:
            return 0.5
        values = [str(value) for value in values]
        if not values:
            return 0.0
        hits = sum(1 for value in values if normalize(value) in self.vocabulary)
        return min(1.0, (hits / len(values)) / closed)

    def constant_hit_rate(self, values: Sequence[str]) -> float:
        """Fraction of candidate tokens drawn from the learned constant set.

        Closed-vocabulary types (cities, states, street suffixes) learn their
        vocabulary as constants; a candidate column reusing that vocabulary
        is strong evidence for the type, and distinguishes e.g. ``PR-City``
        from ``PR-Name`` when both share the CapWord-CapWord shape.
        """
        if not self.constants:
            return 0.0
        total = hits = 0
        for value in values:
            for token in tokenize(str(value)):
                total += 1
                if token.text in self.constants:
                    hits += 1
        return hits / total if total else 0.0


def _merge(a: PatternDistribution, b: PatternDistribution) -> PatternDistribution:
    counter: Counter[Pattern] = Counter(dict(a.counts))
    counter.update(dict(b.counts))
    items = tuple(sorted(counter.items(), key=lambda kv: (-kv[1], kv[0])))
    return PatternDistribution(counts=items, total=a.total + b.total)
