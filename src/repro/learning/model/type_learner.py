"""The semantic-type half of the model learner.

Section 3.2: learning has "a learning phase and a recognition phase". The
learner keeps a registry of :class:`LearnedType`s; ``recognize`` produces "a
ranked list of hypotheses for the semantic type of each field", the top one
being what the workspace proposes in the column-header dropdown (the
``PR-Street`` / ``PR-City`` suggestions of Figure 1). Users can define a new
type on the fly, and "once the system learns a new semantic type, this type
will be immediately available in the same user session".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ...errors import LearningError
from ...obs import METRICS, TRACER
from ...substrate.relational.schema import SemanticType
from ...util.text import clean_cell
from .patterns import TypeSignature


@dataclass
class LearnedType:
    """A semantic type plus its learned pattern signature."""

    semantic_type: SemanticType
    signature: TypeSignature

    @property
    def name(self) -> str:
        return self.semantic_type.name


@dataclass(frozen=True)
class TypeHypothesis:
    """One ranked recognition hypothesis for a column."""

    semantic_type: SemanticType
    score: float

    def __str__(self) -> str:
        return f"{self.semantic_type}({self.score:.3f})"


class SemanticTypeLearner:
    """Registry + learner + recognizer for semantic types."""

    def __init__(self, recognition_threshold: float = 0.5):
        self._types: dict[str, LearnedType] = {}
        self.recognition_threshold = recognition_threshold

    # -- learning phase -----------------------------------------------------
    def learn(self, semantic_type: SemanticType | str, values: Sequence[str]) -> LearnedType:
        """Learn (or refine) a type from training *values*.

        A string name creates a new user-defined type on the fly.
        """
        if isinstance(semantic_type, str):
            semantic_type = SemanticType(semantic_type, parent="PR-Any")
        if not values:
            raise LearningError(
                f"cannot learn type {semantic_type}: no training values given"
            )
        total = len(values)
        values = [clean_cell(str(value)) for value in values]
        values = [value for value in values if value]
        if not values:
            raise LearningError(
                f"cannot learn type {semantic_type}: all {total} training "
                f"values are empty or whitespace-only (including NBSP and "
                f"zero-width characters)"
            )
        existing = self._types.get(semantic_type.name)
        with TRACER.span("types.learn") as span, METRICS.timer("types.learn_ms"):
            if existing is None:
                learned = LearnedType(semantic_type, TypeSignature.from_values(values))
            else:
                learned = replace(existing, signature=existing.signature.merged_with(values))
            if span.is_recording():
                span.set("type", semantic_type.name)
                span.set("values", len(values))
                span.set("refined", existing is not None)
        METRICS.inc("types.learn_calls")
        self._types[semantic_type.name] = learned
        return learned

    def forget(self, name: str) -> None:
        self._types.pop(name, None)

    def known_types(self) -> list[str]:
        return sorted(self._types)

    def get(self, name: str) -> LearnedType:
        try:
            return self._types[name]
        except KeyError:
            raise LearningError(f"no learned type named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._types

    # -- recognition phase --------------------------------------------------
    def recognize(self, values: Sequence[str], top_k: int | None = None) -> list[TypeHypothesis]:
        """Ranked type hypotheses for a column of *values*.

        Only hypotheses at or above ``recognition_threshold`` are returned;
        an empty list means "unknown type — invite the user to define one".
        """
        values = [clean_cell(str(value)) for value in values]
        values = [value for value in values if value]
        if not values:
            # Nothing recognizable: empty / all-whitespace columns never
            # match a learned signature, and must not crash the pipeline.
            return []
        METRICS.inc("types.recognize_calls")
        with METRICS.timer("types.recognize_ms"):
            hypotheses = [
                TypeHypothesis(learned.semantic_type, learned.signature.similarity(values))
                for learned in self._types.values()
            ]
        hypotheses = [
            hypothesis
            for hypothesis in hypotheses
            if hypothesis.score >= self.recognition_threshold
        ]
        hypotheses.sort(key=lambda h: (-h.score, h.semantic_type.name))
        if top_k is not None:
            hypotheses = hypotheses[:top_k]
        return hypotheses

    def best_type(self, values: Sequence[str]) -> SemanticType | None:
        """The top hypothesis's type, or None below threshold."""
        ranked = self.recognize(values, top_k=1)
        return ranked[0].semantic_type if ranked else None

    def recognize_table(
        self, columns: Sequence[Sequence[str]], top_k: int = 3
    ) -> list[list[TypeHypothesis]]:
        """Recognize every column of an extracted table (Figure 1 flow)."""
        return [self.recognize(column, top_k=top_k) for column in columns]
