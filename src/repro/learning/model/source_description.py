"""Learning functional source descriptions.

Section 3.2: "the model learner also tries to learn the task that is being
performed by the various sources ... The system describes the new source in
terms of a set of known existing sources and then compares the inputs and
outputs of the new source to the existing sources by executing the new
source and the learned description and comparing the similarity of the
results."

Given a *new* service (or an observed input/output table) and a registry of
known services, the learner enumerates candidate descriptions — a single
known service with an attribute mapping, or a two-step composition — and
scores each by executing it on sample inputs and measuring output agreement.
This enables proposing "replacement sources if a source is down, too slow,
or does not provide a complete set of results".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Any, Mapping, Sequence

from ...errors import LearningError
from ...substrate.services.base import Service
from ...util.text import normalize


def _values_match(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is b
    if isinstance(a, float) or isinstance(b, float):
        try:
            return abs(float(a) - float(b)) <= 1e-6
        except (TypeError, ValueError):
            return False
    return normalize(str(a)) == normalize(str(b))


@dataclass(frozen=True)
class ServiceStep:
    """One step of a description: a known service plus attribute mappings.

    ``input_map`` maps each service input to an attribute of the *new*
    source's schema (its inputs, or outputs of earlier steps); ``output_map``
    maps service outputs to the new source's output attributes they explain.
    """

    service_name: str
    input_map: tuple[tuple[str, str], ...]
    output_map: tuple[tuple[str, str], ...]

    def __str__(self) -> str:
        ins = ", ".join(f"{svc}={src}" for svc, src in self.input_map)
        outs = ", ".join(f"{svc}->{dst}" for svc, dst in self.output_map)
        return f"{self.service_name}({ins}) yields [{outs}]"


@dataclass(frozen=True)
class SourceDescription:
    """A candidate functional description with its empirical agreement score."""

    steps: tuple[ServiceStep, ...]
    score: float
    samples: int

    def __str__(self) -> str:
        chain = " |> ".join(str(step) for step in self.steps)
        return f"[{self.score:.2f} over {self.samples} samples] {chain}"


class SourceDescriptionLearner:
    """Relates a new source to compositions of known services."""

    def __init__(self, known: Sequence[Service], max_inputs: int = 3):
        self.known = list(known)
        self.max_inputs = max_inputs

    # -- public API ----------------------------------------------------------
    def describe(
        self,
        examples: Sequence[Mapping[str, Any]],
        input_names: Sequence[str],
        output_names: Sequence[str],
        min_score: float = 0.5,
        allow_composition: bool = True,
    ) -> list[SourceDescription]:
        """Rank descriptions of a source observed as I/O *examples*.

        Each example row carries both the input and output attribute values
        (obtained by executing the new source on sample inputs).
        """
        if not examples:
            raise LearningError("need at least one I/O example to describe a source")
        input_names = list(input_names)
        output_names = list(output_names)
        candidates: list[SourceDescription] = []
        candidates.extend(self._direct_candidates(examples, input_names, output_names))
        if allow_composition:
            candidates.extend(
                self._composed_candidates(examples, input_names, output_names)
            )
        ranked = [c for c in candidates if c.score >= min_score]
        ranked.sort(key=lambda c: (-c.score, len(c.steps), str(c.steps)))
        return ranked

    def describe_service(
        self,
        new_service: Service,
        sample_inputs: Sequence[Mapping[str, Any]],
        min_score: float = 0.5,
    ) -> list[SourceDescription]:
        """Describe a live service by executing it on *sample_inputs*."""
        examples: list[dict[str, Any]] = []
        for inputs in sample_inputs:
            for row in new_service.invoke(inputs):
                examples.append(dict(row))
        if not examples:
            raise LearningError(
                f"service {new_service.name!r} returned nothing on the samples"
            )
        return self.describe(
            examples,
            input_names=new_service.input_names,
            output_names=new_service.output_names,
            min_score=min_score,
        )

    # -- candidate generation -----------------------------------------------------
    def _direct_candidates(
        self,
        examples: Sequence[Mapping[str, Any]],
        input_names: list[str],
        output_names: list[str],
    ) -> list[SourceDescription]:
        out: list[SourceDescription] = []
        for service in self.known:
            if len(service.input_names) > len(input_names):
                continue
            for input_map in self._input_mappings(service, input_names):
                step_outputs = self._score_outputs(service, input_map, examples)
                if step_outputs is None:
                    continue
                output_map, score, samples = self._best_output_map(
                    step_outputs, examples, output_names
                )
                if output_map:
                    out.append(
                        SourceDescription(
                            steps=(
                                ServiceStep(service.name, tuple(input_map.items()), output_map),
                            ),
                            score=score,
                            samples=samples,
                        )
                    )
        return out

    def _composed_candidates(
        self,
        examples: Sequence[Mapping[str, Any]],
        input_names: list[str],
        output_names: list[str],
    ) -> list[SourceDescription]:
        """Two-step chains: outputs of step 1 feed the inputs of step 2."""
        out: list[SourceDescription] = []
        for first in self.known:
            if len(first.input_names) > len(input_names):
                continue
            for first_inputs in self._input_mappings(first, input_names):
                first_rows = self._execute(first, first_inputs, examples)
                if first_rows is None:
                    continue
                extended = [
                    {**dict(example), **{f"__{first.name}.{k}": v for k, v in produced.items()}}
                    for example, produced in zip(examples, first_rows)
                ]
                intermediate_names = [f"__{first.name}.{name}" for name in first.output_names]
                for second in self.known:
                    if second.name == first.name:
                        continue
                    if len(second.input_names) > len(intermediate_names) + len(input_names):
                        continue
                    pool = intermediate_names + input_names
                    for second_inputs in self._input_mappings(second, pool):
                        if not any(src in intermediate_names for src in second_inputs.values()):
                            continue  # not actually a composition
                        second_rows = self._execute(second, second_inputs, extended)
                        if second_rows is None:
                            continue
                        output_map, score, samples = self._best_output_map(
                            second_rows, examples, output_names
                        )
                        if output_map:
                            out.append(
                                SourceDescription(
                                    steps=(
                                        ServiceStep(
                                            first.name,
                                            tuple(first_inputs.items()),
                                            (),
                                        ),
                                        ServiceStep(
                                            second.name,
                                            tuple(second_inputs.items()),
                                            output_map,
                                        ),
                                    ),
                                    score=score,
                                    samples=samples,
                                )
                            )
        return out

    # -- helpers ---------------------------------------------------------------
    def _input_mappings(self, service: Service, pool: Sequence[str]):
        """All injective maps from the service's inputs into *pool* attributes."""
        needed = list(service.input_names)
        if len(needed) > self.max_inputs:
            return
        for chosen in permutations(pool, len(needed)):
            yield dict(zip(needed, chosen))

    def _execute(
        self,
        service: Service,
        input_map: Mapping[str, str],
        examples: Sequence[Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        """Run *service* per example; None if it fails on most examples."""
        rows: list[dict[str, Any]] = []
        hits = 0
        for example in examples:
            inputs = {svc: example.get(src) for svc, src in input_map.items()}
            if any(value is None for value in inputs.values()):
                rows.append({})
                continue
            results = service.invoke(inputs)
            if results:
                hits += 1
                rows.append({name: results[0][name] for name in service.output_names})
            else:
                rows.append({})
        if hits < max(1, len(examples) // 2):
            return None
        return rows

    def _score_outputs(
        self,
        service: Service,
        input_map: Mapping[str, str],
        examples: Sequence[Mapping[str, Any]],
    ) -> list[dict[str, Any]] | None:
        return self._execute(service, input_map, examples)

    def _best_output_map(
        self,
        produced_rows: Sequence[Mapping[str, Any]],
        examples: Sequence[Mapping[str, Any]],
        output_names: Sequence[str],
    ) -> tuple[tuple[tuple[str, str], ...], float, int]:
        """Greedily align produced attributes to the new source's outputs."""
        if not produced_rows:
            return (), 0.0, 0
        produced_names: set[str] = set()
        for row in produced_rows:
            produced_names.update(row.keys())
        mapping: list[tuple[str, str]] = []
        per_output_scores: list[float] = []
        used: set[str] = set()
        for target in output_names:
            best_name, best_score = None, 0.0
            for candidate in sorted(produced_names - used):
                agree = comparisons = 0
                for produced, example in zip(produced_rows, examples):
                    if candidate not in produced:
                        continue
                    comparisons += 1
                    if _values_match(produced[candidate], example.get(target)):
                        agree += 1
                if comparisons == 0:
                    continue
                score = agree / len(examples)
                if score > best_score:
                    best_name, best_score = candidate, score
            if best_name is not None and best_score > 0:
                mapping.append((best_name, target))
                used.add(best_name)
                per_output_scores.append(best_score)
            else:
                per_output_scores.append(0.0)
        if not mapping:
            return (), 0.0, len(examples)
        overall = sum(per_output_scores) / len(output_names)
        return tuple(mapping), overall, len(examples)
