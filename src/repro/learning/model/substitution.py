"""Service substitution: replacing a broken source with an equivalent one.

Section 3.2: learning functional source descriptions "allows the system to
better understand a task being performed by a user and to propose sources
that can fill in gaps for a user ... or even propose replacement sources if
a source is down, too slow, or does not provide a complete set of results."

:func:`find_replacements` ranks catalog services that behave like a target
service (by executing both on sample inputs and comparing outputs, via the
:class:`SourceDescriptionLearner`); :func:`substitute_service` rewrites a
query plan to use the replacement, renaming its outputs back to the
original attribute names so downstream operators are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ...errors import IntegrationError, LearningError
from ...substrate.relational.algebra import (
    DependentJoin,
    Distinct,
    Join,
    Limit,
    Plan,
    Project,
    RecordLinkJoin,
    Rename,
    Select,
    Union,
)
from ...substrate.relational.catalog import Catalog
from .source_description import SourceDescriptionLearner


@dataclass(frozen=True)
class Replacement:
    """A drop-in substitute for a service.

    ``input_map`` maps the replacement's inputs to the original service's
    input names; ``output_map`` maps the replacement's outputs to the
    original output names they reproduce. ``score`` is the measured
    agreement on the probe samples.
    """

    original: str
    substitute: str
    input_map: tuple[tuple[str, str], ...]
    output_map: tuple[tuple[str, str], ...]
    score: float

    def covers_outputs(self, needed: Sequence[str]) -> bool:
        provided = {original for _, original in self.output_map}
        return set(needed) <= provided

    def describe(self) -> str:
        ins = ", ".join(f"{sub}<={orig}" for sub, orig in self.input_map)
        outs = ", ".join(f"{sub}->{orig}" for sub, orig in self.output_map)
        return (
            f"{self.substitute} for {self.original} "
            f"[{self.score:.0%}] inputs({ins}) outputs({outs})"
        )


def find_replacements(
    catalog: Catalog,
    service_name: str,
    sample_inputs: Sequence[Mapping[str, Any]],
    min_score: float = 0.7,
) -> list[Replacement]:
    """Rank single-service substitutes for *service_name*.

    The target service must still be callable to generate probe outputs
    (find replacements *before* the source goes down — e.g. at import time —
    or supply recorded samples).
    """
    target = catalog.service(service_name)
    candidates = [
        service for service in catalog.services() if service.name != service_name
    ]
    if not candidates:
        return []
    learner = SourceDescriptionLearner(candidates)
    try:
        descriptions = learner.describe_service(
            target, sample_inputs, min_score=min_score
        )
    except LearningError:
        return []
    replacements = []
    for description in descriptions:
        if len(description.steps) != 1:
            continue  # compositions cannot be dropped into one DependentJoin
        step = description.steps[0]
        replacements.append(
            Replacement(
                original=service_name,
                substitute=step.service_name,
                input_map=step.input_map,
                output_map=step.output_map,
                score=description.score,
            )
        )
    return replacements


def substitute_service(plan: Plan, replacement: Replacement, catalog: Catalog) -> Plan:
    """Rewrite *plan*, swapping every dependent join on the original service.

    The replacement's outputs are renamed back to the original attribute
    names, so projections, joins, and the workspace above the rewritten
    node are unaffected.
    """
    rewritten = _rewrite(plan, replacement, catalog)
    if rewritten is plan:
        raise IntegrationError(
            f"plan does not use service {replacement.original!r}"
        )
    return rewritten


def _rewrite(plan: Plan, replacement: Replacement, catalog: Catalog) -> Plan:
    if isinstance(plan, DependentJoin):
        child = _rewrite(plan.child, replacement, catalog)
        if plan.service != replacement.original:
            if child is plan.child:
                return plan
            return DependentJoin(child=child, service=plan.service, input_map=plan.input_map)
        # Original input name -> child attribute that supplied it.
        original_inputs = {svc_input: attr for svc_input, attr in plan.input_map}
        new_input_map = []
        for sub_input, orig_input in replacement.input_map:
            if orig_input not in original_inputs:
                raise IntegrationError(
                    f"replacement needs original input {orig_input!r}, which the "
                    f"plan never bound"
                )
            new_input_map.append((sub_input, original_inputs[orig_input]))
        swapped: Plan = DependentJoin(
            child=child,
            service=replacement.substitute,
            input_map=tuple(new_input_map),
        )
        # Rename substitute outputs to the original names; drop extras via
        # projection onto the original node's output schema.
        rename = {sub: orig for sub, orig in replacement.output_map if sub != orig}
        if rename:
            swapped = Rename(swapped, tuple(rename.items()))
        original_schema = plan.output_schema(catalog)
        return Project(swapped, original_schema.names)
    if isinstance(plan, (Select,)):
        child = _rewrite(plan.child, replacement, catalog)
        return plan if child is plan.child else Select(child, plan.predicate)
    if isinstance(plan, Project):
        child = _rewrite(plan.child, replacement, catalog)
        return plan if child is plan.child else Project(child, plan.names)
    if isinstance(plan, Rename):
        child = _rewrite(plan.child, replacement, catalog)
        return plan if child is plan.child else Rename(child, plan.mapping)
    if isinstance(plan, Distinct):
        child = _rewrite(plan.child, replacement, catalog)
        return plan if child is plan.child else Distinct(child)
    if isinstance(plan, Limit):
        child = _rewrite(plan.child, replacement, catalog)
        return plan if child is plan.child else Limit(child, plan.count)
    if isinstance(plan, Join):
        left = _rewrite(plan.left, replacement, catalog)
        right = _rewrite(plan.right, replacement, catalog)
        if left is plan.left and right is plan.right:
            return plan
        return Join(left, right, plan.conditions)
    if isinstance(plan, RecordLinkJoin):
        left = _rewrite(plan.left, replacement, catalog)
        right = _rewrite(plan.right, replacement, catalog)
        if left is plan.left and right is plan.right:
            return plan
        return RecordLinkJoin(left, right, plan.linker, plan.threshold, plan.best_only)
    if isinstance(plan, Union):
        parts = tuple(_rewrite(part, replacement, catalog) for part in plan.parts)
        if all(new is old for new, old in zip(parts, plan.parts)):
            return plan
        return Union(parts)
    return plan
