"""Seed training for the built-in semantic types.

CopyCat ships with types it has "seen previously" (Figure 1's PR-Street /
PR-City suggestions come from prior knowledge). This module trains a
:class:`SemanticTypeLearner` on samples drawn from the synthetic world, so
recognition generalizes to *new* sources that were not part of training.
"""

from __future__ import annotations

import random

from ...data.names import person_name, phone_number, shelter_name
from ...substrate.relational import schema as types
from ...substrate.services.gazetteer import Gazetteer
from ...util.rng import derive_rng, make_rng
from .type_learner import SemanticTypeLearner


def seed_type_learner(
    gazetteer: Gazetteer | None = None,
    samples: int = 60,
    seed: int | random.Random | None = None,
    learner: SemanticTypeLearner | None = None,
) -> SemanticTypeLearner:
    """Train the built-in types from gazetteer-drawn samples.

    The training gazetteer may be (and in tests deliberately is) a
    *different* world from the one being recognized — the paper's robustness
    claim is exactly that recognition works on "new sources of data that may
    not precisely match the original learned distribution of patterns".
    """
    rng = make_rng(seed)
    gazetteer = gazetteer or Gazetteer(n_cities=10, streets_per_city=30, seed=derive_rng(rng, "world"))
    learner = learner or SemanticTypeLearner()

    addresses = gazetteer.sample(min(samples, len(gazetteer)), seed=derive_rng(rng, "sample"))
    learner.learn(types.STREET, [address.street for address in addresses])
    learner.learn(types.CITY, [address.city for address in addresses])
    learner.learn(types.ZIPCODE, [address.zip for address in addresses])
    learner.learn(types.STATE, [address.state for address in addresses] + ["GA", "AL", "TX", "NY", "CA"])
    learner.learn(types.LATITUDE, [f"{address.lat:.6f}" for address in addresses])
    learner.learn(types.LONGITUDE, [f"{address.lon:.6f}" for address in addresses])

    people_rng = derive_rng(rng, "people")
    learner.learn(types.NAME, [person_name(people_rng) for _ in range(samples)])

    place_rng = derive_rng(rng, "places")
    used_places: set[str] = set()
    learner.learn(
        types.PLACE, [shelter_name(place_rng, used_places) for _ in range(samples)]
    )
    learner.learn(types.PHONE, [phone_number(people_rng) for _ in range(samples)])

    date_rng = derive_rng(rng, "dates")
    learner.learn(
        types.DATE,
        [
            f"{date_rng.randint(1,12):02d}/{date_rng.randint(1,28):02d}/200{date_rng.randint(5,9)}"
            for _ in range(samples)
        ],
    )
    money_rng = derive_rng(rng, "money")
    learner.learn(
        types.CURRENCY,
        [f"${money_rng.randint(10, 99999)}.{money_rng.randint(0,99):02d}" for _ in range(samples)],
    )
    url_rng = derive_rng(rng, "urls")
    hosts = ("fema.gov", "redcross.org", "browardschools.com", "example.com")
    learner.learn(
        types.URL,
        [f"http://www.{url_rng.choice(hosts)}/page/{url_rng.randint(1,500)}" for _ in range(samples)],
    )
    return learner
