"""Generalized token symbols for the semantic-type pattern language.

Section 3.2: "These patterns are constructed from a rich hypothesis language
that includes using both the constants in the data fields and generalized
tokens that describe the data, such as capitalized word, 3-digit number,
etc."

Symbols form a specificity hierarchy; every surface token can be described at
three levels:

- level 0 — the **constant** itself (``CONST:Blvd``)
- level 1 — its **class** (``CAPWORD``, ``3DIGIT``, ``DECIMAL``, ``PUNCT:,``)
- level 2 — its coarse **kind** (``WORD``, ``NUMBER``, ``PUNCT``)
"""

from __future__ import annotations

from ...util.text import Token, tokenize

LEVEL_CONST = 0
LEVEL_CLASS = 1
LEVEL_KIND = 2
LEVELS = (LEVEL_CONST, LEVEL_CLASS, LEVEL_KIND)


def classify_word(text: str) -> str:
    """Class symbol for an alphabetic token."""
    if text.isupper():
        return "UPPERWORD" if len(text) > 1 else "CAPLETTER"
    if text[0].isupper() and text[1:].islower():
        return "CAPWORD"
    if text.islower():
        return "LOWERWORD"
    return "MIXEDWORD"


def classify_number(text: str) -> str:
    """Class symbol for a numeric token: length-specific for short integers."""
    if "." in text:
        return "DECIMAL"
    if len(text) <= 5:
        return f"{len(text)}DIGIT"
    return "LONGNUM"


def symbolize(token: Token, level: int) -> str:
    """The symbol describing *token* at generalization *level*."""
    if level == LEVEL_CONST:
        return f"CONST:{token.text}"
    if token.kind == "word":
        return classify_word(token.text) if level == LEVEL_CLASS else "WORD"
    if token.kind == "number":
        return classify_number(token.text) if level == LEVEL_CLASS else "NUMBER"
    # punctuation keeps its surface at class level: delimiters matter.
    return f"PUNCT:{token.text}" if level == LEVEL_CLASS else "PUNCT"


def value_symbols(value: str, level: int) -> tuple[str, ...]:
    """Symbol sequence for a whole field value at *level*."""
    return tuple(symbolize(token, level) for token in tokenize(str(value)))


def mixed_symbols(value: str, constants: frozenset[str]) -> tuple[str, ...]:
    """Class-level symbols, but tokens in *constants* stay as constants.

    This realizes the paper's mixed hypothesis language: frequent surface
    tokens (``Blvd``, ``FL``, ``(``) are kept verbatim while variable parts
    generalize to token classes.
    """
    out: list[str] = []
    for token in tokenize(str(value)):
        if token.text in constants:
            out.append(f"CONST:{token.text}")
        else:
            out.append(symbolize(token, LEVEL_CLASS))
    return tuple(out)
