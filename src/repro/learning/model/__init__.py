"""Model learner: semantic types and functional source descriptions."""

from .patterns import PatternDistribution, TypeSignature, learn_constants
from .seed import seed_type_learner
from .source_description import (
    ServiceStep,
    SourceDescription,
    SourceDescriptionLearner,
)
from .substitution import Replacement, find_replacements, substitute_service
from .tokens import LEVEL_CLASS, LEVEL_CONST, LEVEL_KIND, mixed_symbols, value_symbols
from .type_learner import LearnedType, SemanticTypeLearner, TypeHypothesis

__all__ = [
    "LEVEL_CLASS", "LEVEL_CONST", "LEVEL_KIND", "LearnedType",
    "PatternDistribution", "SemanticTypeLearner", "ServiceStep",
    "Replacement", "SourceDescription", "SourceDescriptionLearner", "TypeHypothesis",
    "find_replacements", "substitute_service",
    "TypeSignature", "learn_constants", "mixed_symbols", "seed_type_learner",
    "value_symbols",
]
