"""CopyCat's three learner modules (Figure 3): structure, model, integration."""
