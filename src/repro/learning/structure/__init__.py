"""Structure learner: expert committee, clustering, projection, fallback."""

from .clustering import cluster_candidates, subsumes
from .experts import (
    DEFAULT_PAGE_EXPERTS,
    DataTypeExpert,
    Expert,
    ListLayoutExpert,
    SheetExpert,
    TableLayoutExpert,
    TemplateGrammarExpert,
)
from .hypotheses import ProjectionHypothesis, RelationalCandidate, find_projections
from .learner import GeneralizationResult, StructureLearner
from .wrapper_induction import ColumnRuleSet, LandmarkRule, induce_table, learn_column_rules

__all__ = [
    "ColumnRuleSet", "DEFAULT_PAGE_EXPERTS", "DataTypeExpert", "Expert",
    "GeneralizationResult", "LandmarkRule", "ListLayoutExpert",
    "ProjectionHypothesis", "RelationalCandidate", "SheetExpert",
    "StructureLearner", "TableLayoutExpert", "TemplateGrammarExpert",
    "cluster_candidates", "find_projections", "induce_table",
    "learn_column_rules", "subsumes",
]
