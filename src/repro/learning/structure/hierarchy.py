"""Hierarchical-site crawling: list pages linking to detail pages.

Section 2.2: the structure learner "learns extractors that crawl the
document structure of the source (including hierarchical Web sites as well
as documents or forms with multiple segments)". A common hierarchy is a
list page whose records link to per-record *detail* pages carrying extra
attributes (our scenario's detail pages add the shelter Phone).

:class:`DetailCrawlExpert` detects record-level link families on a page,
fetches each linked page, extracts its labeled fields (``dl``/``dt``/``dd``
definition lists, or two-cell label/value tables), and emits a widened
relational candidate: anchor text followed by the detail attributes. The
projection machinery then lets a user example like ``(Name, Phone)``
generalize even though Phone never appears on the list page.
"""

from __future__ import annotations

from urllib.parse import urlparse

from ...substrate.documents.dom import DomNode
from ...substrate.documents.website import Page, Website
from .hypotheses import RelationalCandidate


def _link_families(page: Page, site: Website, min_size: int = 3) -> list[list[DomNode]]:
    """Groups of same-family anchors on the page (record-level links)."""
    anchors = [
        node
        for node in page.dom.find_all("a")
        if "href" in node.attrs and node.text_content().strip()
    ]
    by_shape: dict[tuple, list[DomNode]] = {}
    for anchor in anchors:
        href = site.absolute(anchor.attrs["href"])
        if not site.has_page(href):
            continue
        parsed = urlparse(href)
        segments = tuple(
            "<n>" if part.isdigit() else part for part in parsed.path.split("/")
        )
        by_shape.setdefault(segments, []).append(anchor)
    return [group for group in by_shape.values() if len(group) >= min_size]


def _detail_fields(page: Page) -> list[tuple[str, str]]:
    """(label, value) pairs from a detail page.

    Supports ``<dl><dt>label<dd>value`` definition lists and two-cell
    ``<tr><td>label<td>value`` tables.
    """
    fields: list[tuple[str, str]] = []
    for dl in page.dom.find_all("dl"):
        label = None
        for child in dl.children:
            if child.tag == "dt":
                label = child.text_content()
            elif child.tag == "dd" and label is not None:
                fields.append((label, child.text_content()))
                label = None
    if fields:
        return fields
    for table in page.dom.find_all("table"):
        for row in table.find_all("tr"):
            cells = [c for c in row.children if c.tag in ("td", "th")]
            if len(cells) == 2:
                fields.append((cells[0].text_content(), cells[1].text_content()))
    return fields


class DetailCrawlExpert:
    """Builds widened candidates by following record links to detail pages.

    Unlike the per-page experts this one needs the website handle, so the
    structure learner instantiates it per generalization call.
    """

    name = "detail-crawl"
    base_score = 2.2

    def __init__(self, site: Website, max_pages: int = 60):
        self.site = site
        self.max_pages = max_pages

    def propose_from_page(self, page: Page) -> list[RelationalCandidate]:
        candidates: list[RelationalCandidate] = []
        for family_index, family in enumerate(_link_families(page, self.site)):
            records: list[list[str]] = []
            field_names: tuple[str, ...] | None = None
            urls: list[str] = []
            for anchor in family[: self.max_pages]:
                href = self.site.absolute(anchor.attrs["href"])
                detail = self.site.fetch(href)
                fields = _detail_fields(detail)
                if not fields:
                    continue
                names = tuple(label for label, _ in fields)
                if field_names is None:
                    field_names = names
                elif names != field_names:
                    continue  # inconsistent detail template; skip the page
                records.append(
                    [anchor.text_content()] + [value for _, value in fields]
                )
                urls.append(href)
            if len(records) >= 3 and field_names is not None:
                candidates.append(
                    RelationalCandidate(
                        records=records,
                        n_columns=1 + len(field_names),
                        support=[self.name],
                        score=self.base_score + 0.05 * len(records),
                        origin=f"detail#{family_index}({', '.join(field_names)})",
                        page_urls=tuple(urls),
                    )
                )
        return candidates
