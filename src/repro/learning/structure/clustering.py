"""Candidate clustering: combine expert hypotheses into one ranked list.

Section 3.1: "These experts discover similarities between the various pieces
of data on the site, and output their discoveries as hypotheses about the
overall relational structure of the data on the site. Next, via a clustering
approach, the algorithm produces its guess as to the best overall relational
description of the data on the site."

Clustering here is agreement-based: candidates from different experts that
describe the *same* record set (after normalization) merge into one cluster
whose score is the sum of the members' scores — independent experts agreeing
is the strongest structural signal.
"""

from __future__ import annotations

from typing import Sequence

from .hypotheses import RelationalCandidate


def cluster_candidates(
    candidates: Sequence[RelationalCandidate],
) -> list[RelationalCandidate]:
    """Merge identical-record-set candidates; return score-ranked clusters."""
    clusters: dict[tuple, RelationalCandidate] = {}
    order: list[tuple] = []
    for candidate in candidates:
        key = candidate.key()
        if not key:
            continue
        if key in clusters:
            merged = clusters[key]
            merged.score += candidate.score
            for expert in candidate.support:
                if expert not in merged.support:
                    merged.support.append(expert)
            if candidate.origin and candidate.origin not in merged.origin:
                merged.origin = f"{merged.origin}|{candidate.origin}"
        else:
            clusters[key] = RelationalCandidate(
                records=[list(record) for record in candidate.records],
                n_columns=candidate.n_columns,
                support=list(candidate.support),
                score=candidate.score,
                origin=candidate.origin,
                page_urls=candidate.page_urls,
            )
            order.append(key)
    ranked = [clusters[key] for key in order]
    ranked.sort(key=lambda c: (-c.score, -len(c.records), c.origin))
    return ranked


def subsumes(larger: RelationalCandidate, smaller: RelationalCandidate) -> bool:
    """True if *larger*'s record set strictly contains *smaller*'s.

    Used to prefer a whole-list candidate over a partial one (Figure 1's
    "the entire list, or ... just the shelters in Coconut Creek").
    """
    if larger.n_columns != smaller.n_columns:
        return False
    larger_set = set(larger.key())
    smaller_set = set(smaller.key())
    return smaller_set < larger_set
