"""Extraction hypotheses: candidate relational descriptions and projections.

Section 3.1: the experts "output their discoveries as hypotheses about the
overall relational structure of the data on the site"; clustering then picks
"the best overall relational description", and "given one or more examples
selected by the user, the system attempts to find a most-general projection
hypothesis consistent with the example[s]".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Sequence

from ...util.text import normalize


@dataclass
class RelationalCandidate:
    """A candidate tabular view of a document: records × fields.

    ``support`` names the experts that proposed (or endorsed) it; ``score``
    accumulates expert votes and re-scoring bonuses during clustering.
    """

    records: list[list[str]]
    n_columns: int
    support: list[str] = field(default_factory=list)
    score: float = 0.0
    origin: str = ""       # human-readable: "table.listing", "ul.listing", ...
    page_urls: tuple[str, ...] = ()

    def key(self) -> tuple:
        """Identity for clustering: the normalized record set."""
        return tuple(
            tuple(normalize(cell) for cell in record) for record in self.records
        )

    def column(self, index: int) -> list[str]:
        return [record[index] for record in self.records]

    def columns(self) -> list[list[str]]:
        return [self.column(i) for i in range(self.n_columns)]

    def __repr__(self) -> str:
        return (
            f"RelationalCandidate({self.origin!r}, {len(self.records)}x"
            f"{self.n_columns}, score={self.score:.2f}, support={self.support})"
        )


@dataclass
class ProjectionHypothesis:
    """A candidate plus a column projection consistent with the examples.

    This is what the structure learner ultimately emits: "all rows of the
    best relational description, projected onto the columns the user's
    examples came from".
    """

    candidate: RelationalCandidate
    column_map: tuple[int, ...]   # example field j comes from candidate column_map[j]
    score: float = 0.0
    via_fallback: bool = False

    def rows(self) -> list[list[str]]:
        return [
            [record[c] for c in self.column_map] for record in self.candidate.records
        ]

    @property
    def n_rows(self) -> int:
        return len(self.candidate.records)

    def describe(self) -> str:
        mechanism = "landmark-rules" if self.via_fallback else "projection"
        cols = ", ".join(str(c) for c in self.column_map)
        return (
            f"{mechanism} over {self.candidate.origin or 'document'} "
            f"cols[{cols}] -> {self.n_rows} rows "
            f"(experts: {', '.join(self.candidate.support) or 'fallback'})"
        )

    def consistent_with(self, examples: Sequence[Sequence[str]]) -> bool:
        """Every example appears (normalized) among the projected rows."""
        projected = {
            tuple(normalize(cell) for cell in row) for row in self.rows()
        }
        return all(
            tuple(normalize(cell) for cell in example) in projected
            for example in examples
        )


def find_projections(
    candidate: RelationalCandidate,
    examples: Sequence[Sequence[str]],
    max_projections: int = 5,
) -> list[ProjectionHypothesis]:
    """All (up to *max_projections*) column maps consistent with *examples*.

    A column map assigns each example field to a distinct candidate column
    such that every example matches some record on all mapped columns.
    Preference order: identity-like maps first (leftmost columns, in order),
    which is the "most general / least surprising" choice.
    """
    if not examples:
        return []
    width = len(examples[0])
    if any(len(example) != width for example in examples):
        return []
    if width > candidate.n_columns:
        return []

    normalized_examples = [
        tuple(normalize(str(cell)) for cell in example) for example in examples
    ]
    normalized_records = [
        tuple(normalize(str(cell)) for cell in record) for record in candidate.records
    ]

    # Columns each example field could come from (prefilter to keep the
    # permutation search tiny even for wide tables).
    feasible: list[set[int]] = []
    for j in range(width):
        possible = set()
        for column in range(candidate.n_columns):
            values = {record[column] for record in normalized_records}
            if all(example[j] in values for example in normalized_examples):
                possible.add(column)
        if not possible:
            return []
        feasible.append(possible)

    found: list[ProjectionHypothesis] = []
    for mapping in permutations(range(candidate.n_columns), width):
        if any(mapping[j] not in feasible[j] for j in range(width)):
            continue
        rows = {
            tuple(record[c] for c in mapping) for record in normalized_records
        }
        if all(example in rows for example in normalized_examples):
            hypothesis = ProjectionHypothesis(
                candidate=candidate,
                column_map=mapping,
                score=candidate.score + _projection_preference(mapping),
            )
            found.append(hypothesis)
            if len(found) >= max_projections:
                break
    return found


def _projection_preference(mapping: tuple[int, ...]) -> float:
    """Small bonus for natural projections: contiguous, in order, leftmost."""
    bonus = 0.0
    if all(b > a for a, b in zip(mapping, mapping[1:])):
        bonus += 0.5  # order-preserving
    if all(b == a + 1 for a, b in zip(mapping, mapping[1:])):
        bonus += 0.25  # contiguous
    bonus -= 0.01 * sum(mapping)  # prefer leftmost columns
    return bonus
