"""The structure learner facade.

Ties the expert committee, clustering, URL-family generalization, projection
search, and the wrapper-induction fallback into the single operation the SCP
session needs: *generalize this copy-paste into an extractor*.

Feedback protocol (Section 3.1): "After each copy and paste operation, the
structure learner guesses a generalization, and the user can provide
feedback ... If the user rejects the suggestions, the system will choose
another hypothesis and revise the suggestions. If the user pastes another
data item ... the system will select a new hypothesis." The
:class:`GeneralizationResult` therefore carries the whole ranked hypothesis
list; rejection advances a cursor, new examples trigger a fresh call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ...errors import NoHypothesisError
from ...obs import METRICS, TRACER
from ...substrate.documents.clipboard import CopyEvent
from ...substrate.documents.spreadsheet import Sheet
from ...substrate.documents.textdoc import TextDocument
from ...substrate.documents.website import Page, Website
from .clustering import cluster_candidates
from .experts import (
    DEFAULT_PAGE_EXPERTS,
    DataTypeExpert,
    Expert,
    LabelBlockExpert,
    SheetExpert,
)
from .hierarchy import DetailCrawlExpert
from .hypotheses import ProjectionHypothesis, RelationalCandidate, find_projections
from .wrapper_induction import induce_table

URL_FAMILY_EXPERT = "url-pattern"


@dataclass
class GeneralizationResult:
    """Ranked extraction hypotheses for one generalization request."""

    source_name: str
    examples: list[list[str]]
    hypotheses: list[ProjectionHypothesis] = field(default_factory=list)
    _cursor: int = 0

    @property
    def best(self) -> ProjectionHypothesis:
        if not self.hypotheses:
            raise NoHypothesisError(
                f"no hypothesis for source {self.source_name!r}"
            )
        return self.hypotheses[self._cursor]

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.hypotheses) - 1

    def reject_current(self) -> ProjectionHypothesis:
        """User rejected the current suggestion set: advance to the next."""
        if self.exhausted:
            raise NoHypothesisError(
                f"all {len(self.hypotheses)} hypotheses for "
                f"{self.source_name!r} were rejected"
            )
        self._cursor += 1
        return self.best

    def suggested_rows(self) -> list[list[str]]:
        """The best hypothesis's rows beyond the user's own examples."""
        example_set = {tuple(example) for example in self.examples}
        return [row for row in self.best.rows() if tuple(row) not in example_set]


class StructureLearner:
    """Generalizes copy-paste operations into document extractors."""

    def __init__(
        self,
        type_learner=None,
        experts: Sequence[Expert] = DEFAULT_PAGE_EXPERTS,
        follow_url_families: bool = True,
        max_hypotheses: int = 8,
        enable_fallback: bool = True,
        crawl_detail_pages: bool = True,
    ):
        self.experts = list(experts)
        self.datatype_expert = DataTypeExpert(type_learner)
        self.sheet_expert = SheetExpert()
        self.label_block_expert = LabelBlockExpert()
        self.follow_url_families = follow_url_families
        self.max_hypotheses = max_hypotheses
        self.enable_fallback = enable_fallback
        self.crawl_detail_pages = crawl_detail_pages

    # -- main entry point ------------------------------------------------------
    def generalize(
        self, event: CopyEvent, examples: Sequence[Sequence[str]] | None = None
    ) -> GeneralizationResult:
        """Generalize the user's examples against the copied-from document.

        *examples* are all rows the user has pasted so far for this source
        (each a list of field strings); when omitted, the copy event's own
        parsed fields serve as the single example.
        """
        if examples is None:
            examples = event.fields
        examples = [[str(cell) for cell in example] for example in examples]
        document = event.context.document

        with TRACER.span("structure.generalize") as span:
            ranked, pages_html = self.ranked_candidates(event)

            with TRACER.span("structure.projections"):
                hypotheses: list[ProjectionHypothesis] = []
                for candidate in ranked:
                    hypotheses.extend(find_projections(candidate, examples))
                    if len(hypotheses) >= self.max_hypotheses:
                        break
                hypotheses.sort(key=lambda h: -h.score)
                hypotheses = hypotheses[: self.max_hypotheses]

            if (
                not hypotheses
                and self.enable_fallback
                and isinstance(document, (Page, TextDocument))
            ):
                with TRACER.span("structure.fallback"):
                    fallback = self._fallback(event, examples, pages_html)
                if fallback is not None:
                    hypotheses.append(fallback)
                METRICS.inc("structure.fallback_attempts")

            if span.is_recording():
                span.set("source", event.context.source_name)
                span.set("candidates", len(ranked))
                span.set("hypotheses", len(hypotheses))
            METRICS.inc("structure.generalize_calls")

        return GeneralizationResult(
            source_name=event.context.source_name,
            examples=examples,
            hypotheses=hypotheses,
        )

    # -- candidate proposal -----------------------------------------------------
    def ranked_candidates(
        self, event: CopyEvent
    ) -> tuple[list[RelationalCandidate], str | None]:
        """Committee-proposed, rescored, clustered candidates for the event.

        Returns the ranked candidate list plus the document's serialized text
        (``None`` for sheets), which the landmark fallback and the drift
        layer's re-induction use. This is the committee half of
        :meth:`generalize`, exposed so a recorded wrapper can be re-applied
        against a document's *current* state without searching projections.
        """
        document = event.context.document
        if isinstance(document, Sheet):
            with TRACER.span("structure.expert.sheet"):
                candidates = self.sheet_expert.propose_sheet(document)
            pages_html = None
        elif isinstance(document, Page):
            candidates, pages_html = self._page_candidates(event, document)
        elif isinstance(document, TextDocument):
            with TRACER.span("structure.expert.label-block"):
                candidates = self.label_block_expert.propose_text(document)
            pages_html = document.text  # landmark fallback over raw text
        else:
            raise NoHypothesisError(
                f"cannot analyze document of type {type(document).__name__}"
            )

        with TRACER.span("structure.rescore+cluster"):
            self.datatype_expert.rescore(candidates)
            ranked = cluster_candidates(candidates)
        METRICS.inc("structure.candidates", len(candidates))
        return ranked, pages_html

    # -- page analysis ----------------------------------------------------------
    def _page_candidates(
        self, event: CopyEvent, page: Page
    ) -> tuple[list[RelationalCandidate], str]:
        """Candidates from the current page, extended across its URL family."""
        site = event.context.container
        pages = [page]
        if (
            self.follow_url_families
            and isinstance(site, Website)
            and page.url is not None
        ):
            family = site.url_family(page.url)
            if len(family) > 1:
                pages = [site.fetch(url) for url in family]

        # Per-page candidates, keyed by (origin, width) so the same template
        # region on successive pages concatenates into one multi-page table.
        merged: dict[tuple[str, int], RelationalCandidate] = {}
        order: list[tuple[str, int]] = []
        for current in pages:
            for expert in self.experts:
                with TRACER.span("structure.expert." + expert.name) as expert_span:
                    proposed = expert.propose(current.dom)
                    if expert_span.is_recording():
                        expert_span.set("page", current.url)
                        expert_span.set("candidates", len(proposed))
                METRICS.inc("structure.expert." + expert.name + ".candidates", len(proposed))
                for candidate in proposed:
                    key = (candidate.origin, candidate.n_columns)
                    if key in merged and len(pages) > 1:
                        existing = merged[key]
                        existing.records.extend(candidate.records)
                        existing.score = max(existing.score, candidate.score)
                        existing.page_urls = existing.page_urls + (current.url,)
                        if URL_FAMILY_EXPERT not in existing.support:
                            existing.support.append(URL_FAMILY_EXPERT)
                            existing.score += 1.0
                    else:
                        candidate.page_urls = (current.url,)
                        merged[key] = candidate
                        order.append(key)
        candidates = [merged[key] for key in order]
        # Hierarchical sites: widen with detail-page crawls (Section 2.2:
        # extractors "crawl the document structure of the source").
        if self.crawl_detail_pages and isinstance(site, Website):
            crawler = DetailCrawlExpert(site)
            with TRACER.span("structure.expert.detail-crawl"):
                for current in pages:
                    candidates.extend(crawler.propose_from_page(current))
        html = "\n<!-- page break -->\n".join(p.dom.to_html() for p in pages)
        return candidates, html

    # -- fallback -------------------------------------------------------------
    def _fallback(
        self,
        event: CopyEvent,
        examples: list[list[str]],
        pages_html: str | None,
    ) -> ProjectionHypothesis | None:
        if pages_html is not None:
            html = pages_html
        elif isinstance(event.context.document, TextDocument):
            html = event.context.document.text
        else:
            html = event.context.document.dom.to_html()
        try:
            rows = induce_table(html, examples)
        except NoHypothesisError:
            return None
        width = len(examples[0]) if examples else 0
        candidate = RelationalCandidate(
            records=rows,
            n_columns=width,
            support=["landmark-fallback"],
            score=0.5,
            origin="landmark-rules",
        )
        hypothesis = ProjectionHypothesis(
            candidate=candidate,
            column_map=tuple(range(width)),
            score=0.5,
            via_fallback=True,
        )
        if not hypothesis.consistent_with(examples):
            return None
        return hypothesis
