"""The structure learner's expert committee.

Section 3.1: "a set of software 'experts' analyze the given set of pages.
Each expert is an algorithm that generates hypotheses about the structure
[of] the web site, focusing on a particular type of structure. For example,
we have experts that can induce common types of grammars for web pages,
experts that analyze visual layout information, experts that can parse
particular data types such as dates, experts that look for patterns in URLs,
and so on."

Implemented experts:

- :class:`TableLayoutExpert` — visual layout: ``table``/``tr``/``td`` grids.
- :class:`ListLayoutExpert`  — visual layout: ``ul``/``ol`` item lists.
- :class:`TemplateGrammarExpert` — grammar induction: any repeated
  same-signature sibling group is a record set.
- :class:`DataTypeExpert` — re-scores candidates by per-column semantic-type
  coherence (does not generate candidates of its own).
- :class:`UrlPatternExpert` — extends candidates across a ``?page=k`` URL
  family (implemented in :mod:`repro.learning.structure.learner`, where the
  website handle is available).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ...obs import METRICS
from ...substrate.documents.dom import DomNode
from ...substrate.documents.spreadsheet import Sheet
from ...substrate.documents.textdoc import TextDocument
from .hypotheses import RelationalCandidate


class Expert:
    """Base class. ``propose`` yields candidates from one page DOM."""

    name = "expert"
    base_score = 1.0

    def propose(self, dom: DomNode) -> list[RelationalCandidate]:
        raise NotImplementedError


def _majority_records(
    raw_records: list[list[str]], origin: str, support: str, base_score: float
) -> RelationalCandidate | None:
    """Keep the majority field-count group; drop ads/odd rows.

    Template noise interleaves ad rows and decorated records whose field
    counts differ from the true records'. Majority voting on field count is
    the standard wrapper-induction trick for this.
    """
    if not raw_records:
        return None
    if METRICS.enabled:
        METRICS.inc("experts." + support + ".record_groups")
        METRICS.inc("experts." + support + ".records_seen", len(raw_records))
    width_counts = Counter(len(record) for record in raw_records)
    width, votes = width_counts.most_common(1)[0]
    if width == 0:
        return None
    if votes < 2 and len(width_counts) > 1:
        # A lone record only counts when the region is structurally
        # unambiguous (every record the same width); otherwise it is more
        # likely chrome/ad debris than a template instance.
        return None
    records = [record for record in raw_records if len(record) == width]
    consistency = votes / len(raw_records)
    return RelationalCandidate(
        records=records,
        n_columns=width,
        support=[support],
        score=base_score * consistency + 0.05 * len(records),
        origin=origin,
    )


class TableLayoutExpert(Expert):
    """Rows and cells of each ``<table>`` (header rows excluded)."""

    name = "table-layout"
    base_score = 3.0

    def propose(self, dom: DomNode) -> list[RelationalCandidate]:
        candidates = []
        for t_index, table in enumerate(dom.find_all("table")):
            raw_records: list[list[str]] = []
            for row in table.find_all("tr"):
                cells = [child for child in row.children if child.tag == "td"]
                if not cells:  # header (th) or malformed row
                    continue
                raw_records.append([cell.text_content() for cell in cells])
            candidate = _majority_records(
                raw_records, f"table#{t_index}", self.name, self.base_score
            )
            if candidate is not None:
                candidates.append(candidate)
        return candidates


class ListLayoutExpert(Expert):
    """Items of each ``<ul>``/``<ol>``; fields are an item's text leaves."""

    name = "list-layout"
    base_score = 2.5

    def propose(self, dom: DomNode) -> list[RelationalCandidate]:
        candidates = []
        index = 0
        for tag in ("ul", "ol"):
            for container in dom.find_all(tag):
                raw_records = []
                for item in container.children:
                    if item.tag != "li":
                        continue
                    leaves = [leaf.text.strip() for leaf in item.text_leaves()]
                    if leaves:
                        raw_records.append(leaves)
                candidate = _majority_records(
                    raw_records, f"{tag}#{index}", self.name, self.base_score
                )
                if candidate is not None:
                    candidates.append(candidate)
                index += 1
        return candidates


class TemplateGrammarExpert(Expert):
    """Repeated same-signature sibling groups anywhere in the tree.

    The grammar-induction generalist: wherever a parent has ≥3 children with
    identical structural signatures, those children are treated as records
    generated by one template rule.
    """

    name = "template-grammar"
    base_score = 2.0
    min_group = 3

    def propose(self, dom: DomNode) -> list[RelationalCandidate]:
        candidates = []
        counter = 0
        for node in dom.iter():
            if node.is_text or len(node.children) < self.min_group:
                continue
            groups: dict[str, list[DomNode]] = {}
            for child in node.children:
                if child.is_text:
                    continue
                groups.setdefault(child.signature(depth=2), []).append(child)
            for signature, members in groups.items():
                if len(members) < self.min_group:
                    continue
                raw_records = []
                for member in members:
                    leaves = [leaf.text.strip() for leaf in member.text_leaves()]
                    if leaves:
                        raw_records.append(leaves)
                candidate = _majority_records(
                    raw_records,
                    f"template#{counter}<{members[0].tag}>",
                    self.name,
                    self.base_score,
                )
                if candidate is not None:
                    candidates.append(candidate)
                counter += 1
        return candidates


class SheetExpert(Expert):
    """The trivially structured case: a spreadsheet grid is already a table.

    Section 3.1: "For a relatively structured source such as an Excel
    spreadsheet, the generalization process is normally quite simple."
    """

    name = "sheet"
    base_score = 4.0

    def propose_sheet(self, sheet: Sheet) -> list[RelationalCandidate]:
        rows = [[str(value) for value in row] for row in sheet.rows()]
        if not rows:
            return []
        return [
            RelationalCandidate(
                records=rows,
                n_columns=sheet.n_cols,
                support=[self.name],
                score=self.base_score + 0.05 * len(rows),
                origin=f"sheet:{sheet.name}",
            )
        ]

    def propose(self, dom: DomNode) -> list[RelationalCandidate]:  # pragma: no cover
        return []


class LabelBlockExpert:
    """Records from repeating ``Label: value`` paragraphs in text documents.

    The Word-wrapper counterpart of the page experts: situation reports and
    memos repeat a labeled block per entity; the majority label set defines
    the columns, blocks carrying it become records.
    """

    name = "label-block"
    base_score = 3.5

    def propose_text(self, document: TextDocument) -> list[RelationalCandidate]:
        blocks = document.labeled_blocks()
        if len(blocks) < 2:
            return []
        label_sets = Counter(tuple(block.keys()) for block in blocks)
        labels, votes = label_sets.most_common(1)[0]
        records = [
            [block[label] for label in labels]
            for block in blocks
            if tuple(block.keys()) == labels
        ]
        if len(records) < 2:
            return []
        consistency = votes / len(blocks)
        return [
            RelationalCandidate(
                records=records,
                n_columns=len(labels),
                support=[self.name],
                score=self.base_score * consistency + 0.05 * len(records),
                origin=f"blocks({', '.join(labels)})",
            )
        ]


class DataTypeExpert:
    """Re-scorer: bonus for candidates whose columns are type-coherent.

    "experts that can parse particular data types" — a table whose columns
    each recognize as one semantic type is far likelier to be the intended
    relational view than a grab-bag of page fragments.
    """

    name = "data-type"

    def __init__(self, type_learner=None, bonus: float = 1.0):
        self.type_learner = type_learner
        self.bonus = bonus

    def rescore(self, candidates: Sequence[RelationalCandidate]) -> None:
        if self.type_learner is None:
            return
        METRICS.inc("experts.data-type.rescored", len(candidates))
        for candidate in candidates:
            if not candidate.records:
                continue
            recognized = 0
            for column_values in candidate.columns():
                if self.type_learner.recognize(column_values, top_k=1):
                    recognized += 1
            coherence = recognized / max(candidate.n_columns, 1)
            candidate.score += self.bonus * coherence
            if coherence > 0:
                candidate.support.append(self.name)


DEFAULT_PAGE_EXPERTS: tuple[Expert, ...] = (
    TableLayoutExpert(),
    ListLayoutExpert(),
    TemplateGrammarExpert(),
)
