"""Landmark-based wrapper induction: the sequential-covering fallback.

Section 3.1: "If this method cannot find a consistent hypothesis, the system
falls back on a sequential covering approach based on more traditional
wrapper induction techniques [Muslea/Minton/Knoblock-style]."

Rules are (left-landmark, right-landmark) pairs over the serialized HTML: a
value is whatever sits between an occurrence of the left landmark and the
next occurrence of the right landmark. Sequential covering learns a *set* of
rules per column: learn the most specific rule consistent with the first
uncovered example, remove everything it covers, repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ...errors import NoHypothesisError
from ...obs import METRICS
from ...util.strings import longest_common_suffix
from ...util.text import clean_cell, is_blank

MAX_LANDMARK = 24   # landmark context window, characters
MIN_LANDMARK = 2
MAX_VALUE_LEN = 120


@dataclass(frozen=True)
class LandmarkRule:
    """Extract text between ``left`` and ``right`` landmarks."""

    left: str
    right: str

    def extract(self, text: str) -> list[tuple[int, str]]:
        """All (position, value) matches in *text*, clean and bounded.

        Every occurrence of the left landmark is considered independently
        (a consuming regex scan would let one occurrence swallow the next
        record's landmark); the value runs to the nearest right landmark.
        """
        out: list[tuple[int, str]] = []
        cursor = 0
        while True:
            left_at = text.find(self.left, cursor)
            if left_at < 0:
                break
            content_start = left_at + len(self.left)
            right_at = text.find(self.right, content_start)
            if right_at < 0:
                break
            value = clean_cell(text[content_start:right_at])
            if (
                value
                and len(value) <= MAX_VALUE_LEN
                and "<" not in value
                and ">" not in value
            ):
                out.append((content_start, value))
            elif not value:
                # Cells that are empty once NBSP / zero-width characters are
                # cleaned used to vanish without a trace; count the drops so
                # ``drift:`` stats can surface them.
                METRICS.inc("structure.empty_cells_dropped")
            cursor = left_at + 1
        return out

    def __str__(self) -> str:
        return f"...{self.left!r} [VALUE] {self.right!r}..."


@dataclass
class ColumnRuleSet:
    """The learned rules for one column (usually one; more under variation)."""

    rules: list[LandmarkRule]

    def extract(self, text: str) -> list[tuple[int, str]]:
        matches: list[tuple[int, str]] = []
        seen_positions: set[int] = set()
        for rule in self.rules:
            for position, value in rule.extract(text):
                if position not in seen_positions:
                    seen_positions.add(position)
                    matches.append((position, value))
        matches.sort()
        return matches


def _occurrences(html: str, value: str) -> list[int]:
    positions = []
    start = 0
    while True:
        index = html.find(value, start)
        if index < 0:
            return positions
        positions.append(index)
        start = index + 1


def _context_rule(html: str, positions_and_values: list[tuple[int, str]]) -> LandmarkRule | None:
    """Most specific rule consistent with the given occurrences.

    Left landmark = longest common suffix of the prefixes before each
    occurrence; right landmark = longest common prefix of the suffixes after.
    """
    lefts = [html[max(0, pos - MAX_LANDMARK) : pos] for pos, _ in positions_and_values]
    rights = [
        html[pos + len(value) : pos + len(value) + MAX_LANDMARK]
        for pos, value in positions_and_values
    ]
    left = lefts[0]
    for other in lefts[1:]:
        keep = longest_common_suffix(left, other)
        left = left[len(left) - keep :] if keep else ""
    right = rights[0]
    for other in rights[1:]:
        keep = 0
        for a, b in zip(right, other):
            if a != b:
                break
            keep += 1
        right = right[:keep]
    if len(left) < MIN_LANDMARK or len(right) < MIN_LANDMARK:
        return None
    return _minimize_rule(
        html="",  # placeholder; minimization happens in learn_column_rules
        rule=LandmarkRule(left=left, right=right),
        required=(),
    )


def _minimize_rule(
    html: str, rule: LandmarkRule, required: tuple[str, ...]
) -> LandmarkRule:
    """Shorten landmarks to the shortest pair still covering *required*.

    Maximal landmarks overfit: a right landmark that includes the *next*
    record's opening tags fails on the last record of a list. Following
    STALKER's shortest-discriminating-landmark principle, trim the right
    landmark to its shortest sufficient prefix and the left to its shortest
    sufficient suffix.
    """
    if not html or not required:
        return rule

    base_count = max(len(rule.extract(html)), 1)
    # A shorter right landmark may legitimately pick up the tail of a list
    # (the last record often lacks the inter-record separator: "Creek2</ul>"
    # has no following "<li>"), but it must not blow the match set up —
    # grabbing other columns' values would be junk, not tail records. Only
    # the right landmark is minimized: the left context always exists for
    # the last record, so it never blocks tail coverage.
    max_count = base_count + max(2, base_count // 2)

    def acceptable(candidate: LandmarkRule) -> bool:
        matches = candidate.extract(html)
        if len(matches) > max_count:
            return False
        extracted = {value for _, value in matches}
        return all(value in extracted for value in required)

    best = rule
    for right_len in range(1, len(rule.right) + 1):
        candidate = LandmarkRule(left=rule.left, right=rule.right[:right_len])
        if acceptable(candidate):
            best = candidate
            break
    return best


def learn_column_rules(html: str, examples: Sequence[str]) -> ColumnRuleSet:
    """Sequential covering over the examples of one column."""
    pending = [str(example) for example in examples]
    for example in pending:
        if is_blank(example):
            raise NoHypothesisError(
                "blank example value (empty, whitespace, or invisible "
                "characters only) cannot anchor a landmark rule"
            )
        if not _occurrences(html, example):
            raise NoHypothesisError(
                f"example value {example!r} does not occur in the document"
            )
    rules: list[LandmarkRule] = []
    while pending:
        seedexample = pending[0]
        # Most specific candidate: rule from the seed's occurrences —
        # a value repeated across example rows must generalize over as many
        # document occurrences, otherwise its context stays overly specific
        # (two rows sharing "Coconut Creek" still have different streets
        # before it). Then generalize against every other pending example.
        seed_multiplicity = pending.count(seedexample)
        seed_positions = _occurrences(html, seedexample)[:seed_multiplicity]
        group = [(position, seedexample) for position in seed_positions]
        for other in pending[1:]:
            trial = group + [(_occurrences(html, other)[0], other)]
            rule = _context_rule(html, trial)
            if rule is None:
                continue
            extracted_values = {value for _, value in rule.extract(html)}
            if all(value in extracted_values for _, value in trial):
                group = trial
        rule = _context_rule(html, group)
        if rule is None:
            raise NoHypothesisError(
                f"no landmark rule covers example {seedexample!r}"
            )
        rule = _minimize_rule(html, rule, tuple(value for _, value in group))
        extracted_values = {value for _, value in rule.extract(html)}
        covered = [value for value in pending if value in extracted_values]
        if seedexample not in covered:
            raise NoHypothesisError(
                f"learned rule fails to re-extract its own seed {seedexample!r}"
            )
        rules.append(rule)
        pending = [value for value in pending if value not in set(covered)]
    return ColumnRuleSet(rules=rules)


def induce_table(
    html: str, example_rows: Sequence[Sequence[str]]
) -> list[list[str]]:
    """Learn rules per column and align matches into rows by document order.

    Alignment assumes a row-major template (all of record i's fields precede
    record i+1's) — true of every list/table template; interleaved noise
    simply fails alignment for the noisy positions and is dropped.
    """
    if not example_rows:
        raise NoHypothesisError("need at least one example row")
    width = len(example_rows[0])
    column_rules = [
        learn_column_rules(html, [row[j] for row in example_rows])
        for j in range(width)
    ]
    column_matches = [rule_set.extract(html) for rule_set in column_rules]
    if any(not matches for matches in column_matches):
        raise NoHypothesisError("a column rule extracted nothing")

    # Row-major merge: repeatedly take the next field of each column in
    # position order; a row is complete when each column contributed once and
    # positions are increasing across columns.
    rows: list[list[str]] = []
    indices = [0] * width
    while all(indices[j] < len(column_matches[j]) for j in range(width)):
        position_cursor = -1
        row: list[str] = []
        ok = True
        for j in range(width):
            # advance to the first match after the previous column's position
            while (
                indices[j] < len(column_matches[j])
                and column_matches[j][indices[j]][0] <= position_cursor
            ):
                indices[j] += 1
            if indices[j] >= len(column_matches[j]):
                ok = False
                break
            position_cursor, value = column_matches[j][indices[j]]
            indices[j] += 1
            row.append(value)
        if not ok:
            break
        rows.append(row)
    if not rows:
        raise NoHypothesisError("landmark extraction produced no aligned rows")
    return rows
