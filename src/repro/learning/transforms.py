"""Learning value transformations by example.

Section 5 ("Complex functions / transforms"): "Sometimes the user will want
to apply complex operations that are difficult to demonstrate: for instance,
perform an aggregation or evaluate an arithmetic expression. It is important
to explore approaches to searching for possible functions [19]."

This module implements that search: given a few (row, desired-value)
examples, it enumerates a hypothesis space of candidate functions over the
row's existing attributes — string formatting, token extraction, case
changes, concatenations, and arithmetic with inferred constants — keeps
those consistent with *every* example, and ranks them by simplicity. The
winning transform then auto-completes the rest of the column, Flash-Fill
style, within the CopyCat workspace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import LearningError
from ..util.text import title_case, token_strings

RowLike = Mapping[str, Any]

#: Complexity priors: simpler hypothesis classes rank first on ties.
_PRIORITY = {
    "identity": 0,
    "case": 1,
    "token": 2,
    "affix": 2,
    "split": 2,
    "pad": 2,
    "round": 2,
    "scale": 3,
    "shift": 3,
    "linear": 4,
    "concat": 3,
    "constant": 5,
}


@dataclass(frozen=True)
class Transform:
    """A candidate function from a row to a value."""

    kind: str
    description: str
    fn: Callable[[RowLike], Any] = field(compare=False)
    inputs: tuple[str, ...] = ()

    @property
    def priority(self) -> int:
        return _PRIORITY.get(self.kind, 9)

    def apply(self, row: RowLike) -> Any:
        try:
            return self.fn(row)
        except (TypeError, ValueError, AttributeError, IndexError, KeyError):
            return None

    def apply_all(self, rows: Sequence[RowLike]) -> list[Any]:
        return [self.apply(row) for row in rows]

    def __str__(self) -> str:
        return self.description


def _as_float(value: Any) -> float | None:
    if value is None or isinstance(value, bool):
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def _string_candidates(attr: str) -> list[Transform]:
    """Unary string transforms of one attribute."""
    def get(row: RowLike) -> str:
        value = row.get(attr)
        if value is None:
            raise ValueError("null input")
        return str(value)

    candidates = [
        Transform("identity", f"{attr}", lambda r, g=get: g(r), (attr,)),
        Transform("case", f"upper({attr})", lambda r, g=get: g(r).upper(), (attr,)),
        Transform("case", f"lower({attr})", lambda r, g=get: g(r).lower(), (attr,)),
        Transform("case", f"title({attr})", lambda r, g=get: title_case(g(r)), (attr,)),
        Transform(
            "token",
            f"first_token({attr})",
            lambda r, g=get: token_strings(g(r))[0],
            (attr,),
        ),
        Transform(
            "token",
            f"last_token({attr})",
            lambda r, g=get: token_strings(g(r))[-1],
            (attr,),
        ),
        Transform(
            "split",
            f"before_comma({attr})",
            lambda r, g=get: g(r).split(",", 1)[0].strip(),
            (attr,),
        ),
        Transform(
            "split",
            f"after_comma({attr})",
            lambda r, g=get: g(r).split(",", 1)[1].strip(),
            (attr,),
        ),
    ]
    for length in (1, 2, 3, 5):
        candidates.append(
            Transform(
                "affix",
                f"prefix{length}({attr})",
                lambda r, g=get, n=length: g(r)[:n],
                (attr,),
            )
        )
    return candidates


def _numeric_candidates(
    attr: str, examples: Sequence[tuple[RowLike, Any]]
) -> list[Transform]:
    """Arithmetic transforms with constants inferred from the examples."""
    pairs = []
    for row, target in examples:
        x = _as_float(row.get(attr))
        y = _as_float(target)
        if x is None or y is None:
            return []
        pairs.append((x, y))
    if not pairs:
        return []
    candidates: list[Transform] = []

    def getnum(row: RowLike) -> float:
        value = _as_float(row.get(attr))
        if value is None:
            raise ValueError("non-numeric")
        return value

    # Rounding to a consistent number of digits.
    for digits in (0, 1, 2, 3):
        if all(abs(round(x, digits) - y) < 1e-9 for x, y in pairs):
            candidates.append(
                Transform(
                    "round",
                    f"round({attr}, {digits})",
                    lambda r, g=getnum, d=digits: round(g(r), d),
                    (attr,),
                )
            )
            break
    # Pure scaling: y = c * x (consistent ratio).
    x0, y0 = pairs[0]
    if x0 != 0:
        ratio = y0 / x0
        if abs(ratio - 1.0) > 1e-12 and all(
            x != 0 and abs(y / x - ratio) < 1e-6 for x, y in pairs
        ):
            candidates.append(
                Transform(
                    "scale",
                    f"{attr} * {ratio:g}",
                    lambda r, g=getnum, c=ratio: g(r) * c,
                    (attr,),
                )
            )
    # Pure shift: y = x + c.
    delta = y0 - x0
    if abs(delta) > 1e-12 and all(abs((x + delta) - y) < 1e-6 for x, y in pairs):
        candidates.append(
            Transform(
                "shift",
                f"{attr} + {delta:g}",
                lambda r, g=getnum, c=delta: g(r) + c,
                (attr,),
            )
        )
    # General linear: y = a*x + b from the first two examples.
    if len(pairs) >= 2:
        (xa, ya), (xb, yb) = pairs[0], pairs[1]
        if xa != xb:
            a = (ya - yb) / (xa - xb)
            b = ya - a * xa
            if (abs(a - 1.0) > 1e-9 or abs(b) > 1e-9) and all(
                abs(a * x + b - y) < 1e-6 for x, y in pairs
            ):
                candidates.append(
                    Transform(
                        "linear",
                        f"{a:g} * {attr} + {b:g}",
                        lambda r, g=getnum, aa=a, bb=b: aa * g(r) + bb,
                        (attr,),
                    )
                )
    # Zero-padding of integers ("00042").
    widths = {len(str(target)) for _, target in examples if target is not None}
    if len(widths) == 1:
        width = widths.pop()
        if all(
            isinstance(target, str) and target == str(int(x)).zfill(width)
            for (x, _), (_, target) in zip(pairs, examples)
        ):
            candidates.append(
                Transform(
                    "pad",
                    f"zfill({attr}, {width})",
                    lambda r, g=getnum, w=width: str(int(g(r))).zfill(w),
                    (attr,),
                )
            )
    return candidates


def _concat_candidates(attrs: Sequence[str]) -> list[Transform]:
    """Binary concatenations with common separators."""
    separators = (", ", " ", " - ", "")
    candidates = []
    for first in attrs:
        for second in attrs:
            if first == second:
                continue
            for sep in separators:
                def fn(row: RowLike, a=first, b=second, s=sep) -> str:
                    va, vb = row.get(a), row.get(b)
                    if va is None or vb is None:
                        raise ValueError("null input")
                    return f"{va}{s}{vb}"

                label = f"{first} + {sep!r} + {second}"
                candidates.append(Transform("concat", label, fn, (first, second)))
    return candidates


class TransformLearner:
    """Searches the function space for transforms consistent with examples."""

    def __init__(self, max_results: int = 5):
        self.max_results = max_results

    def learn(
        self,
        examples: Sequence[tuple[RowLike, Any]],
        attributes: Sequence[str] | None = None,
    ) -> list[Transform]:
        """Transforms that reproduce *every* example, ranked by simplicity.

        ``examples`` are (row, desired value) pairs; ``attributes`` limits
        which row attributes may be used (defaults to all present).
        """
        if not examples:
            raise LearningError("need at least one (row, value) example")
        if attributes is None:
            attributes = sorted({name for row, _ in examples for name in row})
        attributes = list(attributes)

        candidates: list[Transform] = []
        for attr in attributes:
            candidates.extend(_string_candidates(attr))
            candidates.extend(_numeric_candidates(attr, examples))
        candidates.extend(_concat_candidates(attributes))
        # Constant output (last resort; only sensible with one distinct value).
        targets = {str(target) for _, target in examples}
        if len(targets) == 1:
            only = examples[0][1]
            candidates.append(
                Transform("constant", f"const({only!r})", lambda r, v=only: v, ())
            )

        consistent = [
            transform
            for transform in candidates
            if all(_matches(transform.apply(row), target) for row, target in examples)
        ]
        # Rank: simplicity prior, then fewest inputs, then description.
        consistent.sort(key=lambda t: (t.priority, len(t.inputs), t.description))
        deduped: list[Transform] = []
        seen: set[str] = set()
        for transform in consistent:
            if transform.description not in seen:
                seen.add(transform.description)
                deduped.append(transform)
        return deduped[: self.max_results]

    def best(
        self,
        examples: Sequence[tuple[RowLike, Any]],
        attributes: Sequence[str] | None = None,
    ) -> Transform:
        ranked = self.learn(examples, attributes)
        if not ranked:
            raise LearningError("no transform is consistent with the examples")
        return ranked[0]


def _matches(produced: Any, target: Any) -> bool:
    if produced is None:
        return target is None
    if isinstance(target, str) and not isinstance(produced, str):
        # A string target is compared literally — "00042" is not 42.0.
        return str(produced) == target
    if isinstance(produced, float) or isinstance(target, float):
        a, b = _as_float(produced), _as_float(target)
        if a is not None and b is not None:
            return abs(a - b) < 1e-6
    return str(produced) == str(target)
