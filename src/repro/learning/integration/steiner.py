"""Exact top-k Steiner trees over the source graph.

Section 4.2: "the learner finds the most likely explanations for the tuples
(queries) by discovering Steiner trees connecting the data sources in the
source graph. For small source graphs, we can compute the most promising
queries using an exact top-k Steiner tree algorithm."

The paper formulates exactness via an ILP; with no solver available we get
exactness by exhaustive enumeration: a minimal Steiner tree over node set S
is a minimum spanning tree of the subgraph induced by S, so enumerating all
connected supersets of the terminal set and ranking their induced MSTs
yields the exact top-k *distinct Steiner node sets* — which is CopyCat's
query granularity (which sources participate, and through which cheapest
associations). Complexity is O(2^(n-t)) in the non-terminal count, i.e.
deliberately exponential; the scaling benchmark (T-S) exhibits exactly this
blowup, motivating SPCSH.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from ...errors import GraphError
from ...obs import METRICS, TRACER
from .source_graph import Association, SourceGraph


@dataclass(frozen=True)
class SteinerTree:
    """A candidate query skeleton: nodes plus the tree edges joining them."""

    nodes: frozenset[str]
    edges: tuple[Association, ...]
    cost: float

    def feature_keys(self) -> frozenset[str]:
        """The MIRA feature set: one feature per edge (Section 4.2)."""
        return frozenset(edge.key for edge in self.edges)

    def sort_key(self) -> tuple:
        return (self.cost, len(self.nodes), tuple(sorted(self.nodes)))

    def __str__(self) -> str:
        parts = " + ".join(sorted(self.nodes))
        return f"[{self.cost:.2f}] {parts}"


def _min_adjacency(graph: SourceGraph, nodes: frozenset[str]) -> dict[str, list[tuple[float, str, Association]]]:
    """Cheapest-edge adjacency restricted to *nodes* (parallel edges folded)."""
    best: dict[tuple[str, str], Association] = {}
    for edge in graph.edges():
        if edge.left in nodes and edge.right in nodes:
            pair = tuple(sorted((edge.left, edge.right)))
            current = best.get(pair)
            if current is None or graph.cost(edge) < graph.cost(current):
                best[pair] = edge
    adjacency: dict[str, list[tuple[float, str, Association]]] = {n: [] for n in nodes}
    for (a, b), edge in best.items():
        cost = graph.cost(edge)
        adjacency[a].append((cost, b, edge))
        adjacency[b].append((cost, a, edge))
    return adjacency


def minimum_spanning_tree(
    graph: SourceGraph, nodes: frozenset[str]
) -> SteinerTree | None:
    """Prim's MST over the induced subgraph; None if disconnected."""
    if not nodes:
        return None
    if len(nodes) == 1:
        return SteinerTree(nodes=nodes, edges=(), cost=0.0)
    adjacency = _min_adjacency(graph, nodes)
    start = min(nodes)
    visited = {start}
    chosen: list[Association] = []
    total = 0.0
    counter = 0  # heap tiebreaker via insertion order; doubles as push count
    heap: list[tuple[float, int, str, Association]] = []
    for cost, other, edge in adjacency[start]:
        counter += 1
        heapq.heappush(heap, (cost, counter, other, edge))
    while heap and len(visited) < len(nodes):
        cost, _, node, edge = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        chosen.append(edge)
        total += cost
        for next_cost, other, next_edge in adjacency[node]:
            if other not in visited:
                counter += 1
                heapq.heappush(heap, (next_cost, counter, other, next_edge))
    if METRICS.enabled:
        METRICS.inc("steiner.mst_runs")
        METRICS.inc("steiner.heap_pushes", counter)
    if len(visited) < len(nodes):
        return None
    chosen.sort(key=lambda e: e.key)
    return SteinerTree(nodes=nodes, edges=tuple(chosen), cost=total)


def exact_top_k_steiner(
    graph: SourceGraph,
    terminals: Iterable[str],
    k: int = 3,
    max_extra_nodes: int | None = None,
) -> list[SteinerTree]:
    """The exact top-k distinct-node-set Steiner trees connecting *terminals*.

    ``max_extra_nodes`` optionally caps how many intermediate nodes may be
    added (the tree "may add any number of intermediate nodes", footnote 3 —
    but callers with latency budgets can bound the search).
    """
    terminal_set = frozenset(terminals)
    if not terminal_set:
        raise GraphError("Steiner search needs at least one terminal")
    for terminal in terminal_set:
        if not graph.has_node(terminal):
            raise GraphError(f"terminal {terminal!r} is not in the source graph")

    others = sorted(set(graph.node_names()) - terminal_set)
    limit = len(others) if max_extra_nodes is None else min(max_extra_nodes, len(others))

    with TRACER.span("steiner.exact") as span:
        subsets_explored = 0
        results: list[SteinerTree] = []
        for extra_count in range(0, limit + 1):
            for extra in combinations(others, extra_count):
                subsets_explored += 1
                tree = minimum_spanning_tree(graph, terminal_set | frozenset(extra))
                if tree is not None:
                    results.append(tree)
        results.sort(key=SteinerTree.sort_key)

        # Keep the k cheapest, but drop any tree whose node set strictly
        # contains a cheaper tree's node set at equal-or-worse cost — adding an
        # unused intermediate node never yields a genuinely different query.
        pruned: list[SteinerTree] = []
        for tree in results:
            dominated = any(
                kept.nodes < tree.nodes and kept.cost <= tree.cost for kept in pruned
            )
            if not dominated:
                pruned.append(tree)
            if len(pruned) >= k:
                break
        if span.is_recording():
            span.set("terminals", len(terminal_set))
            span.set("subsets_explored", subsets_explored)
            span.set("trees_connected", len(results))
            span.set("trees_kept", len(pruned))
        if METRICS.enabled:
            METRICS.inc("steiner.exact_calls")
            METRICS.inc("steiner.subsets_explored", subsets_explored)
        return pruned
