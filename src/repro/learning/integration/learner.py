"""The integration learner facade.

Section 4.2 describes its two modes:

1. **Column completions** — "it discovers promising associations (edges in
   the source graph scoring above a relevance threshold) from the current
   query's nodes to other sources" and defines a query per association.
2. **Tuple explanation** — given user-pasted tuples whose attributes span
   sources, "the learner finds the most likely explanations for the tuples
   (queries) by discovering Steiner trees connecting the data sources".

Feedback over either mode is converted into MIRA constraints on the shared
edge-weight vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ...drift.config import DRIFT
from ...drift.quarantine import (
    DRIFT_EVENTS_NOTE,
    DRIFT_RESYNCS_NOTE,
    QUARANTINE_NOTE,
    drift_epoch,
    drift_rate,
)
from ...errors import CatalogError, GraphError, IntegrationError
from ...obs import METRICS
from ...resilience.config import RESILIENCE
from ...substrate.relational.catalog import Catalog
from ...util.text import normalize
from .associations import discover_associations
from .mira import MiraLearner
from .queries import IntegrationQuery, LinkerFactory, compile_tree, extend_query
from .source_graph import Association, SourceGraph
from .spcsh import spcsh_top_k_steiner
from .steiner import SteinerTree, exact_top_k_steiner

#: Above this many non-terminal nodes, fall back to SPCSH automatically.
EXACT_NODE_BUDGET = 14


@dataclass
class ColumnCompletion:
    """A suggested new column-set: the edge used and the extended query."""

    edge: Association
    query: IntegrationQuery
    added_source: str
    added_attributes: tuple[str, ...]
    cost: float

    def describe(self) -> str:
        attrs = ", ".join(self.added_attributes)
        return f"[{self.cost:.2f}] add {attrs} from {self.added_source} via {self.edge.kind}"


class IntegrationLearner:
    """Maintains the source graph, ranks queries, learns from feedback."""

    def __init__(
        self,
        catalog: Catalog,
        relevance_threshold: float = 2.0,
        use_semantic_types: bool = True,
        linker_factory: LinkerFactory | None = None,
        margin: float = 0.5,
    ):
        self.catalog = catalog
        self.relevance_threshold = relevance_threshold
        self.use_semantic_types = use_semantic_types
        self.linker_factory = linker_factory
        self._margin = margin
        # Operational-health penalty currently baked into each edge weight
        # (see absorb_service_health); tracked so re-absorption adjusts by
        # the *difference* and never clobbers MIRA-learned weights.
        self._health_penalty: dict[str, float] = {}
        self._health_state: tuple = ()
        # Same delta-tracking for source-drift penalties (see
        # absorb_drift_events): drifting and quarantined *relations* pay
        # extra edge cost exactly like failing services do.
        self._drift_penalty: dict[str, float] = {}
        self._drift_state: tuple = ()
        self._drift_fast_key: tuple | None = None
        self.graph = SourceGraph()
        self.mira = MiraLearner(
            self.graph,
            margin=margin,
            relevance_threshold=relevance_threshold,
        )
        self.refresh()

    # -- graph lifecycle ---------------------------------------------------------
    def refresh(self) -> SourceGraph:
        """Rebuild associations for the catalog's current contents.

        Learned edge weights survive the rebuild: an edge re-discovered
        after a new source import keeps whatever MIRA taught it.
        """
        old_weights = dict(self.graph.weights) if self.graph is not None else {}
        self.graph = discover_associations(
            self.catalog, use_semantic_types=self.use_semantic_types
        )
        for key, weight in old_weights.items():
            if key in self.graph.weights:
                self.graph.weights[key] = weight
        self.mira = MiraLearner(
            self.graph,
            margin=self._margin,
            relevance_threshold=self.relevance_threshold,
        )
        return self.graph

    def absorb_service_health(self) -> int:
        """Fold observed service failure rates into source-graph weights.

        The paper's trust-feedback mechanism driven by operational signals:
        every edge touching a service pays an extra cost of
        ``RESILIENCE.failure_penalty × failure_rate``, so chronically
        failing services sink in plan ranking (and, once the penalty pushes
        an edge past the relevance threshold, stop being suggested at all).
        The penalty is applied as a delta against what was previously
        absorbed, so repeated calls converge and recovery (failure rate
        falling as successes accrue) lowers the cost again without
        disturbing MIRA-learned weights. Returns the number of edges whose
        weight changed.

        Called before every suggestion batch, so the steady state — no
        health movement since the last absorption — must stay O(#services):
        the edge sweep only runs when some service's invocation ledger
        actually moved.
        """
        state = tuple(
            (service.name, service.health.successes, service.health.lookups_failed)
            for service in self.catalog.services()
        )
        if state == self._health_state:
            return 0
        self._health_state = state
        changed = 0
        for edge in self.graph.edges():
            rate = 0.0
            for endpoint in (edge.left, edge.right):
                if not self.graph.node(endpoint).is_service:
                    continue
                try:
                    service = self.catalog.service(endpoint)
                except CatalogError:
                    continue
                rate = max(rate, service.health.failure_rate())
            penalty = RESILIENCE.failure_penalty * rate
            previous = self._health_penalty.get(edge.key, 0.0)
            if abs(penalty - previous) > 1e-12:
                self.graph.weights[edge.key] = (
                    self.graph.weights.get(edge.key, edge.default_cost())
                    + penalty
                    - previous
                )
                if penalty:
                    self._health_penalty[edge.key] = penalty
                else:
                    self._health_penalty.pop(edge.key, None)
                changed += 1
        if changed and METRICS.enabled:
            METRICS.inc("resilience.health_absorbed_edges", changed)
        return changed

    def absorb_drift_events(self) -> int:
        """Fold observed source drift into source-graph weights.

        The extraction-side analogue of :meth:`absorb_service_health`: every
        edge touching a drifting relation pays ``DRIFT.drift_penalty × drift
        rate`` (detected drift events over resync attempts, so a healed
        drift decays as clean resyncs accrue), and an edge touching a
        *quarantined* relation pays the flat ``DRIFT.quarantine_penalty`` —
        above the default relevance threshold, so quarantined sources stop
        being suggested at all until they heal. Deltas are tracked per edge
        so repeated calls converge and never clobber MIRA-learned weights.
        Returns the number of edges whose weight changed.

        Called before every suggestion batch, so the steady state — no drift
        bookkeeping movement since the last absorption — must be O(1), not a
        per-relation notes scan: ``(catalog.version_counter, drift_epoch())``
        is a complete staleness key for the notes the scan reads (the epoch
        moves on every drift-note mutation, the counter on relation
        add/replace/remove), so an unchanged key skips the sweep entirely.
        """
        fast_key = (self.catalog.version_counter, drift_epoch())
        if fast_key == self._drift_fast_key:
            return 0
        self._drift_fast_key = fast_key
        state = tuple(
            (
                name,
                self.catalog.metadata(name).notes.get(DRIFT_EVENTS_NOTE, 0),
                self.catalog.metadata(name).notes.get(DRIFT_RESYNCS_NOTE, 0),
                QUARANTINE_NOTE in self.catalog.metadata(name).notes,
            )
            for name in self.catalog.relation_names()
        )
        if state == self._drift_state:
            return 0
        self._drift_state = state
        penalties: dict[str, float] = {}
        for name, events, _resyncs, quarantined in state:
            if quarantined:
                penalties[name] = DRIFT.quarantine_penalty
            elif events:
                penalties[name] = DRIFT.drift_penalty * drift_rate(self.catalog, name)
        changed = 0
        for edge in self.graph.edges():
            penalty = max(
                penalties.get(edge.left, 0.0), penalties.get(edge.right, 0.0)
            )
            previous = self._drift_penalty.get(edge.key, 0.0)
            if abs(penalty - previous) > 1e-12:
                self.graph.weights[edge.key] = (
                    self.graph.weights.get(edge.key, edge.default_cost())
                    + penalty
                    - previous
                )
                if penalty:
                    self._drift_penalty[edge.key] = penalty
                else:
                    self._drift_penalty.pop(edge.key, None)
                changed += 1
        if changed and METRICS.enabled:
            METRICS.inc("drift.penalty_absorbed_edges", changed)
        return changed

    # -- query construction ---------------------------------------------------------
    def base_query(self, source: str) -> IntegrationQuery:
        """The starting query: a single source relation (Section 4.2)."""
        tree = SteinerTree(nodes=frozenset([source]), edges=(), cost=0.0)
        return compile_tree(tree, self.catalog, self.graph, root=source,
                            linker_factory=self.linker_factory)

    def column_completions(
        self,
        query: IntegrationQuery,
        k: int = 5,
        visible_attributes: Sequence[str] | None = None,
    ) -> list[ColumnCompletion]:
        """Ranked column auto-completions extending *query*.

        ``visible_attributes`` restricts which of the current query's
        attributes may feed new edges (the user may have removed columns).
        """
        schema = query.output_schema(self.catalog)
        visible = set(visible_attributes if visible_attributes is not None else schema.names)
        completions: list[ColumnCompletion] = []
        seen_feature_sets: set[frozenset[str]] = set()
        for node in sorted(query.nodes):
            for edge in self.graph.edges_of(node):
                other = edge.other(node)
                if other in query.nodes:
                    continue
                if self.graph.cost(edge) > self.relevance_threshold:
                    continue  # below relevance: not suggested
                try:
                    extended = extend_query(
                        query, edge, self.catalog, self.graph,
                        linker_factory=self.linker_factory,
                    )
                except IntegrationError:
                    continue
                # The feeding attributes must still be visible in the table.
                needed = {l for l, _ in edge.conditions} if edge.left in query.nodes else {
                    r for _, r in edge.conditions
                }
                if edge.kind == "service":
                    needed = {provider for provider, _ in edge.conditions}
                if not needed <= visible:
                    continue
                if extended.features in seen_feature_sets:
                    continue
                seen_feature_sets.add(extended.features)
                before = set(schema.names)
                after = extended.output_schema(self.catalog).names
                added = tuple(name for name in after if name not in before)
                if not added:
                    continue
                completions.append(
                    ColumnCompletion(
                        edge=edge,
                        query=extended,
                        added_source=other,
                        added_attributes=added,
                        cost=extended.cost,
                    )
                )
        completions.sort(key=lambda c: (c.cost, c.added_source))
        return completions[:k]

    def steiner_queries(
        self,
        terminals: Iterable[str],
        k: int = 3,
        mode: str = "auto",
        root: str | None = None,
    ) -> list[IntegrationQuery]:
        """Top-k queries connecting *terminals* (the pasted tuple's sources)."""
        terminal_list = sorted(set(terminals))
        extras = len(self.graph) - len(terminal_list)
        if mode == "exact" or (mode == "auto" and extras <= EXACT_NODE_BUDGET):
            trees = exact_top_k_steiner(self.graph, terminal_list, k=k)
        elif mode in ("spcsh", "auto"):
            trees = spcsh_top_k_steiner(self.graph, terminal_list, k=k)
        else:
            raise IntegrationError(f"unknown Steiner mode {mode!r}")
        queries = []
        for tree in trees:
            try:
                queries.append(
                    compile_tree(tree, self.catalog, self.graph, root=root,
                                 linker_factory=self.linker_factory)
                )
            except IntegrationError:
                continue  # tree not orientable into an executable plan
        return queries

    # -- terminal identification -------------------------------------------------------
    def identify_terminals(
        self, columns: Mapping[str, Sequence[Any]]
    ) -> dict[str, str]:
        """Map each pasted attribute to its most plausible source.

        Evidence per (attribute, source): attribute-name match in the
        source's schema, plus value containment for base relations (the
        pasted values actually occur in that source's column).
        """
        assignment: dict[str, str] = {}
        for attr_name, values in columns.items():
            best_source, best_score = None, 0.0
            normalized = [normalize(str(v)) for v in values if v is not None]
            for source in self.graph.node_names():
                node = self.graph.node(source)
                if attr_name not in node.schema:
                    continue
                score = 1.0
                if not node.is_service:
                    relation = self.catalog.relation(source)
                    column = {normalize(str(v)) for v in relation.column(attr_name)}
                    if normalized:
                        contained = sum(1 for v in normalized if v in column)
                        score += 2.0 * contained / len(normalized)
                else:
                    # services never *originate* data; weak evidence only
                    score -= 0.5
                if score > best_score:
                    best_source, best_score = source, score
            if best_source is None:
                raise GraphError(
                    f"no source in the graph carries attribute {attr_name!r}"
                )
            assignment[attr_name] = best_source
        return assignment

    def explain_tuples(
        self, columns: Mapping[str, Sequence[Any]], k: int = 3
    ) -> list[IntegrationQuery]:
        """Steiner-mode entry point: pasted columns → ranked queries."""
        terminals = set(self.identify_terminals(columns).values())
        return self.steiner_queries(terminals, k=k)

    # -- feedback --------------------------------------------------------------------
    def accept_query(
        self, accepted: IntegrationQuery, alternatives: Iterable[IntegrationQuery] = ()
    ) -> int:
        updates = self.mira.accept(
            accepted.features, [alt.features for alt in alternatives]
        )
        return updates

    def reject_query(
        self, rejected: IntegrationQuery, better: Iterable[IntegrationQuery] = ()
    ) -> int:
        return self.mira.reject(rejected.features, [b.features for b in better])

    def requery_cost(self, query: IntegrationQuery) -> float:
        """Query cost under the *current* (post-feedback) weights."""
        return self.graph.tree_cost(query.edges)
