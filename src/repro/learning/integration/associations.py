"""Association discovery: which edges belong in the source graph.

Section 4.1: "In the current system we add to the source graph edges
representing joins based on (1) common attribute names and data types,
(2) known links or foreign keys." Semantic types "constrain the possible
edges to add, by limiting fields to match over one or more semantic types".
Services additionally get edges from any source whose attributes can cover
their input bindings (the Figure 4 ``Zip Codes`` pattern), and sources with
name-like fields but no shared attribute get record-link edges.

``use_semantic_types=False`` reproduces the unconstrained condition for the
A-2 ablation: attribute pairs match on names alone and services accept any
injective attribute assignment, which bloats the candidate edge set.
"""

from __future__ import annotations

from itertools import permutations

from ...substrate.relational.catalog import Catalog
from ...substrate.relational.schema import ANY, Schema, SemanticType
from .source_graph import Association, DEFAULT_COSTS, SourceGraph, SourceNode

#: Semantic types whose values identify real-world entities loosely enough
#: that approximate matching (record linking) is meaningful.
LINKABLE_TYPES = ("PR-Name", "PR-Place", "PR-Street")


def types_compatible(a: SemanticType, b: SemanticType) -> bool:
    """Two attribute types can join: equal, related, or either unknown."""
    if a.name == ANY.name or b.name == ANY.name:
        return True
    return a.is_a(b) or b.is_a(a)


def _shared_join_conditions(
    left: Schema, right: Schema, use_semantic_types: bool
) -> list[tuple[str, str]]:
    """The conjunction of all common-attribute equality predicates."""
    conditions = []
    for attr in left:
        if attr.name not in right:
            continue
        other = right.attribute(attr.name)
        if use_semantic_types and not types_compatible(attr.semantic_type, other.semantic_type):
            continue
        conditions.append((attr.name, attr.name))
    return conditions


def _service_input_mappings(
    provider: SourceNode, service: SourceNode, use_semantic_types: bool
) -> list[tuple[tuple[str, str], ...]]:
    """Ways to feed the service's inputs from the provider's attributes.

    Each mapping is a tuple of (provider_attr, service_input) pairs covering
    *every* service input. With semantic types, each input takes the
    best-matching provider attribute (name match first, then type match) —
    at most one mapping. Without, all injective assignments are candidates.
    """
    provider_names = [
        name for name in provider.schema.names if name not in provider.inputs
    ]
    inputs = list(service.inputs)
    if not inputs or len(provider_names) < len(inputs):
        return []

    if use_semantic_types:
        mapping: list[tuple[str, str]] = []
        used: set[str] = set()
        for service_input in inputs:
            input_attr = service.schema.attribute(service_input)
            # Pass 1: same name; pass 2: compatible non-ANY semantic type.
            chosen = None
            for name in provider_names:
                if name in used:
                    continue
                if name.lower() == service_input.lower():
                    chosen = name
                    break
            if chosen is None and input_attr.semantic_type.name != ANY.name:
                for name in provider_names:
                    if name in used:
                        continue
                    provider_attr = provider.schema.attribute(name)
                    if provider_attr.semantic_type.name == ANY.name:
                        continue
                    if types_compatible(provider_attr.semantic_type, input_attr.semantic_type):
                        chosen = name
                        break
            if chosen is None:
                return []
            used.add(chosen)
            mapping.append((chosen, service_input))
        return [tuple(mapping)]

    # Unconstrained: every injective assignment of inputs to attributes.
    mappings = []
    for assignment in permutations(provider_names, len(inputs)):
        mappings.append(tuple(zip(assignment, inputs)))
    return mappings


def _record_link_conditions(
    left: Schema, right: Schema
) -> list[tuple[str, str]]:
    """Pairs of linkable-typed attributes with *different* names.

    Same-name pairs are already join edges; record-link edges cover the
    Example-1 case (website ``Name`` vs spreadsheet ``Shelter``).
    """
    name_like = {"PR-Name", "PR-Place"}
    candidates: list[tuple[int, str, str]] = []
    for attr in left:
        if attr.semantic_type.name not in LINKABLE_TYPES:
            continue
        for other in right:
            if other.name == attr.name:
                continue
            if other.semantic_type.name == attr.semantic_type.name:
                candidates.append((0, attr.name, other.name))
            elif (
                # Person/organization names are routinely mistyped for each
                # other; cross-type linking within the name-like group is a
                # fallback when no same-type partner exists (pairing one
                # field against several dilutes the similarity signal).
                attr.semantic_type.name in name_like
                and other.semantic_type.name in name_like
            ):
                candidates.append((1, attr.name, other.name))
    # Greedy one-to-one matching, same-type pairs first: each attribute
    # participates in at most one condition.
    candidates.sort()
    used_left: set[str] = set()
    used_right: set[str] = set()
    conditions = []
    for _, left_name, right_name in candidates:
        if left_name in used_left or right_name in used_right:
            continue
        used_left.add(left_name)
        used_right.add(right_name)
        conditions.append((left_name, right_name))
    return conditions


def discover_associations(
    catalog: Catalog,
    use_semantic_types: bool = True,
    include_record_links: bool = True,
    max_service_mappings: int = 6,
) -> SourceGraph:
    """Build the full source graph for the catalog's current contents."""
    graph = SourceGraph()
    for name in catalog.source_names():
        graph.add_node(SourceGraph.node_from_catalog(catalog, name))

    nodes = graph.nodes()
    for i, left in enumerate(nodes):
        for right in nodes[i + 1 :]:
            _connect(graph, left, right, use_semantic_types, include_record_links,
                     max_service_mappings)

    # Known links / foreign keys from catalog metadata.
    for name in catalog.source_names():
        metadata = catalog.metadata(name)
        for attr, (other_source, other_attr) in metadata.foreign_keys.items():
            if graph.has_node(other_source):
                graph.add_edge(
                    Association(
                        left=name,
                        right=other_source,
                        kind="fk",
                        conditions=((attr, other_attr),),
                    )
                )
    return graph


def _connect(
    graph: SourceGraph,
    left: SourceNode,
    right: SourceNode,
    use_semantic_types: bool,
    include_record_links: bool,
    max_service_mappings: int,
) -> None:
    """Add every justified edge between one pair of nodes."""
    # Join on all shared attributes (as one conjunctive edge). Service
    # *inputs* are excluded from plain joins on the service side — feeding an
    # input is a service edge, not a join.
    left_free = Schema([a for a in left.schema if a.name not in left.inputs])
    right_free = Schema([a for a in right.schema if a.name not in right.inputs])
    conditions = _shared_join_conditions(left_free, right_free, use_semantic_types)
    if conditions and not (left.is_service and right.is_service):
        graph.add_edge(
            Association(
                left=left.name,
                right=right.name,
                kind="join",
                conditions=tuple(conditions),
            )
        )

    # Service edges, both orientations.
    for provider, service in ((left, right), (right, left)):
        if not service.is_service or provider.is_service:
            continue
        mappings = _service_input_mappings(provider, service, use_semantic_types)
        for mapping in mappings[:max_service_mappings]:
            # Seed the edge weight from the service's declared invocation
            # cost, so e.g. the precise (Street, City) zip resolver outranks
            # the ambiguous city-wide zip directory by default.
            graph.add_edge(
                Association(
                    left=provider.name,
                    right=service.name,
                    kind="service",
                    conditions=mapping,
                ),
                cost=DEFAULT_COSTS["service"] * service.invoke_cost,
            )

    # Record-link edges between base relations.
    if include_record_links and not left.is_service and not right.is_service:
        if use_semantic_types:
            link_conditions = _record_link_conditions(left.schema, right.schema)
            if link_conditions:
                graph.add_edge(
                    Association(
                        left=left.name,
                        right=right.name,
                        kind="record-link",
                        conditions=tuple(link_conditions),
                    )
                )
