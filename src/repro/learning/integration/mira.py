"""MIRA: online weight learning from ranking feedback.

Section 4.2: "CopyCat's transformation and integration learner takes the
feedback constraints and changes the weights on the source graph edges,
which in turn will change the queries' relative rankings. To accomplish
this, it uses a machine learning algorithm called MIRA ... MIRA first
compares the nodes and edges among the graphs. It adjusts weights *only* on
edges that differ between the graphs, such that the queries' costs, when
recomputed, will satisfy the ordering constraints provided by feedback."

Feedback → constraints: "If the user accepts a group of auto-completions,
they should be given a higher ranking than all alternative auto-completions;
if the user rejects a group of auto-completions, these should be given a
rank below the relevance threshold."

Each constraint update is the closed-form passive-aggressive step (Crammer
et al. 2006): move the weight vector the minimum distance that satisfies the
violated margin constraint, capped by the aggressiveness parameter C.
Because the update direction is the *difference* of the two queries' feature
vectors, shared edges cancel — only differing edges move, exactly as the
paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...obs import METRICS
from .source_graph import SourceGraph

Features = frozenset[str]


@dataclass
class MiraUpdate:
    """Record of one applied update (for tests and explanations)."""

    kind: str                       # "rank" | "demote" | "promote"
    tau: float
    changed: dict[str, float]       # edge key -> new weight


class MiraLearner:
    """Adjusts source-graph edge weights to satisfy feedback constraints."""

    def __init__(
        self,
        graph: SourceGraph,
        margin: float = 0.5,
        aggressiveness: float = 2.0,
        min_cost: float = 0.05,
        relevance_threshold: float = 2.0,
    ):
        self.graph = graph
        self.margin = margin
        self.aggressiveness = aggressiveness
        self.min_cost = min_cost
        self.relevance_threshold = relevance_threshold
        self.history: list[MiraUpdate] = []

    # -- cost under current weights -----------------------------------------------
    def cost(self, features: Iterable[str]) -> float:
        return sum(self.graph.weights.get(key, 0.0) for key in features)

    def _record(self, update: MiraUpdate) -> None:
        self.history.append(update)
        if METRICS.enabled:
            METRICS.inc("mira.updates")
            METRICS.inc("mira.updates." + update.kind)
            METRICS.inc("mira.edges_changed", len(update.changed))
            METRICS.observe("mira.tau", update.tau)

    # -- constraint updates ----------------------------------------------------------
    def rank_update(self, preferred: Features, other: Features) -> bool:
        """Enforce cost(preferred) + margin ≤ cost(other).

        Shared features cancel in the difference vector, so only edges in
        the symmetric difference receive weight changes.
        """
        preferred = frozenset(preferred)
        other = frozenset(other)
        only_preferred = preferred - other
        only_other = other - preferred
        loss = self.cost(preferred) + self.margin - self.cost(other)
        if loss <= 0 or (not only_preferred and not only_other):
            return False
        norm_sq = float(len(only_preferred) + len(only_other))
        tau = min(self.aggressiveness, loss / norm_sq)
        changed: dict[str, float] = {}
        for key in only_preferred:
            new = max(self.min_cost, self.graph.weights.get(key, 0.0) - tau)
            self.graph.weights[key] = new
            changed[key] = new
        for key in only_other:
            new = self.graph.weights.get(key, 0.0) + tau
            self.graph.weights[key] = new
            changed[key] = new
        self._record(MiraUpdate(kind="rank", tau=tau, changed=changed))
        return True

    def demote(self, features: Features) -> bool:
        """Rejected query: push its cost above the relevance threshold."""
        features = frozenset(features)
        if not features:
            return False
        target = self.relevance_threshold + self.margin
        loss = target - self.cost(features)
        if loss <= 0:
            return False
        tau = min(self.aggressiveness, loss / len(features))
        changed = {}
        for key in features:
            new = self.graph.weights.get(key, 0.0) + tau
            self.graph.weights[key] = new
            changed[key] = new
        self._record(MiraUpdate(kind="demote", tau=tau, changed=changed))
        return True

    def promote(self, features: Features) -> bool:
        """Accepted query: pull its cost below the relevance threshold."""
        features = frozenset(features)
        if not features:
            return False
        target = self.relevance_threshold - self.margin
        loss = self.cost(features) - target
        if loss <= 0:
            return False
        tau = min(self.aggressiveness, loss / len(features))
        changed = {}
        for key in features:
            new = max(self.min_cost, self.graph.weights.get(key, 0.0) - tau)
            self.graph.weights[key] = new
            changed[key] = new
        self._record(MiraUpdate(kind="promote", tau=tau, changed=changed))
        return True

    # -- feedback-level API ------------------------------------------------------------
    def accept(self, accepted: Features, alternatives: Iterable[Features]) -> int:
        """Accepted beats every alternative; returns #updates applied."""
        applied = 0
        if self.promote(accepted):
            applied += 1
        for alternative in alternatives:
            if frozenset(alternative) == frozenset(accepted):
                continue
            if self.rank_update(accepted, alternative):
                applied += 1
        return applied

    def reject(self, rejected: Features, better: Iterable[Features] = ()) -> int:
        """Rejected falls below the threshold and below any known-good query."""
        applied = 0
        if self.demote(rejected):
            applied += 1
        for good in better:
            if self.rank_update(good, rejected):
                applied += 1
        return applied
