"""Integration learner: source graph, Steiner search, MIRA, query compilation."""

from .associations import discover_associations, types_compatible
from .learner import ColumnCompletion, IntegrationLearner
from .mira import MiraLearner, MiraUpdate
from .queries import IntegrationQuery, compile_tree, extend_query
from .source_graph import Association, DEFAULT_COSTS, SourceGraph, SourceNode
from .spcsh import dijkstra, prune_graph, spcsh_top_k_steiner
from .steiner import SteinerTree, exact_top_k_steiner, minimum_spanning_tree

__all__ = [
    "Association", "ColumnCompletion", "DEFAULT_COSTS", "IntegrationLearner",
    "IntegrationQuery", "MiraLearner", "MiraUpdate", "SourceGraph",
    "SourceNode", "SteinerTree", "compile_tree", "dijkstra",
    "discover_associations", "exact_top_k_steiner", "extend_query",
    "minimum_spanning_tree", "prune_graph", "spcsh_top_k_steiner",
    "types_compatible",
]
