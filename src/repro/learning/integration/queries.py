"""Integration queries: from source-graph trees to executable plans.

A Steiner tree (or an incrementally extended query) is a *skeleton*: which
sources participate and through which associations. This module compiles a
skeleton into a relational plan: join edges become equijoins on the
conjunction of their conditions, service edges become dependent joins, and
record-link edges become approximate joins with a (possibly learned) linker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...errors import GraphError, IntegrationError
from ...substrate.relational.algebra import (
    DependentJoin,
    Join,
    Plan,
    RecordLinkJoin,
    RowLinker,
    Scan,
)
from ...substrate.relational.catalog import Catalog
from ...substrate.relational.schema import Schema
from ..integration.source_graph import Association, SourceGraph
from ..integration.steiner import SteinerTree

#: Builds a default linker for a record-link edge's condition field pairs.
LinkerFactory = Callable[[Association], RowLinker]


def _default_linker_factory(edge: Association) -> RowLinker:
    from ...linking.linker import LearnedLinker
    from ...linking.similarity import FieldPair

    pairs = [FieldPair(left, right) for left, right in edge.conditions]
    return LearnedLinker(pairs)


@dataclass
class IntegrationQuery:
    """A ranked candidate query: skeleton + compiled plan + cost."""

    nodes: frozenset[str]
    edges: tuple[Association, ...]
    plan: Plan
    cost: float
    root: str

    @property
    def features(self) -> frozenset[str]:
        return frozenset(edge.key for edge in self.edges)

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.plan.output_schema(catalog)

    def describe(self) -> str:
        hops = " ; ".join(edge.key for edge in self.edges) or "(single source)"
        return f"[{self.cost:.2f}] {self.root}: {hops}"

    def __str__(self) -> str:
        return self.describe()


def compile_tree(
    tree: SteinerTree,
    catalog: Catalog,
    graph: SourceGraph,
    root: str | None = None,
    linker_factory: LinkerFactory | None = None,
    link_threshold: float = 0.25,
) -> IntegrationQuery:
    """Compile a Steiner tree into an executable plan.

    The root must be a base relation (services cannot be scanned); by
    default the lexicographically first non-service node is chosen.
    Attachment is a worklist: repeatedly attach any remaining tree edge
    whose already-attached endpoint can supply what the new endpoint needs.
    """
    linker_factory = linker_factory or _default_linker_factory
    non_services = sorted(
        name for name in tree.nodes if not graph.node(name).is_service
    )
    if root is None:
        if not non_services:
            raise IntegrationError(
                "cannot compile a tree containing only services"
            )
        root = non_services[0]
    elif root not in tree.nodes:
        raise IntegrationError(f"root {root!r} is not in the tree")
    if graph.node(root).is_service:
        raise IntegrationError(f"root {root!r} is a service; roots must be relations")

    plan: Plan = Scan(root)
    attached: set[str] = {root}
    remaining = list(tree.edges)

    while remaining:
        progressed = False
        for edge in list(remaining):
            extended = _try_attach(plan, edge, attached, catalog, graph, linker_factory, link_threshold)
            if extended is not None:
                plan = extended
                remaining.remove(edge)
                progressed = True
        if not progressed:
            stuck = ", ".join(edge.key for edge in remaining)
            raise IntegrationError(
                f"cannot orient tree edges into a plan (stuck on: {stuck})"
            )
    return IntegrationQuery(
        nodes=tree.nodes,
        edges=tree.edges,
        plan=plan,
        cost=tree.cost,
        root=root,
    )


def extend_query(
    query: IntegrationQuery,
    edge: Association,
    catalog: Catalog,
    graph: SourceGraph,
    linker_factory: LinkerFactory | None = None,
    link_threshold: float = 0.25,
) -> IntegrationQuery:
    """Attach one more edge/node to an existing query (column completion)."""
    linker_factory = linker_factory or _default_linker_factory
    attached = set(query.nodes)
    extended = _try_attach(
        query.plan, edge, attached, catalog, graph, linker_factory, link_threshold
    )
    if extended is None:
        raise IntegrationError(f"edge {edge.key} cannot extend query {query.describe()}")
    return IntegrationQuery(
        nodes=frozenset(attached),
        edges=query.edges + (edge,),
        plan=extended,
        cost=query.cost + graph.cost(edge),
        root=query.root,
    )


def _try_attach(
    plan: Plan,
    edge: Association,
    attached: set[str],
    catalog: Catalog,
    graph: SourceGraph,
    linker_factory: LinkerFactory,
    link_threshold: float,
) -> Plan | None:
    """Attach *edge* to *plan* if possible; mutates *attached* on success."""
    left_in = edge.left in attached
    right_in = edge.right in attached
    if left_in == right_in:  # both in (cycle) or both out (not yet reachable)
        return None
    schema = plan.output_schema(catalog)
    new_node = edge.right if left_in else edge.left

    if edge.kind == "service":
        # Conditions are (provider_attr, service_input); only the
        # provider→service direction is executable.
        if new_node != edge.right:
            return None  # would need to scan the service: impossible
        provider_attrs = [provider for provider, _ in edge.conditions]
        if any(attr not in schema for attr in provider_attrs):
            return None
        input_map = tuple(
            (service_input, provider_attr)
            for provider_attr, service_input in edge.conditions
        )
        attached.add(new_node)
        return DependentJoin(child=plan, service=edge.right, input_map=input_map)

    if graph.node(new_node).is_service:
        return None  # join/record-link edges cannot introduce a service

    if edge.kind in ("join", "fk"):
        if left_in:
            conditions = [(l, r) for l, r in edge.conditions]
        else:
            conditions = [(r, l) for l, r in edge.conditions]
        if any(l not in schema for l, _ in conditions):
            return None
        attached.add(new_node)
        return Join(left=plan, right=Scan(new_node), conditions=tuple(conditions))

    if edge.kind in ("record-link", "matcher"):
        if left_in:
            oriented = edge
        else:
            oriented = Association(
                left=edge.right,
                right=edge.left,
                kind=edge.kind,
                conditions=tuple((r, l) for l, r in edge.conditions),
                confidence=edge.confidence,
            )
        if any(l not in schema for l, _ in oriented.conditions):
            return None
        attached.add(new_node)
        return RecordLinkJoin(
            left=plan,
            right=Scan(new_node),
            linker=linker_factory(oriented),
            threshold=link_threshold,
        )

    raise GraphError(f"unknown edge kind {edge.kind!r}")
