"""SPCSH: the shortest-path pruning approximation for larger graphs.

Section 4.2: "For larger graphs we use the SPCSH Steiner tree approximation
algorithm, which prunes 'non-promising' edges from the source graph for
better scaling."

Implementation (Shortest-Paths-Complete-Subgraph Heuristic):

1. run Dijkstra from every terminal to get distances over the full graph;
2. keep only edges that lie on a *near-shortest* path between some terminal
   pair — edge (u, v) survives if for some terminals s, t:
   ``dist(s,u) + cost(u,v) + dist(v,t) ≤ stretch · dist(s,t)``;
3. run the exact enumeration on the (much smaller) pruned subgraph.

With ``stretch = 1.0`` this is the classic shortest-path heuristic; larger
stretch keeps more alternatives (better top-k diversity, slower search).
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ...errors import GraphError
from ...obs import METRICS, TRACER
from .source_graph import Association, SourceGraph
from .steiner import SteinerTree, exact_top_k_steiner


def dijkstra(graph: SourceGraph, source: str) -> dict[str, float]:
    """Min-cost distances from *source* to every reachable node."""
    if not graph.has_node(source):
        raise GraphError(f"no node named {source!r}")
    distances: dict[str, float] = {source: 0.0}
    heap: list[tuple[float, str]] = [(0.0, source)]
    done: set[str] = set()
    while heap:
        dist, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for edge in graph.edges_of(node):
            other = edge.other(node)
            candidate = dist + graph.cost(edge)
            if candidate < distances.get(other, float("inf")):
                distances[other] = candidate
                heapq.heappush(heap, (candidate, other))
    return distances


def prune_graph(
    graph: SourceGraph, terminals: Iterable[str], stretch: float = 1.5
) -> SourceGraph:
    """Subgraph of near-shortest-path edges between terminal pairs."""
    terminal_list = sorted(set(terminals))
    if len(terminal_list) < 1:
        raise GraphError("pruning needs at least one terminal")
    distances = {t: dijkstra(graph, t) for t in terminal_list}

    kept_edges: list[Association] = []
    for edge in graph.edges():
        cost = graph.cost(edge)
        keep = False
        for s in terminal_list:
            for t in terminal_list:
                if s >= t:
                    continue
                base = distances[s].get(t, float("inf"))
                if base == float("inf"):
                    continue
                via_left = (
                    distances[s].get(edge.left, float("inf"))
                    + cost
                    + distances[t].get(edge.right, float("inf"))
                )
                via_right = (
                    distances[s].get(edge.right, float("inf"))
                    + cost
                    + distances[t].get(edge.left, float("inf"))
                )
                if min(via_left, via_right) <= stretch * base + 1e-9:
                    keep = True
                    break
            if keep:
                break
        if keep:
            kept_edges.append(edge)

    pruned = SourceGraph()
    node_names = set(terminal_list)
    for edge in kept_edges:
        node_names.add(edge.left)
        node_names.add(edge.right)
    for name in sorted(node_names):
        pruned.add_node(graph.node(name))
    for edge in kept_edges:
        pruned.add_edge(edge, cost=graph.cost(edge))
    return pruned


def spcsh_top_k_steiner(
    graph: SourceGraph,
    terminals: Iterable[str],
    k: int = 3,
    stretch: float = 1.5,
    max_pruned_extra: int = 14,
) -> list[SteinerTree]:
    """Approximate top-k Steiner trees via pruning + exact on the remainder.

    ``max_pruned_extra`` bounds exact enumeration on the pruned graph; if
    pruning leaves more intermediates than that, the stretch is tightened
    until the subproblem is tractable.
    """
    terminal_list = sorted(set(terminals))
    with TRACER.span("steiner.spcsh") as span:
        current_stretch = stretch
        tightenings = 0
        for _ in range(6):
            with TRACER.span("steiner.spcsh.prune"):
                pruned = prune_graph(graph, terminal_list, stretch=current_stretch)
            extras = len(pruned) - len(terminal_list)
            if extras <= max_pruned_extra:
                break
            current_stretch = 1.0 + (current_stretch - 1.0) / 2.0
            tightenings += 1
        trees = exact_top_k_steiner(pruned, terminal_list, k=k)
        if span.is_recording():
            span.set("nodes_in", len(graph))
            span.set("nodes_pruned_to", len(pruned))
            span.set("edges_kept", pruned.n_edges)
            span.set("stretch", round(current_stretch, 4))
            span.set("stretch_tightenings", tightenings)
        if METRICS.enabled:
            METRICS.inc("steiner.spcsh_calls")
            METRICS.inc("steiner.spcsh_stretch_tightenings", tightenings)
            METRICS.observe("steiner.spcsh_pruned_nodes", float(len(pruned)))
        return trees
