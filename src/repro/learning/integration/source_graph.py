"""The source graph (Figure 4).

Section 4: "this learner maintains a *source graph*, in which nodes describe
the schemas of data sources and ... *services* ... Edges describe possible
means of linking data from one source to another, e.g., by joining or by
passing parameters to a dependent source like a Web service. Edges receive
*weights* defining how relevant they are to the integration operation being
performed; the weights are typically pre-initialized to a default value and
then adjusted through learning."

We use *costs* (lower = more relevant), matching the ``c_i`` annotations of
Figure 4 and the additive BLINKS-style model of Section 4.2. Edge weights
live in the graph's ``weights`` mapping, keyed by each edge's stable key —
the MIRA learner mutates exactly that mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...errors import GraphError
from ...substrate.relational.catalog import Catalog
from ...substrate.relational.schema import Schema

#: Association kinds and their default costs. The defaults sit below the
#: relevance threshold so fresh edges are eligible for suggestion (Section
#: 4.1: "a default value that exceeds the threshold necessary for the edge to
#: be suggested" — with costs, *below* the cutoff).
DEFAULT_COSTS = {
    "join": 1.0,
    "fk": 0.8,
    "service": 1.0,
    "record-link": 1.5,
    "matcher": 1.8,
}


@dataclass(frozen=True)
class Association:
    """An edge: a way to connect two sources.

    ``conditions`` are (left_attr, right_attr) pairs — for ``join``/``fk``/
    ``record-link`` they are the equality (or approximate-match) predicates;
    for ``service`` edges, ``left`` is the *provider* source, ``right`` is
    the service, and each pair maps a provider attribute to the service
    input it feeds.
    """

    left: str
    right: str
    kind: str
    conditions: tuple[tuple[str, str], ...]
    confidence: float = 1.0   # e.g. a schema matcher's confidence

    def __post_init__(self) -> None:
        if self.kind not in DEFAULT_COSTS:
            raise GraphError(f"unknown association kind {self.kind!r}")
        object.__setattr__(self, "conditions", tuple(tuple(c) for c in self.conditions))

    @property
    def key(self) -> str:
        """Stable feature key: this is the MIRA feature for the edge."""
        conds = ",".join(f"{a}={b}" for a, b in self.conditions)
        return f"{self.left}--{self.right}[{self.kind}:{conds}]"

    def other(self, source: str) -> str:
        if source == self.left:
            return self.right
        if source == self.right:
            return self.left
        raise GraphError(f"{source!r} is not an endpoint of {self.key}")

    def touches(self, source: str) -> bool:
        return source in (self.left, self.right)

    def default_cost(self) -> float:
        base = DEFAULT_COSTS[self.kind]
        if self.kind == "matcher":
            # Uncertain matcher edges: cost grows as confidence shrinks
            # ("initialized with an edge weight derived from the schema
            # matcher's confidence score", Section 4.1).
            return base + (1.0 - self.confidence)
        return base

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class SourceNode:
    """A node: a source (relation) or service with its schema."""

    name: str
    schema: Schema
    is_service: bool
    inputs: tuple[str, ...] = ()    # binding-restricted attributes
    invoke_cost: float = 1.0        # the service's declared invocation cost

    @property
    def outputs(self) -> tuple[str, ...]:
        return tuple(n for n in self.schema.names if n not in self.inputs)


class SourceGraph:
    """Nodes, association edges, and the learned weight vector."""

    def __init__(self) -> None:
        self._nodes: dict[str, SourceNode] = {}
        self._edges: dict[str, Association] = {}
        self._adjacency: dict[str, list[str]] = {}
        self.weights: dict[str, float] = {}

    # -- construction ------------------------------------------------------------
    def add_node(self, node: SourceNode) -> SourceNode:
        self._nodes[node.name] = node
        self._adjacency.setdefault(node.name, [])
        return node

    def add_edge(self, edge: Association, cost: float | None = None) -> Association:
        for endpoint in (edge.left, edge.right):
            if endpoint not in self._nodes:
                raise GraphError(f"edge endpoint {endpoint!r} is not a node")
        if edge.left == edge.right:
            raise GraphError(f"self-loop on {edge.left!r}")
        if edge.key in self._edges:
            return self._edges[edge.key]
        self._edges[edge.key] = edge
        self._adjacency[edge.left].append(edge.key)
        self._adjacency[edge.right].append(edge.key)
        self.weights.setdefault(edge.key, cost if cost is not None else edge.default_cost())
        return edge

    @staticmethod
    def node_from_catalog(catalog: Catalog, name: str) -> SourceNode:
        if catalog.is_service(name):
            service = catalog.service(name)
            return SourceNode(
                name=name,
                schema=service.schema,
                is_service=True,
                inputs=service.input_names,
                invoke_cost=service.cost,
            )
        return SourceNode(name=name, schema=catalog.schema(name), is_service=False)

    # -- access --------------------------------------------------------------------
    def node(self, name: str) -> SourceNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> list[SourceNode]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def edges(self) -> list[Association]:
        return [self._edges[key] for key in sorted(self._edges)]

    def edge(self, key: str) -> Association:
        try:
            return self._edges[key]
        except KeyError:
            raise GraphError(f"no edge with key {key!r}") from None

    def edges_of(self, source: str) -> list[Association]:
        if source not in self._adjacency:
            raise GraphError(f"no node named {source!r}")
        return [self._edges[key] for key in self._adjacency[source]]

    def cost(self, edge: Association | str) -> float:
        key = edge if isinstance(edge, str) else edge.key
        try:
            return self.weights[key]
        except KeyError:
            raise GraphError(f"edge {key!r} has no weight") from None

    def set_cost(self, edge: Association | str, cost: float) -> None:
        key = edge if isinstance(edge, str) else edge.key
        if key not in self._edges:
            raise GraphError(f"no edge with key {key!r}")
        self.weights[key] = cost

    def tree_cost(self, edges: Iterable[Association]) -> float:
        """Query cost = sum of constituent edge weights (Section 4.2)."""
        return sum(self.cost(edge) for edge in edges)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"SourceGraph({len(self._nodes)} nodes, {len(self._edges)} edges)"

    # -- rendering ---------------------------------------------------------------
    def render(self) -> str:
        """Text rendering in the spirit of Figure 4."""
        lines = []
        for node in self.nodes():
            shape = "(service)" if node.is_service else "[source]"
            binding = f" needs({', '.join(node.inputs)})" if node.inputs else ""
            lines.append(f"{shape} {node.name}({', '.join(node.schema.names)}){binding}")
        for assoc in self.edges():
            lines.append(f"  {assoc.key}  c={self.cost(assoc):.2f}")
        return "\n".join(lines)
