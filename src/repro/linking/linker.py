"""The learnable record linker.

"CopyCat learns the best combination of heuristics for this case of record
linking, via a combination of generalizing examples (the integrator might
paste matches for several shelters) and accepting feedback (she might accept
or reject suggested matches)." (Example 1)

:class:`LearnedLinker` keeps a weight per similarity feature and scores a
pair as the weighted mean of its features. Training is online
passive-aggressive ranking (the same MIRA family as the integration
learner): each labeled example (a true match for some left row, against the
current best non-match) yields a margin constraint; weights move just enough
to satisfy it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import LearningError
from ..substrate.relational.algebra import RowLinker
from ..substrate.relational.rows import Row
from .similarity import DEFAULT_SIMILARITIES, FeatureExtractor, FieldPair


@dataclass
class LinkExample:
    """One supervised example: this left row matches that right row."""

    left: Any
    right: Any
    is_match: bool = True


class LearnedLinker(RowLinker):
    """A record linker with learnable heuristic weights.

    With no training it behaves as the uniform heuristic mix (every
    similarity weighted equally); training sharpens weights toward the
    heuristics that actually separate matches from non-matches in this
    domain (e.g. acronym matching for "HS" ↔ "High School").
    """

    def __init__(
        self,
        field_pairs: Sequence[FieldPair],
        similarities: dict | None = None,
        aggressiveness: float = 0.5,
        margin: float = 0.2,
    ):
        self.extractor = FeatureExtractor(field_pairs, similarities or DEFAULT_SIMILARITIES)
        names = self.extractor.feature_names()
        if not names:
            raise LearningError("linker needs at least one field pair")
        initial = 1.0 / len(names)
        self.weights: dict[str, float] = {name: initial for name in names}
        self.aggressiveness = aggressiveness
        self.margin = margin
        self.updates = 0

    # -- scoring ----------------------------------------------------------------
    def score(self, left: Row | dict, right: Row | dict) -> float:
        features = self.extractor.extract(left, right)
        raw = sum(self.weights[name] * value for name, value in features.items())
        total_weight = sum(self.weights.values())
        if total_weight <= 0:
            return 0.0
        return raw / total_weight

    def block_attribute_pairs(self) -> tuple[tuple[str, str], ...]:
        """The compared field pairs double as blocking keys (see RowLinker)."""
        return tuple(
            (pair.left, pair.right) for pair in self.extractor.field_pairs
        )

    def describe(self) -> str:
        strongest = sorted(self.weights.items(), key=lambda kv: -kv[1])[:3]
        inner = ", ".join(f"{name}={weight:.2f}" for name, weight in strongest)
        return f"LearnedLinker({inner}, ...)"

    # -- matching -----------------------------------------------------------------
    def best_match(
        self, left: Any, right_rows: Sequence[Any], threshold: float = 0.0
    ) -> tuple[int, float] | None:
        """Index and score of the best right row, or None below threshold."""
        best_index, best_score = -1, -math.inf
        for j, right in enumerate(right_rows):
            current = self.score(left, right)
            if current > best_score:
                best_index, best_score = j, current
        if best_index < 0 or best_score < threshold:
            return None
        return best_index, best_score

    def link_all(
        self, left_rows: Sequence[Any], right_rows: Sequence[Any], threshold: float = 0.0
    ) -> list[tuple[int, int, float]]:
        """(left index, right index, score) for each left row's best match."""
        out = []
        for i, left in enumerate(left_rows):
            match = self.best_match(left, right_rows, threshold)
            if match is not None:
                out.append((i, match[0], match[1]))
        return out

    # -- learning -----------------------------------------------------------------
    def train_pairwise(self, positive: Any, negative: Any, anchor: Any) -> bool:
        """One ranking update: *anchor* should prefer *positive* to *negative*.

        Passive-aggressive: if score(anchor, positive) already beats
        score(anchor, negative) by the margin, do nothing; otherwise move
        weights minimally (closed-form τ, capped by aggressiveness).
        Returns True when an update was applied.
        """
        features_pos = self.extractor.extract(anchor, positive)
        features_neg = self.extractor.extract(anchor, negative)
        diff = {
            name: features_pos[name] - features_neg[name] for name in features_pos
        }
        score_gap = sum(self.weights[name] * value for name, value in diff.items())
        loss = self.margin - score_gap
        if loss <= 0:
            return False
        norm_sq = sum(value * value for value in diff.values())
        if norm_sq == 0:
            return False
        tau = min(self.aggressiveness, loss / norm_sq)
        for name, value in diff.items():
            self.weights[name] = max(0.0, self.weights[name] + tau * value)
        self.updates += 1
        return True

    def train(
        self,
        examples: Sequence[LinkExample],
        right_rows: Sequence[Any],
        epochs: int = 3,
    ) -> int:
        """Train from match examples against a candidate pool.

        For each positive example, the negative is the *current* best-scoring
        non-match (hard negative mining); explicit negative examples
        (``is_match=False``, from rejected suggestions) are ranked below
        every positive for the same anchor.
        """
        applied = 0
        positives = [example for example in examples if example.is_match]
        negatives = [example for example in examples if not example.is_match]
        for _ in range(epochs):
            for example in positives:
                pool = [
                    row
                    for row in right_rows
                    if not _same_row(row, example.right)
                ]
                if not pool:
                    continue
                best = self.best_match(example.left, pool)
                if best is None:
                    continue
                hard_negative = pool[best[0]]
                if self.train_pairwise(example.right, hard_negative, example.left):
                    applied += 1
            for rejection in negatives:
                # Rejected suggestion: every known positive for this anchor
                # must outrank it.
                for example in positives:
                    if _same_row(example.left, rejection.left):
                        if self.train_pairwise(example.right, rejection.right, example.left):
                            applied += 1
        return applied


def _same_row(a: Any, b: Any) -> bool:
    da = a.as_dict() if isinstance(a, Row) else dict(a)
    db = b.as_dict() if isinstance(b, Row) else dict(b)
    return da == db


def make_name_address_linker() -> LearnedLinker:
    """The scenario's default linker: shelter Name↔Shelter plus addresses."""
    return LearnedLinker(
        field_pairs=[FieldPair("Name", "Shelter"), FieldPair("Street", "Address")]
    )
