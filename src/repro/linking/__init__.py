"""Record linking: similarity heuristics, blocking, and the learnable linker."""

from .blocking import candidate_pairs, exact_block_key, full_cross, token_block_key
from .linker import LearnedLinker, LinkExample, make_name_address_linker
from .similarity import (
    DEFAULT_SIMILARITIES,
    FeatureExtractor,
    FieldPair,
    acronym_match,
    exact_match,
    prefix_containment,
)

__all__ = [
    "DEFAULT_SIMILARITIES", "FeatureExtractor", "FieldPair", "LearnedLinker",
    "LinkExample", "acronym_match", "candidate_pairs", "exact_block_key",
    "exact_match", "full_cross", "make_name_address_linker",
    "prefix_containment", "token_block_key",
]
