"""Blocking: cheap candidate-pair generation for record linking.

Comparing every left row against every right row is quadratic; blocking
restricts comparisons to pairs that share a cheap key (a token, a zip code).
At CopyCat's scale this is an efficiency courtesy rather than a necessity,
but the linker uses it so behaviour matches real record-linking pipelines.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..util.text import token_strings

BlockKeyFn = Callable[[Any], Iterable[str]]


def token_block_key(attribute: str) -> BlockKeyFn:
    """Block on each lowercase token of one attribute."""

    def key(row: Any) -> Iterable[str]:
        value = row.get(attribute) if hasattr(row, "get") else row[attribute]
        if value is None:
            return ()
        return {token.lower() for token in token_strings(str(value)) if len(token) > 1}

    return key


def exact_block_key(attribute: str) -> BlockKeyFn:
    """Block on the exact (lowercased) value of one attribute."""

    def key(row: Any) -> Iterable[str]:
        value = row.get(attribute) if hasattr(row, "get") else row[attribute]
        if value is None:
            return ()
        return (str(value).strip().lower(),)

    return key


def candidate_pairs(
    left_rows: Sequence[Any],
    right_rows: Sequence[Any],
    key_fns: Sequence[tuple[BlockKeyFn, BlockKeyFn]],
) -> list[tuple[int, int]]:
    """Index pairs (i, j) sharing at least one block key under any key pair.

    ``key_fns`` is a list of (left_key_fn, right_key_fn) tuples; a pair is a
    candidate if any function pair produces an overlapping key.
    """
    left_keys = [[left_key(row) for row in left_rows] for left_key, _ in key_fns]
    right_keys = [[right_key(row) for row in right_rows] for _, right_key in key_fns]
    return candidate_pairs_from_keys(left_keys, right_keys)


def candidate_pairs_from_keys(
    left_keys: Sequence[Sequence[Iterable[str]]],
    right_keys: Sequence[Sequence[Iterable[str]]],
) -> list[tuple[int, int]]:
    """Index pairs (i, j) whose precomputed key sets overlap, any key family.

    ``left_keys[f][i]`` is the key set of left row *i* under key family
    *f* (and symmetrically for the right side). This is the batch-at-a-time
    core shared by the row-based :func:`candidate_pairs` and the columnar
    evaluator (which derives key columns directly from its value arrays,
    via :func:`column_token_keys`, without materializing rows).
    """
    pairs: set[tuple[int, int]] = set()
    for family_left, family_right in zip(left_keys, right_keys):
        index: dict[str, list[int]] = {}
        for j, keys in enumerate(family_right):
            for key in keys:
                index.setdefault(key, []).append(j)
        for i, keys in enumerate(family_left):
            for key in keys:
                for j in index.get(key, ()):
                    pairs.add((i, j))
    return sorted(pairs)


def column_token_keys(values: Sequence[Any]) -> list[Iterable[str]]:
    """Per-value token block keys for a whole column in one pass.

    Mirrors :func:`token_block_key` exactly (lowercased tokens longer than
    one character; ``None`` blocks nothing) but takes the value array
    straight from a columnar batch.
    """
    keys: list[Iterable[str]] = []
    for value in values:
        if value is None:
            keys.append(())
        else:
            keys.append(
                {token.lower() for token in token_strings(str(value)) if len(token) > 1}
            )
    return keys


def full_cross(left_rows: Sequence[Any], right_rows: Sequence[Any]) -> list[tuple[int, int]]:
    """Every pair — the no-blocking baseline."""
    return [(i, j) for i in range(len(left_rows)) for j in range(len(right_rows))]
