"""Blocking: cheap candidate-pair generation for record linking.

Comparing every left row against every right row is quadratic; blocking
restricts comparisons to pairs that share a cheap key (a token, a zip code).
At CopyCat's scale this is an efficiency courtesy rather than a necessity,
but the linker uses it so behaviour matches real record-linking pipelines.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..util.text import token_strings

BlockKeyFn = Callable[[Any], Iterable[str]]


def token_block_key(attribute: str) -> BlockKeyFn:
    """Block on each lowercase token of one attribute."""

    def key(row: Any) -> Iterable[str]:
        value = row.get(attribute) if hasattr(row, "get") else row[attribute]
        if value is None:
            return ()
        return {token.lower() for token in token_strings(str(value)) if len(token) > 1}

    return key


def exact_block_key(attribute: str) -> BlockKeyFn:
    """Block on the exact (lowercased) value of one attribute."""

    def key(row: Any) -> Iterable[str]:
        value = row.get(attribute) if hasattr(row, "get") else row[attribute]
        if value is None:
            return ()
        return (str(value).strip().lower(),)

    return key


def candidate_pairs(
    left_rows: Sequence[Any],
    right_rows: Sequence[Any],
    key_fns: Sequence[tuple[BlockKeyFn, BlockKeyFn]],
) -> list[tuple[int, int]]:
    """Index pairs (i, j) sharing at least one block key under any key pair.

    ``key_fns`` is a list of (left_key_fn, right_key_fn) tuples; a pair is a
    candidate if any function pair produces an overlapping key.
    """
    pairs: set[tuple[int, int]] = set()
    for left_key, right_key in key_fns:
        index: dict[str, list[int]] = {}
        for j, row in enumerate(right_rows):
            for key in right_key(row):
                index.setdefault(key, []).append(j)
        for i, row in enumerate(left_rows):
            for key in left_key(row):
                for j in index.get(key, ()):
                    pairs.add((i, j))
    return sorted(pairs)


def full_cross(left_rows: Sequence[Any], right_rows: Sequence[Any]) -> list[tuple[int, int]]:
    """Every pair — the no-blocking baseline."""
    return [(i, j) for i in range(len(left_rows)) for j in range(len(right_rows))]
