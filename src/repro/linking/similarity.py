"""Field-pair similarity features for record linking.

Example 1: "the match might not be a direct lookup, but rather the result of
approximate record linking techniques ... CopyCat learns the best
combination of heuristics for this case of record linking". The heuristics
are feature functions over a pair of field values; the linker learns their
combination weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..util.strings import (
    jaro_winkler,
    levenshtein_ratio,
    ngram_dice,
    token_jaccard,
)
from ..util.text import normalize, token_strings

SimilarityFn = Callable[[str, str], float]


def exact_match(a: str, b: str) -> float:
    """1.0 iff the normalized strings are identical."""
    return 1.0 if normalize(a) == normalize(b) else 0.0


def prefix_containment(a: str, b: str) -> float:
    """Token-prefix containment: does one string start with the other's tokens?

    Catches truncations like ``"Monarch High School" → "Monarch High"``.
    """
    tokens_a = [token.lower() for token in token_strings(a)]
    tokens_b = [token.lower() for token in token_strings(b)]
    if not tokens_a or not tokens_b:
        return 0.0
    shorter, longer = sorted((tokens_a, tokens_b), key=len)
    if longer[: len(shorter)] == shorter:
        return len(shorter) / len(longer)
    return 0.0


def acronym_match(a: str, b: str) -> float:
    """Abbreviation evidence: ``HS`` vs ``High School``, ``Elem`` etc.

    Scores the fraction of the shorter string's tokens that are prefixes or
    initials of tokens in the longer string, in order.
    """
    tokens_a = [token.lower() for token in token_strings(a)]
    tokens_b = [token.lower() for token in token_strings(b)]
    if not tokens_a or not tokens_b:
        return 0.0
    short, long_ = sorted((tokens_a, tokens_b), key=len)
    # Expand potential initialisms: "hs" -> ["h", "s"]
    expanded: list[str] = []
    for token in short:
        if len(token) <= 3 and token.isalpha() and token not in long_:
            expanded.extend(token)
        else:
            expanded.append(token)
    matched = 0
    cursor = 0
    for piece in expanded:
        while cursor < len(long_):
            candidate = long_[cursor]
            cursor += 1
            if candidate == piece or candidate.startswith(piece):
                matched += 1
                break
    return matched / len(expanded) if expanded else 0.0


#: The default heuristic library ("in some cases, use a function from a
#: predefined library", Section 2.2).
DEFAULT_SIMILARITIES: dict[str, SimilarityFn] = {
    "exact": exact_match,
    "jaro_winkler": jaro_winkler,
    "levenshtein": levenshtein_ratio,
    "token_jaccard": token_jaccard,
    "ngram_dice": ngram_dice,
    "prefix": prefix_containment,
    "acronym": acronym_match,
}


@dataclass(frozen=True)
class FieldPair:
    """Which left attribute is compared with which right attribute."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left}~{self.right}"


class FeatureExtractor:
    """Computes the named feature vector for a pair of records.

    One feature per (field pair × similarity function); feature names are
    ``"Name~Shelter:jaro_winkler"`` style, so learned weights are readable.
    """

    def __init__(
        self,
        field_pairs: Sequence[FieldPair],
        similarities: dict[str, SimilarityFn] | None = None,
    ):
        self.field_pairs = list(field_pairs)
        self.similarities = dict(similarities or DEFAULT_SIMILARITIES)

    def feature_names(self) -> list[str]:
        return [
            f"{pair}:{sim_name}"
            for pair in self.field_pairs
            for sim_name in self.similarities
        ]

    def extract(self, left: Any, right: Any) -> dict[str, float]:
        """Feature vector for (*left*, *right*); inputs are dict-like rows."""
        features: dict[str, float] = {}
        for pair in self.field_pairs:
            value_left = _get(left, pair.left)
            value_right = _get(right, pair.right)
            for sim_name, fn in self.similarities.items():
                key = f"{pair}:{sim_name}"
                if value_left is None or value_right is None:
                    features[key] = 0.0
                else:
                    features[key] = fn(str(value_left), str(value_right))
        return features


def _get(row: Any, name: str) -> Any:
    if hasattr(row, "get"):
        return row.get(name)
    return row[name]
