"""CopyCat: a reproduction of "Interactive Data Integration through Smart
Copy & Paste" (Ives et al., CIDR 2009).

The public API re-exports the pieces a downstream user needs: the session
(the SCP control loop), the simulated applications and clipboard, the
scenario builder, and the learners for standalone use.
"""

from .core.session import CopyCatSession, PasteOutcome
from .core.workspace import CellState, Mode, Workspace, WorkspaceTable
from .core.export import to_csv, to_map_html, to_xml
from .core.usersim import KeystrokeModel, ManualUser, ScpUser
from .data.scenario import Scenario, build_scenario
from .io import load_session, save_session
from .learning.integration.learner import IntegrationLearner
from .learning.model.seed import seed_type_learner
from .learning.model.type_learner import SemanticTypeLearner
from .learning.structure.learner import StructureLearner
from .learning.transforms import Transform, TransformLearner
from .linking.linker import LearnedLinker
from .server import SessionManager, SharedBase
from .substrate.documents.apps import Browser, SpreadsheetApp
from .substrate.documents.clipboard import Clipboard
from .substrate.relational.catalog import Catalog

__version__ = "1.0.0"

__all__ = [
    "Browser", "Catalog", "CellState", "Clipboard", "CopyCatSession",
    "IntegrationLearner", "KeystrokeModel", "LearnedLinker", "ManualUser",
    "Mode", "PasteOutcome", "Scenario", "ScpUser", "SemanticTypeLearner",
    "SessionManager", "SharedBase",
    "SpreadsheetApp", "StructureLearner", "Transform", "TransformLearner",
    "Workspace", "WorkspaceTable",
    "__version__", "build_scenario", "load_session", "save_session",
    "seed_type_learner", "to_csv",
    "to_map_html", "to_xml",
]
