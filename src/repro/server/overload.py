"""Overload protection for the session server.

The paper's premise is *interactive* integration — a paste answered at
human latencies. Under load, an unprotected dispatcher destroys exactly
that: queues grow without bound, one chatty tenant monopolizes the pool,
and abandoned requests keep burning workers long after the user gave up.
This module holds the four mechanisms the
:class:`~repro.server.manager.SessionManager` threads together:

- **admission control** — :class:`Overloaded` is the typed fail-fast
  error a submit past the per-tenant queue bound, the server-wide
  inflight watermark, or the token bucket receives, always carrying a
  ``retry_after_ms`` hint. Between the soft and hard inflight watermarks
  a *seeded* probabilistic ramp (:class:`ShedPolicy`) sheds early — the
  same sha256 draw idiom as :mod:`repro.resilience.faults`, so chaos
  runs reproduce shed-for-shed;
- **deadline propagation** — a request's
  :class:`~repro.resilience.retry.Deadline` rides a thread-local scope
  (:func:`deadline_scope`); long evaluation loops call
  :func:`check_deadline` at cooperative checkpoints and abort with
  :class:`RequestExpired` once the budget is gone.
  :func:`shielded_deadline` masks the scope while a *durable* recorded
  action runs: the action is already on the write-ahead log, so aborting
  its body mid-way would let replay complete an action the live session
  never finished;
- **fairness** — :class:`TokenBucket` rate-limits each tenant's
  admissions; the manager's deficit-round-robin drain (quantum in
  :data:`~repro.server.config.OVERLOAD`) bounds how long one tenant may
  hold a worker;
- **brownout** — :class:`LoadController` watches per-request latency and
  inflight pressure and, after ``brownout_hold`` consecutive hot
  observations, flips the server into degraded service (suggestion-batch
  reuse, cache-tier shrink, dependent-join calls degraded through the
  resilience path), recovering with the same hysteresis.

Everything is gated on ``OVERLOAD.enabled`` (``REPRO_OVERLOAD=0``), under
which dispatch reproduces the unprotected server bit-for-bit.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from contextlib import contextmanager

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_lock
from ..errors import CopyCatError
from ..obs import METRICS
from ..obs.metrics import percentile
from ..resilience.retry import Deadline
from .config import OVERLOAD

__all__ = [
    "LEVEL_DEGRADED",
    "LEVEL_NORMAL",
    "LoadController",
    "Overloaded",
    "RequestExpired",
    "SessionError",
    "ShedPolicy",
    "TokenBucket",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "overload_stats_line",
    "shielded_deadline",
]

#: Service levels a session can run at (brownout flips between them).
LEVEL_NORMAL = "normal"
LEVEL_DEGRADED = "degraded"


class SessionError(CopyCatError):
    """Raised for session-manager lifecycle misuse (unknown/closed state)."""


class Overloaded(SessionError):
    """A submit refused by admission control; retry after ``retry_after_ms``.

    ``reason`` names which limit fired: ``"queue"`` (per-tenant dispatch
    queue full), ``"inflight"`` (server-wide watermark), ``"rate"``
    (token bucket empty), ``"early"`` (seeded pressure ramp), or
    ``"deadline"`` (see :class:`RequestExpired`).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str,
        retry_after_ms: float,
        tenant: str | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.retry_after_ms = retry_after_ms
        self.tenant = tenant


class RequestExpired(Overloaded):
    """A request whose deadline ran out — shed at dequeue, or aborted at a
    cooperative checkpoint mid-run. ``checkpoint`` names where."""

    def __init__(
        self,
        message: str,
        *,
        checkpoint: str,
        retry_after_ms: float = 1.0,
        tenant: str | None = None,
    ):
        super().__init__(
            message, reason="deadline", retry_after_ms=retry_after_ms, tenant=tenant
        )
        self.checkpoint = checkpoint


# -- deadline propagation ----------------------------------------------------
# One ambient deadline per thread: the manager opens a scope around each
# request body, and anything the request transitively runs (evaluator,
# autocomplete) polls it without signature changes through the stack.
_TLS = threading.local()


def current_deadline() -> Deadline | None:
    """The deadline governing the current thread's request, if any."""
    return getattr(_TLS, "deadline", None)


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install *deadline* as the thread's ambient deadline for the block."""
    previous = getattr(_TLS, "deadline", None)
    _TLS.deadline = deadline
    try:
        yield deadline
    finally:
        _TLS.deadline = previous


@contextmanager
def shielded_deadline():
    """Mask the ambient deadline for the block.

    Durable recorded actions run under this shield: the write-ahead record
    already exists when the body starts, so a mid-body abort would leave a
    log whose replay *completes* an action the live session abandoned —
    breaking replay bit-identity. The deadline re-applies (and fires) at
    the first checkpoint after the action returns.
    """
    with deadline_scope(None):
        yield


def check_deadline(checkpoint: str) -> None:
    """Cooperative cancellation point: raise once the budget is spent.

    A no-op when no deadline is in scope or the overload layer is off, so
    sprinkling checkpoints through evaluation loops costs one thread-local
    read on the common path.
    """
    deadline = getattr(_TLS, "deadline", None)
    if deadline is None or not OVERLOAD.enabled:
        return
    if deadline.expired:
        if METRICS.enabled:
            METRICS.inc("overload.canceled")
        raise RequestExpired(
            f"deadline of {deadline.budget_ms:g}ms expired at {checkpoint} "
            f"({deadline.elapsed_ms():.1f}ms elapsed)",
            checkpoint=checkpoint,
            retry_after_ms=max(1.0, OVERLOAD.retry_after_ms),
        )


# -- per-tenant fairness -----------------------------------------------------
class TokenBucket:
    """A per-tenant admission rate limiter on the manager's clock.

    ``rate`` tokens/second refill toward ``burst``; an admission spends
    one. ``rate <= 0`` admits everything (the default — the bucket is for
    operators who want hard per-tenant ceilings).
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = float(rate)
        self.burst = float(max(1, burst))
        self.tokens = self.burst
        self.stamp = now

    def try_acquire(self, now: float) -> bool:
        if self.rate <= 0:
            return True
        self.tokens = min(self.burst, self.tokens + max(0.0, now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_ms(self) -> float:
        """How long until one token refills (the shed error's hint)."""
        if self.rate <= 0:
            return 0.0
        return max(1.0, (1.0 - self.tokens) / self.rate * 1000.0)


# -- seeded early shed -------------------------------------------------------
class ShedPolicy:
    """Deterministic probabilistic shedding between the watermarks.

    Sheds ramp linearly from probability 0 at ``shed_soft`` pressure to 1
    at the hard watermark. The decision for (tenant, admission index) is a
    pure sha256 draw — the idiom :mod:`repro.resilience.faults` uses — so
    a storm replayed with the same seed sheds the same requests.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed)

    def draw(self, tenant_id: str, index: int) -> float:
        token = f"{self.seed}:{tenant_id}:{index}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def should_shed(self, tenant_id: str, index: int, pressure: float, soft: float) -> bool:
        if soft >= 1.0 or pressure < soft:
            return False
        probability = min(1.0, (pressure - soft) / (1.0 - soft))
        return self.draw(tenant_id, index) < probability


# -- brownout ----------------------------------------------------------------
class LoadController:
    """Watches load and flips service level with hysteresis.

    Fed one ``(latency_ms, pressure)`` observation per finished request.
    An observation is *hot* when inflight pressure exceeds
    ``brownout_pressure`` or the rolling window is full with p95 latency
    over ``brownout_p95_ms``; *cool* when pressure is under
    ``brownout_exit`` and p95 is back under the threshold. Only
    ``brownout_hold`` **consecutive** hot (resp. cool) observations flip
    the level — one spike never browns the server out, one fast request
    never snaps it back. The window clears on each transition so the old
    regime's latencies don't vote on the new one.
    """

    def __init__(self, config=None):
        self._config = config if config is not None else OVERLOAD
        self._lock = make_lock("LoadController._lock")
        self._window: deque[float] = deque(maxlen=max(4, self._config.brownout_window))
        self._streak = 0
        self.level = LEVEL_NORMAL
        self.entered = 0
        self.exited = 0

    def p95_ms(self) -> float:
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("LoadController._window", self, write=False)
            if not self._window:
                return 0.0
            return percentile(sorted(self._window), 0.95)

    def observe(self, latency_ms: float, pressure: float) -> str | None:
        """Fold one observation in; ``"enter"``/``"exit"`` on a transition."""
        cfg = self._config
        with self._lock:
            if RACECHECK.enabled:
                TRACKER.note_access("LoadController._window", self)
            window = self._window
            window.append(latency_ms)
            p95 = percentile(sorted(window), 0.95)
            full = len(window) == window.maxlen
            if self.level == LEVEL_NORMAL:
                hot = pressure >= cfg.brownout_pressure or (
                    full and p95 > cfg.brownout_p95_ms
                )
                self._streak = self._streak + 1 if hot else 0
                if self._streak >= max(1, cfg.brownout_hold):
                    self.level = LEVEL_DEGRADED
                    self.entered += 1
                    self._streak = 0
                    window.clear()
                    return "enter"
            else:
                cool = pressure <= cfg.brownout_exit and p95 <= cfg.brownout_p95_ms
                self._streak = self._streak + 1 if cool else 0
                if self._streak >= max(1, cfg.brownout_hold):
                    self.level = LEVEL_NORMAL
                    self.exited += 1
                    self._streak = 0
                    window.clear()
                    return "exit"
        return None

    def __repr__(self) -> str:
        return (
            f"LoadController({self.level}, entered={self.entered}, "
            f"exited={self.exited}, p95={self.p95_ms():.1f}ms)"
        )


# -- trace line --------------------------------------------------------------
def overload_stats_line(manager=None, metrics=None) -> str:
    """One-line summary of overload activity (``--trace`` output)."""
    if manager is not None:
        o = manager.stats()["overload"]
        reasons = o["shed_reasons"]
        shed, expired, canceled = o["shed"], o["expired"], o["canceled"]
        entered, exited, level = o["brownout_entered"], o["brownout_exited"], o["level"]
        inflight = o["inflight"]
    else:
        m = metrics
        if m is None:
            m = METRICS
        reasons = {
            name: int(m.counter_value(f"overload.shed_{name}"))
            for name in ("queue", "inflight", "rate", "early")
        }
        shed = sum(reasons.values())
        expired = int(m.counter_value("overload.shed_deadline"))
        canceled = int(m.counter_value("overload.canceled"))
        entered = int(m.counter_value("overload.brownout_entered"))
        exited = int(m.counter_value("overload.brownout_exited"))
        gauge = m.gauge_value("overload.level")
        level = LEVEL_DEGRADED if gauge else LEVEL_NORMAL
        inflight_gauge = m.gauge_value("overload.inflight")
        inflight = int(inflight_gauge) if inflight_gauge is not None else 0
    line = (
        f"overload: {shed} shed (queue {reasons['queue']} · "
        f"inflight {reasons['inflight']} · rate {reasons['rate']} · "
        f"early {reasons['early']}) · {expired} expired · {canceled} canceled · "
        f"brownout {entered} in / {exited} out ({level}) · {inflight} inflight"
    )
    if not OVERLOAD.enabled:
        line += " · disabled"
    return line
