"""The multi-tenant concurrent session server.

The paper's Smart Copy & Paste vision is an *interactive service* — many
users simultaneously pasting, accepting, and resyncing. This package turns
the single-session library into that shape:

- :mod:`~repro.server.config` — the :data:`SERVER` switch set
  (``REPRO_SERVER=0`` reproduces single-session behavior exactly);
- :mod:`~repro.server.base` — :class:`SharedBase`: the frozen base catalog
  plus the shared cache-tier bundle every tenant's evaluator consults;
- :mod:`~repro.server.manager` — :class:`SessionManager`: session registry
  and lifecycle (create / touch / LRU-evict / idle-TTL-expire) over a
  bounded worker pool, per-session FIFO dispatch, per-tenant deterministic
  seeding.

Tenant isolation model: the base catalog is frozen (mutation raises);
each tenant works on a copy-on-write fork carrying its own trust weights,
MIRA weights, workspace, and drift ledger; shared cache tiers key entries
on ``(cache scope, fingerprint, version)``, so pristine forks share warm
entries and diverged forks silently stop colliding.
"""

from __future__ import annotations

from .base import SharedBase
from .config import SERVER, ServerConfig
from .manager import SessionError, SessionManager

__all__ = [
    "SERVER",
    "ServerConfig",
    "SessionError",
    "SessionManager",
    "SharedBase",
    "server_stats_line",
]


def server_stats_line(manager: SessionManager | None = None, metrics=None) -> str:
    """One-line summary of server activity (``--trace`` output)."""
    if manager is not None:
        stats = manager.stats()
        return (
            f"server: {stats['active']} active · {stats['created']} created · "
            f"{stats['evicted']} evicted · {stats['expired']} expired · "
            f"{stats['requests']} requests ({stats['request_errors']} errors)"
        )
    from ..obs import METRICS

    m = metrics or METRICS
    created = int(m.counter_value("server.sessions_created"))
    evicted = int(m.counter_value("server.sessions_evicted"))
    expired = int(m.counter_value("server.sessions_expired"))
    requests = int(m.counter_value("server.requests"))
    errors = int(m.counter_value("server.request_errors"))
    active = m.gauge_value("server.sessions_active")
    line = (
        f"server: {int(active) if active is not None else 0} active · "
        f"{created} created · {evicted} evicted · {expired} expired · "
        f"{requests} requests ({errors} errors)"
    )
    if not SERVER.enabled:
        line += " · disabled"
    return line
