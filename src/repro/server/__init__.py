"""The multi-tenant concurrent session server.

The paper's Smart Copy & Paste vision is an *interactive service* — many
users simultaneously pasting, accepting, and resyncing. This package turns
the single-session library into that shape:

- :mod:`~repro.server.config` — the :data:`SERVER` and :data:`OVERLOAD`
  switch sets (``REPRO_SERVER=0`` reproduces single-session behavior
  exactly; ``REPRO_OVERLOAD=0`` reproduces unprotected dispatch);
- :mod:`~repro.server.base` — :class:`SharedBase`: the frozen base catalog
  plus the shared cache-tier bundle every tenant's evaluator consults;
- :mod:`~repro.server.manager` — :class:`SessionManager`: session registry
  and lifecycle (create / touch / LRU-evict / idle-TTL-expire) over a
  bounded worker pool, per-session FIFO dispatch, per-tenant deterministic
  seeding;
- :mod:`~repro.server.overload` — admission control (bounded queues,
  inflight watermark, token buckets, seeded shed ramp), request deadlines
  with cooperative cancellation, deficit-round-robin fairness, and the
  brownout load controller.

Tenant isolation model: the base catalog is frozen (mutation raises);
each tenant works on a copy-on-write fork carrying its own trust weights,
MIRA weights, workspace, and drift ledger; shared cache tiers key entries
on ``(cache scope, fingerprint, version)``, so pristine forks share warm
entries and diverged forks silently stop colliding.

Import shape: :mod:`.config` and :mod:`.overload` load eagerly (they sit
*below* the core session — the evaluator, autocomplete, and durability
recorder import deadline checkpoints from here), while :class:`SharedBase`
and :class:`SessionManager` resolve lazily on first attribute access —
importing them eagerly would cycle back through ``core.session``.
"""

from __future__ import annotations

from importlib import import_module

from .config import OVERLOAD, SERVER, OverloadConfig, ServerConfig
from .overload import (
    LoadController,
    Overloaded,
    RequestExpired,
    SessionError,
    ShedPolicy,
    TokenBucket,
    check_deadline,
    current_deadline,
    deadline_scope,
    overload_stats_line,
    shielded_deadline,
)

__all__ = [
    "LoadController",
    "OVERLOAD",
    "Overloaded",
    "OverloadConfig",
    "RequestExpired",
    "SERVER",
    "ServerConfig",
    "SessionError",
    "SessionManager",
    "SharedBase",
    "ShedPolicy",
    "TokenBucket",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "overload_stats_line",
    "server_stats_line",
    "shielded_deadline",
]

#: Heavyweight names resolved lazily (they import core.session).
_LAZY = {"SharedBase": ".base", "SessionManager": ".manager"}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value
    return value


def server_stats_line(manager=None, metrics=None) -> str:
    """One-line summary of server activity (``--trace`` output)."""
    if manager is not None:
        stats = manager.stats()
        shed = stats["overload"]["shed"]
        return (
            f"server: {stats['active']} active · {stats['created']} created · "
            f"{stats['evicted']} evicted · {stats['expired']} expired · "
            f"{stats['requests']} requests ({stats['request_errors']} errors, "
            f"{shed} shed)"
        )
    from ..obs import METRICS

    m = metrics or METRICS
    created = int(m.counter_value("server.sessions_created"))
    evicted = int(m.counter_value("server.sessions_evicted"))
    expired = int(m.counter_value("server.sessions_expired"))
    requests = int(m.counter_value("server.requests"))
    errors = int(m.counter_value("server.request_errors"))
    shed = int(m.counter_value("server.requests_shed"))
    active = m.gauge_value("server.sessions_active")
    line = (
        f"server: {int(active) if active is not None else 0} active · "
        f"{created} created · {evicted} evicted · {expired} expired · "
        f"{requests} requests ({errors} errors, {shed} shed)"
    )
    if not SERVER.enabled:
        line += " · disabled"
    return line
