"""Session-server configuration: one process-wide switch set.

Mirrors the other layers' config singletons (:mod:`repro.cache.config`,
:mod:`repro.substrate.relational.config`, …): plain attributes on
:data:`SERVER`, programmatic overrides for tests and benchmarks
(:meth:`ServerConfig.disabled`, :meth:`ServerConfig.overridden`), and
environment variables read once at import:

- ``REPRO_SERVER=0`` disables the concurrent server entirely — the
  :class:`~repro.server.manager.SessionManager` runs every request inline
  on the calling thread with *private* per-session cache tiers, which
  reproduces pre-server behavior exactly (the env-toggle contract every
  prior layer honors);
- ``REPRO_SERVER_WORKERS`` sizes the worker pool (default 8);
- ``REPRO_SERVER_MAX_SESSIONS`` caps live sessions; creating one past the
  cap evicts the least-recently-used session first (default 64);
- ``REPRO_SERVER_IDLE_TTL`` (seconds) lets :meth:`SessionManager.
  evict_idle` expire sessions untouched for longer than the TTL
  (default 900).

The overload-protection layer (:mod:`repro.server.overload`) reads its
knobs from :data:`OVERLOAD` below:

- ``REPRO_OVERLOAD=0`` disables admission control, deadline propagation,
  fairness, and brownout entirely — dispatch reproduces the unprotected
  server bit-for-bit;
- ``REPRO_SERVER_QUEUE_DEPTH`` bounds each tenant's dispatch queue
  (default 128); a submit past the bound is shed with
  :class:`~repro.server.overload.Overloaded`;
- ``REPRO_OVERLOAD_MAX_INFLIGHT`` is the server-wide watermark on
  admitted-but-unfinished requests (default 1024), with
  ``REPRO_OVERLOAD_SHED_SOFT`` (fraction of the watermark, default 0.75)
  the point where the seeded probabilistic shed ramp starts;
- ``REPRO_OVERLOAD_SHED_SEED`` seeds the shed ramp's deterministic draws;
- ``REPRO_OVERLOAD_RATE`` / ``REPRO_OVERLOAD_BURST`` configure the
  per-tenant token bucket (rate 0 — the default — means unlimited);
- ``REPRO_OVERLOAD_QUANTUM`` is the deficit-round-robin drain quantum:
  requests one tenant may run before its drain yields the worker
  (default 8; 0 restores drain-to-empty);
- ``REPRO_OVERLOAD_RETRY_AFTER_MS`` is the base retry hint carried by
  shed errors (default 50);
- ``REPRO_BROWNOUT_WINDOW`` / ``REPRO_BROWNOUT_P95_MS`` /
  ``REPRO_BROWNOUT_PRESSURE`` / ``REPRO_BROWNOUT_EXIT`` /
  ``REPRO_BROWNOUT_HOLD`` tune the load controller: a rolling latency
  window whose p95 (or an inflight pressure fraction) must stay hot for
  ``hold`` consecutive observations to enter brownout, and cool for
  ``hold`` to leave it (hysteresis — no flapping on one spike);
- ``REPRO_BROWNOUT_SHRINK`` divides every shared cache-tier capacity
  while browned out (default 4; memory headroom under pressure).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw is not None else default


class ServerConfig:
    """Mutable knobs for the multi-tenant session server."""

    def __init__(self) -> None:
        #: master switch; off runs requests inline with private cache tiers.
        self.enabled = _env_flag("REPRO_SERVER", True)
        #: worker threads dispatching per-session requests.
        self.workers = _env_int("REPRO_SERVER_WORKERS", 8)
        #: live-session cap; LRU eviction beyond it.
        self.max_sessions = _env_int("REPRO_SERVER_MAX_SESSIONS", 64)
        #: idle seconds after which evict_idle() expires a session.
        self.idle_ttl = _env_float("REPRO_SERVER_IDLE_TTL", 900.0)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = ("enabled", "workers", "max_sessions", "idle_ttl")

    @contextmanager
    def disabled(self):
        """Temporarily force inline, private-tier execution."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown server knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | float | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"ServerConfig({state}, workers={self.workers}, "
            f"max_sessions={self.max_sessions}, idle_ttl={self.idle_ttl:g}s)"
        )


class OverloadConfig:
    """Mutable knobs for admission control, deadlines, and brownout."""

    def __init__(self) -> None:
        #: master switch; off reproduces unprotected dispatch bit-for-bit.
        self.enabled = _env_flag("REPRO_OVERLOAD", True)
        #: per-tenant dispatch-queue bound; submits past it are shed.
        self.queue_depth = _env_int("REPRO_SERVER_QUEUE_DEPTH", 128)
        #: server-wide watermark on admitted-but-unfinished requests.
        self.max_inflight = _env_int("REPRO_OVERLOAD_MAX_INFLIGHT", 1024)
        #: pressure fraction where the seeded early-shed ramp starts.
        self.shed_soft = _env_float("REPRO_OVERLOAD_SHED_SOFT", 0.75)
        #: seed for the deterministic shed draws (chaos runs reproduce).
        self.shed_seed = _env_int("REPRO_OVERLOAD_SHED_SEED", 20090104)
        #: per-tenant token-bucket refill rate in requests/second (0 = off).
        self.rate = _env_float("REPRO_OVERLOAD_RATE", 0.0)
        #: token-bucket burst capacity.
        self.burst = _env_int("REPRO_OVERLOAD_BURST", 32)
        #: deficit-round-robin quantum per drain turn (0 = drain to empty).
        self.drr_quantum = _env_int("REPRO_OVERLOAD_QUANTUM", 8)
        #: base retry hint (ms) carried by Overloaded shed errors.
        self.retry_after_ms = _env_float("REPRO_OVERLOAD_RETRY_AFTER_MS", 50.0)
        #: rolling request-latency window the load controller watches.
        self.brownout_window = _env_int("REPRO_BROWNOUT_WINDOW", 32)
        #: p95 latency (ms) over a full window that counts as pressure.
        self.brownout_p95_ms = _env_float("REPRO_BROWNOUT_P95_MS", 250.0)
        #: inflight fraction that counts as pressure on its own.
        self.brownout_pressure = _env_float("REPRO_BROWNOUT_PRESSURE", 0.85)
        #: inflight fraction below which recovery observations count.
        self.brownout_exit = _env_float("REPRO_BROWNOUT_EXIT", 0.5)
        #: consecutive hot/cool observations required to flip (hysteresis).
        self.brownout_hold = _env_int("REPRO_BROWNOUT_HOLD", 8)
        #: cache-tier capacity divisor while browned out.
        self.brownout_shrink = _env_int("REPRO_BROWNOUT_SHRINK", 4)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = (
        "enabled",
        "queue_depth",
        "max_inflight",
        "shed_soft",
        "shed_seed",
        "rate",
        "burst",
        "drr_quantum",
        "retry_after_ms",
        "brownout_window",
        "brownout_p95_ms",
        "brownout_pressure",
        "brownout_exit",
        "brownout_hold",
        "brownout_shrink",
    )

    @contextmanager
    def disabled(self):
        """Temporarily run dispatch unprotected (parity legs)."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown overload knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | float | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"OverloadConfig({state}, queue_depth={self.queue_depth}, "
            f"max_inflight={self.max_inflight}, quantum={self.drr_quantum}, "
            f"rate={self.rate:g}/s)"
        )


#: The process-wide server configuration the session manager consults.
SERVER = ServerConfig()

#: The process-wide overload-protection configuration.
OVERLOAD = OverloadConfig()
