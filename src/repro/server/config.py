"""Session-server configuration: one process-wide switch set.

Mirrors the other layers' config singletons (:mod:`repro.cache.config`,
:mod:`repro.substrate.relational.config`, …): plain attributes on
:data:`SERVER`, programmatic overrides for tests and benchmarks
(:meth:`ServerConfig.disabled`, :meth:`ServerConfig.overridden`), and
environment variables read once at import:

- ``REPRO_SERVER=0`` disables the concurrent server entirely — the
  :class:`~repro.server.manager.SessionManager` runs every request inline
  on the calling thread with *private* per-session cache tiers, which
  reproduces pre-server behavior exactly (the env-toggle contract every
  prior layer honors);
- ``REPRO_SERVER_WORKERS`` sizes the worker pool (default 8);
- ``REPRO_SERVER_MAX_SESSIONS`` caps live sessions; creating one past the
  cap evicts the least-recently-used session first (default 64);
- ``REPRO_SERVER_IDLE_TTL`` (seconds) lets :meth:`SessionManager.
  evict_idle` expire sessions untouched for longer than the TTL
  (default 900).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_FALSY = {"0", "false", "no", "off", ""}


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return int(raw) if raw is not None else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw is not None else default


class ServerConfig:
    """Mutable knobs for the multi-tenant session server."""

    def __init__(self) -> None:
        #: master switch; off runs requests inline with private cache tiers.
        self.enabled = _env_flag("REPRO_SERVER", True)
        #: worker threads dispatching per-session requests.
        self.workers = _env_int("REPRO_SERVER_WORKERS", 8)
        #: live-session cap; LRU eviction beyond it.
        self.max_sessions = _env_int("REPRO_SERVER_MAX_SESSIONS", 64)
        #: idle seconds after which evict_idle() expires a session.
        self.idle_ttl = _env_float("REPRO_SERVER_IDLE_TTL", 900.0)

    #: knobs :meth:`overridden` accepts (everything mutable above).
    KNOBS = ("enabled", "workers", "max_sessions", "idle_ttl")

    @contextmanager
    def disabled(self):
        """Temporarily force inline, private-tier execution."""
        with self.overridden(enabled=False):
            yield self

    @contextmanager
    def overridden(self, **knobs):
        """Temporarily override any named knob (tests and benchmarks)."""
        for name in knobs:
            if name not in self.KNOBS:
                raise ValueError(f"unknown server knob {name!r}; known: {self.KNOBS}")
        previous = {name: getattr(self, name) for name in knobs}
        try:
            for name, value in knobs.items():
                setattr(self, name, value)
            yield self
        finally:
            for name, value in previous.items():
                setattr(self, name, value)

    def snapshot(self) -> dict[str, int | float | bool]:
        return {name: getattr(self, name) for name in self.KNOBS}

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (
            f"ServerConfig({state}, workers={self.workers}, "
            f"max_sessions={self.max_sessions}, idle_ttl={self.idle_ttl:g}s)"
        )


#: The process-wide server configuration the session manager consults.
SERVER = ServerConfig()
