"""The server's shared immutable base layer.

A :class:`SharedBase` owns what every tenant has in common: the frozen base
catalog (source-graph snapshots come from each tenant's own learner, but
the *relations and services* they are built over are this one registry) and
the shared cache-tier bundle. Per-tenant state — trust weights, MIRA
weights, workspace, drift ledger — lives in each tenant's
:class:`~repro.core.session.CopyCatSession` over a copy-on-write
:meth:`~repro.substrate.relational.catalog.Catalog.fork` of the base.

Freezing the base is what makes lock-free concurrent reads sound: after
``SharedBase`` construction, any attempt to mutate the base catalog raises,
so a suggestion batch on one thread can never observe a half-committed
paste on another — each tenant's writes go to its own fork, whose first
divergent mutation silently moves it onto a private cache scope.
"""

from __future__ import annotations

from ..cache.tiers import CacheTiers
from ..substrate.relational.catalog import Catalog


class SharedBase:
    """Frozen base catalog + shared cache tiers, forked per tenant."""

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog if catalog is not None else Catalog()
        self.catalog.freeze()
        self.tiers = CacheTiers(shared=True)

    def fork_catalog(self) -> Catalog:
        """A copy-on-write tenant view of the frozen base catalog."""
        return self.catalog.fork()

    def __repr__(self) -> str:
        return f"SharedBase({self.catalog!r}, scope={self.catalog.cache_scope})"
