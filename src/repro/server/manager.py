"""The multi-tenant session manager.

One :class:`SessionManager` serves many independent user sessions
concurrently on a bounded worker pool:

- **registry + lifecycle** — sessions are created on first use, touched on
  every request (LRU order), evicted when the registry exceeds
  ``SERVER.max_sessions``, and expired by :meth:`evict_idle` once idle
  longer than ``SERVER.idle_ttl``;
- **per-session FIFO dispatch** — requests for one tenant are serialized
  in submission order (a session is single-threaded state: workspace,
  learners, feedback log), while requests for *different* tenants run
  concurrently on the pool. This is the snapshot-isolation story's other
  half: within a tenant there is no concurrency at all, and across tenants
  the only shared mutable state is the internally-locked cache tiers and
  the frozen base;
- **shared caching** — every session's evaluator consults the
  :class:`~repro.server.base.SharedBase`'s shared tier bundle, so tenant
  A's compiled plan closure, analyzer verdict, or materialized join is a
  hit for tenant B;
- **determinism** — each tenant's stochastic components are seeded by
  :func:`repro.util.rng.seed_for` over ``(manager seed, tenant id)``,
  which depends on *labels only* — never on creation order or thread
  scheduling — so a tenant's outputs are reproducible regardless of which
  other tenants run beside it;
- **overload protection** (:mod:`repro.server.overload`) — admission
  control sheds a submit past the per-tenant queue bound, the server-wide
  inflight watermark, or the tenant's token bucket with a typed
  :class:`~repro.server.overload.Overloaded`; ``submit(deadline_ms=...)``
  attaches a :class:`~repro.resilience.retry.Deadline` that is checked at
  dequeue (expired requests shed without running) and at cooperative
  checkpoints inside evaluation; the drain yields its worker every
  ``OVERLOAD.drr_quantum`` requests so one backlogged tenant cannot hold
  a worker hostage; and a :class:`~repro.server.overload.LoadController`
  flips sessions into brownout under sustained pressure.

With ``REPRO_SERVER=0`` (:data:`~repro.server.config.SERVER` disabled) the
manager keeps the same API but runs every request inline on the calling
thread with *private* per-session cache tiers — pre-server behavior,
exactly. With ``REPRO_OVERLOAD=0`` dispatch is the unprotected PR-7/8
server bit-for-bit.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analysis.concurrency.runtime import RACECHECK, TRACKER, make_lock
from ..core.session import CopyCatSession
from ..durability import DURABILITY, DurabilityStore, recover_session
from ..obs import METRICS
from ..resilience.retry import Deadline
from ..util.rng import DEFAULT_SEED, seed_for
from .base import SharedBase
from .config import OVERLOAD, SERVER
from .overload import (
    LEVEL_NORMAL,
    LoadController,
    Overloaded,
    RequestExpired,
    SessionError,
    ShedPolicy,
    TokenBucket,
    deadline_scope,
)

__all__ = ["SessionError", "SessionManager"]

#: Admission-shed reasons tracked per manager (and as overload.shed_*).
_SHED_REASONS = ("queue", "inflight", "rate", "early")


@dataclass
class _Request:
    """One queued dispatch: the work, its future, and admission metadata."""

    fn: Callable[[CopyCatSession], Any]
    future: "Future[Any]"
    deadline: Deadline | None = None
    enqueued: float = 0.0
    #: True when admission counted this request against the inflight
    #: watermark (pooled dispatch only) — it must be released exactly once.
    tracked: bool = False


@dataclass
class _Entry:
    """Registry slot: the session plus its dispatch and lifecycle state."""

    session: CopyCatSession
    seed: int
    created: float
    last_used: float
    tenant_id: str = ""
    lock: Any = field(default_factory=lambda: make_lock("_Entry.lock"))
    queue: deque = field(default_factory=deque)
    #: True while a drain task for this session is live on the pool.
    scheduled: bool = False
    #: deficit-round-robin credit for the current drain turn.
    deficit: int = 0
    #: monotonically increasing admission attempt index (seeded shed draws).
    submit_index: int = 0
    #: per-tenant token bucket (lazily built while OVERLOAD.rate > 0).
    bucket: TokenBucket | None = None
    #: service level last applied to the session (brownout laziness).
    applied_level: str = LEVEL_NORMAL


class SessionManager:
    """Serves many tenant sessions concurrently over one shared base."""

    def __init__(
        self,
        base: SharedBase | None = None,
        *,
        seed: int = DEFAULT_SEED,
        session_factory: Callable[..., CopyCatSession] | None = None,
        clock: Callable[[], float] = time.monotonic,
        durability_root: Any = None,
    ):
        self.base = base if base is not None else SharedBase()
        self.seed = seed
        self._session_factory = session_factory or self._default_factory
        self._clock = clock
        # Durable sessions: with a root configured (argument, or the
        # REPRO_DURABILITY_ROOT knob) and the layer enabled, every tenant
        # session records its actions write-ahead; eviction checkpoints
        # instead of dropping, and first attach after a restart recovers
        # the tenant from checkpoint + log tail.
        root = durability_root if durability_root is not None else (DURABILITY.root or None)
        self.store: DurabilityStore | None = (
            DurabilityStore(root) if (DURABILITY.enabled and root) else None
        )
        self._registry: "OrderedDict[str, _Entry]" = OrderedDict()
        self._registry_lock = make_lock("SessionManager._registry_lock")
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        # Overload protection: seeded shed draws and the brownout
        # controller are per-manager (one server, one load picture).
        self._shed_policy = ShedPolicy(OVERLOAD.shed_seed)
        self._controller = LoadController()
        # Lifetime counters (always on; mirrored into METRICS when
        # enabled), guarded by one mutex so stats() reads are coherent
        # under concurrent workers — `+=` is not atomic across threads.
        self._counters_lock = make_lock("SessionManager._counters_lock")
        self._inflight = 0
        self.sessions_created = 0
        self.sessions_evicted = 0
        self.sessions_expired = 0
        self.sessions_checkpointed = 0
        self.requests = 0
        self.request_errors = 0
        self.requests_shed = 0
        self.requests_expired = 0
        self.requests_canceled = 0
        self.requests_stranded = 0
        self.shed_reasons = {reason: 0 for reason in _SHED_REASONS}

    # -- session lifecycle ---------------------------------------------------
    def _default_factory(self, *, catalog, seed, cache_tiers) -> CopyCatSession:
        return CopyCatSession(catalog=catalog, seed=seed, cache_tiers=cache_tiers)

    def session(self, tenant_id: str) -> CopyCatSession:
        """The tenant's session, created on first use (touches LRU order)."""
        return self._entry(tenant_id).session

    def _entry(self, tenant_id: str) -> _Entry:
        if self._closed:
            raise SessionError("session manager is shut down")
        evicted: list[_Entry] = []
        with self._registry_lock:
            entry = self._registry.get(tenant_id)
            if entry is not None:
                entry.last_used = self._clock()
                self._registry.move_to_end(tenant_id)
                return entry
            seed = seed_for(self.seed, tenant_id)
            tiers = self.base.tiers if SERVER.enabled else None
            session = self._session_factory(
                catalog=self.base.fork_catalog(), seed=seed, cache_tiers=tiers
            )
            if self.store is not None:
                # Recover-on-attach: replay whatever this tenant's
                # checkpoint + log tail holds (a no-op for new tenants).
                # Runs under the registry lock so two racing first
                # requests can never double-replay one history.
                recover_session(session, tenant_id, self.store, seed=seed)  # lint: allow=CONC004 -- recovery must stay under the registry lock (no double-replay); emits only leaf durability counters
            now = self._clock()
            entry = _Entry(
                session=session,
                seed=seed,
                created=now,
                last_used=now,
                tenant_id=tenant_id,
            )
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._registry", self)
            self._registry[tenant_id] = entry
            with self._counters_lock:
                self.sessions_created += 1
            while len(self._registry) > max(1, SERVER.max_sessions):
                _, victim = self._registry.popitem(last=False)
                evicted.append(victim)
                with self._counters_lock:
                    self.sessions_evicted += 1
        for victim in evicted:
            # Evict-through: persist before dropping (outside the lock —
            # checkpoint writes are file IO).
            self._checkpoint_through(victim.session)
        if METRICS.enabled:
            METRICS.inc("server.sessions_created")
            if evicted:
                METRICS.inc("server.sessions_evicted", len(evicted))
            METRICS.gauge("server.sessions_active", float(len(self._registry)))
        return entry

    def _checkpoint_through(self, session: CopyCatSession) -> None:
        """Persist an evicted session's history, then detach its recorder.

        After detachment the (possibly still-referenced) session object
        keeps working purely in memory — the pre-durability eviction
        semantics — while the durable history ends cleanly at the
        eviction point; the next attach for the tenant recovers it.
        """
        recorder = session.durability
        if recorder is None or recorder.store is None:
            return
        recorder.checkpoint()
        recorder.close()
        session.durability = None
        with self._counters_lock:
            self.sessions_checkpointed += 1

    def evict(self, tenant_id: str) -> bool:
        """Evict the tenant's session (checkpointed first when durable);
        True when one existed."""
        with self._registry_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._registry", self)
            entry = self._registry.pop(tenant_id, None)
            if entry is not None:
                with self._counters_lock:
                    self.sessions_evicted += 1
        if entry is not None:
            self._checkpoint_through(entry.session)
            if METRICS.enabled:
                METRICS.inc("server.sessions_evicted")
                METRICS.gauge("server.sessions_active", float(len(self._registry)))
        return entry is not None

    def evict_idle(self, ttl: float | None = None) -> list[str]:
        """Expire sessions idle longer than *ttl* (``SERVER.idle_ttl``).

        Durable sessions are checkpointed through the expiry: idle-TTL
        pressure trims memory, never user history.
        """
        limit = SERVER.idle_ttl if ttl is None else ttl
        now = self._clock()
        expired: list[str] = []
        victims: list[_Entry] = []
        with self._registry_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._registry", self)
            for tenant_id, entry in list(self._registry.items()):
                if now - entry.last_used > limit:
                    del self._registry[tenant_id]
                    expired.append(tenant_id)
                    victims.append(entry)
                    with self._counters_lock:
                        self.sessions_expired += 1
        for entry in victims:
            self._checkpoint_through(entry.session)
        if expired and METRICS.enabled:
            METRICS.inc("server.sessions_expired", len(expired))
            METRICS.gauge("server.sessions_active", float(len(self._registry)))
        return expired

    # -- admission control ---------------------------------------------------
    @property
    def inflight(self) -> int:
        """Admitted requests not yet finished (queued + running)."""
        with self._counters_lock:
            return self._inflight

    def queue_depths(self) -> dict[str, int]:
        """Current dispatch-queue length per tenant (introspection)."""
        with self._registry_lock:
            return {tenant: len(entry.queue) for tenant, entry in self._registry.items()}

    def _shed(self, reason: str, tenant_id: str, retry_after_ms: float, detail: str):
        with self._counters_lock:
            self.requests_shed += 1
            self.shed_reasons[reason] += 1
        if METRICS.enabled:
            METRICS.inc(f"overload.shed_{reason}")
            METRICS.inc("server.requests_shed")
        raise Overloaded(
            f"request for {tenant_id!r} shed ({reason}): {detail}",
            reason=reason,
            retry_after_ms=max(1.0, retry_after_ms),
            tenant=tenant_id,
        )

    def _admit(self, entry: _Entry) -> None:
        """Fail fast (typed, with a retry hint) instead of queueing forever."""
        cfg = OVERLOAD
        tenant_id = entry.tenant_id
        now = self._clock()
        depth_limit = max(1, cfg.queue_depth)
        with entry.lock:
            entry.submit_index += 1
            index = entry.submit_index
            depth = len(entry.queue)
            if cfg.rate > 0:
                bucket = entry.bucket
                if bucket is None or bucket.rate != cfg.rate:
                    bucket = entry.bucket = TokenBucket(cfg.rate, cfg.burst, now)
                admitted_by_bucket = bucket.try_acquire(now)
                bucket_retry = bucket.retry_after_ms()
            else:
                admitted_by_bucket, bucket_retry = True, 0.0
        if not admitted_by_bucket:
            self._shed("rate", tenant_id, bucket_retry, f"token bucket empty at {cfg.rate:g}/s")
        if depth >= depth_limit:
            retry = cfg.retry_after_ms * (1.0 + depth / depth_limit)
            self._shed("queue", tenant_id, retry, f"dispatch queue at {depth}/{depth_limit}")
        inflight = self.inflight
        limit = max(1, cfg.max_inflight)
        if inflight >= limit:
            self._shed(
                "inflight", tenant_id, cfg.retry_after_ms * 2.0,
                f"server inflight at {inflight}/{limit}",
            )
        pressure = inflight / limit
        if self._shed_policy.should_shed(tenant_id, index, pressure, cfg.shed_soft):
            self._shed(
                "early", tenant_id, cfg.retry_after_ms,
                f"seeded ramp at pressure {pressure:.2f} (soft {cfg.shed_soft:g})",
            )

    # -- dispatch ------------------------------------------------------------
    def submit(
        self,
        tenant_id: str,
        fn: Callable[[CopyCatSession], Any],
        *,
        deadline_ms: float | None = None,
    ) -> "Future[Any]":
        """Run ``fn(session)`` for the tenant; returns a Future.

        Requests for one tenant execute FIFO (a session is single-threaded
        state); requests across tenants run concurrently on the pool. With
        the server disabled, the call runs inline on the calling thread and
        the returned future is already resolved.

        ``deadline_ms`` (overload layer on) starts the request's budget
        *now* — queue wait included. An expired request is shed at dequeue
        without running; one that expires mid-run aborts at the next
        cooperative checkpoint. Either way the future raises
        :class:`~repro.server.overload.RequestExpired`. A submit refused
        by admission control raises
        :class:`~repro.server.overload.Overloaded` synchronously.
        """
        entry = self._entry(tenant_id)
        protected = OVERLOAD.enabled
        deadline = (
            Deadline(deadline_ms, clock=self._clock)
            if (protected and deadline_ms is not None)
            else None
        )
        future: "Future[Any]" = Future()
        if not SERVER.enabled:
            with self._counters_lock:
                self.requests += 1
            if METRICS.enabled:
                METRICS.inc("server.requests")
            self._execute(entry, _Request(fn=fn, future=future, deadline=deadline))
            return future
        if protected:
            self._admit(entry)
        with self._counters_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._inflight", self)
            self.requests += 1
            self._inflight += 1
        if METRICS.enabled:
            METRICS.inc("server.requests")
            METRICS.gauge("overload.inflight", float(self.inflight))
        request = _Request(
            fn=fn, future=future, deadline=deadline,
            enqueued=self._clock(), tracked=True,
        )
        with entry.lock:
            entry.queue.append(request)
            schedule = not entry.scheduled
            if schedule:
                entry.scheduled = True
        if schedule:
            self._schedule_drain(entry)
        return future

    def call(self, tenant_id: str, fn: Callable[[CopyCatSession], Any], **kwargs) -> Any:
        """Synchronous :meth:`submit`: dispatch and wait for the result."""
        return self.submit(tenant_id, fn, **kwargs).result()

    def _executor(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._registry_lock:
                if self._closed:
                    # A drain racing shutdown must not resurrect the pool;
                    # _schedule_drain catches this and strands the queue.
                    raise RuntimeError("session manager is shut down")
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=max(1, SERVER.workers),
                        thread_name_prefix="repro-server",
                    )
        return pool

    def _schedule_drain(self, entry: _Entry) -> None:
        """Put a drain turn for *entry* on the pool, surviving a closing pool.

        A submit racing :meth:`shutdown` can see the executor already
        closed; the queued requests are failed right here (the caller
        would otherwise block on futures nothing will ever run).
        """
        try:
            self._executor().submit(self._drain, entry)
        except RuntimeError:
            with entry.lock:
                entry.scheduled = False
            self._strand_queue(entry)

    def _drain(self, entry: _Entry) -> None:
        """Worker task: run queued requests FIFO, then park — or, with the
        overload layer on, yield the worker after ``drr_quantum`` requests
        and requeue itself so other tenants' drains interleave (deficit
        round-robin; the pool's FIFO makes the rotation fair)."""
        quantum = OVERLOAD.drr_quantum if OVERLOAD.enabled else 0
        if quantum > 0:
            with entry.lock:
                entry.deficit += quantum
        while True:
            with entry.lock:
                if not entry.queue:
                    entry.scheduled = False
                    entry.deficit = 0
                    return
                if quantum > 0 and entry.deficit <= 0:
                    request = None
                else:
                    request = entry.queue.popleft()
            if request is None:
                # Quantum spent with work left: go to the back of the line.
                self._schedule_drain(entry)
                return
            if (
                OVERLOAD.enabled
                and request.deadline is not None
                and request.deadline.expired
            ):
                self._shed_expired(entry, request)
                continue
            with entry.lock:
                # After the shed check: expired requests must not consume
                # the tenant's deficit.
                entry.deficit -= 1
            try:
                self._execute(entry, request)
            except BaseException:
                # A KeyboardInterrupt/SystemExit re-raised by _execute ends
                # this drain task. Leave the queue to a fresh one (or park
                # cleanly) — otherwise `scheduled` stays True forever and
                # the tenant's later requests are never dispatched.
                with entry.lock:
                    reschedule = bool(entry.queue)
                    if not reschedule:
                        entry.scheduled = False
                        entry.deficit = 0
                if reschedule:
                    self._schedule_drain(entry)
                raise

    def _shed_expired(self, entry: _Entry, request: _Request) -> None:
        """Drop a request whose deadline ran out while it waited in queue.

        The work never runs — and for durable sessions therefore never
        reaches the write-ahead log: a shed is invisible to replay.
        """
        with self._counters_lock:
            self.requests_expired += 1
        if METRICS.enabled:
            METRICS.inc("overload.shed_deadline")
        if request.future.set_running_or_notify_cancel():
            request.future.set_exception(
                RequestExpired(
                    f"deadline of {request.deadline.budget_ms:g}ms expired "
                    f"before dispatch for {entry.tenant_id!r}",
                    checkpoint="dequeue",
                    retry_after_ms=max(1.0, OVERLOAD.retry_after_ms),
                    tenant=entry.tenant_id,
                )
            )
        self._request_done(request)

    def _strand_queue(self, entry: _Entry) -> int:
        """Fail every request still queued for *entry* (shutdown path).

        Pops one-at-a-time under the entry lock so a drain racing the
        shutdown and this loop each resolve a disjoint set of futures.
        """
        stranded = 0
        while True:
            with entry.lock:
                if not entry.queue:
                    break
                request = entry.queue.popleft()
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    SessionError(
                        f"session manager shut down with the request for "
                        f"{entry.tenant_id!r} still queued"
                    )
                )
                stranded += 1
            self._request_done(request)
        if stranded:
            with self._counters_lock:
                self.requests_stranded += stranded
            if METRICS.enabled:
                METRICS.inc("server.requests_stranded", stranded)
        return stranded

    def _request_done(self, request: _Request) -> None:
        """Release the request's inflight slot (exactly once per request)."""
        if not request.tracked:
            return
        request.tracked = False
        with self._counters_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._inflight", self)
            self._inflight -= 1
        if METRICS.enabled:
            METRICS.gauge("overload.inflight", float(self.inflight))

    def _touch(self, entry: _Entry) -> None:
        """Refresh the entry's recency *and* its LRU position, atomically.

        Both under the registry lock: updating ``last_used`` without
        ``move_to_end`` (or off the lock) lets eviction order disagree
        with actual recency — the busiest tenant could be the LRU victim.
        """
        with self._registry_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._registry", self)
            entry.last_used = self._clock()
            if self._registry.get(entry.tenant_id) is entry:
                self._registry.move_to_end(entry.tenant_id)

    def _apply_service_level(self, entry: _Entry) -> None:
        """Lazily align the session with the controller's level.

        Runs on the worker inside the tenant's serialized stream, and
        ``set_service_level`` is a *recorded* session action — so a
        durable session's brownout window replays exactly where it
        happened in its history.
        """
        level = self._controller.level
        if entry.applied_level == level:
            return
        entry.applied_level = level
        entry.session.set_service_level(level)

    def _execute(self, entry: _Entry, request: _Request) -> None:
        fn, future = request.fn, request.future
        if not future.set_running_or_notify_cancel():
            self._request_done(request)
            return
        self._touch(entry)
        protected = OVERLOAD.enabled and SERVER.enabled
        started = self._clock()
        if protected:
            if METRICS.enabled and request.tracked:
                METRICS.observe(
                    "overload.queue_wait_ms", (started - request.enqueued) * 1000.0
                )
            self._apply_service_level(entry)
        try:
            with METRICS.timer("server.request_ms"):
                try:
                    with deadline_scope(request.deadline):
                        result = fn(entry.session)
                except RequestExpired as exc:
                    # Cooperative cancellation, not a bug in the request:
                    # counted apart from request_errors.
                    with self._counters_lock:
                        self.requests_canceled += 1
                    future.set_exception(exc)
                except BaseException as exc:
                    with self._counters_lock:
                        self.request_errors += 1
                    if METRICS.enabled:
                        METRICS.inc("server.request_errors")
                    future.set_exception(exc)
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        # The caller gets the exception through the future,
                        # but a worker must not swallow interpreter-exit
                        # signals (the REPRO003 posture services take).
                        raise
                else:
                    future.set_result(result)
        finally:
            self._request_done(request)
            if protected:
                self._observe_load(started)

    def _observe_load(self, started: float) -> None:
        """Feed the brownout controller; act on a level transition."""
        latency_ms = (self._clock() - started) * 1000.0
        pressure = min(1.0, self.inflight / max(1, OVERLOAD.max_inflight))
        change = self._controller.observe(latency_ms, pressure)
        if change == "enter":
            # Brownout: shrink the shared tiers for memory headroom;
            # sessions pick the degraded level up lazily on their next
            # request (inside their serialized streams).
            self.base.tiers.shrink(OVERLOAD.brownout_shrink)
            if METRICS.enabled:
                METRICS.inc("overload.brownout_entered")
                METRICS.gauge("overload.level", 1.0)
        elif change == "exit":
            self.base.tiers.restore()
            if METRICS.enabled:
                METRICS.inc("overload.brownout_exited")
                METRICS.gauge("overload.level", 0.0)

    # -- introspection / shutdown ---------------------------------------------
    def tenant_ids(self) -> list[str]:
        with self._registry_lock:
            return list(self._registry)

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._registry)

    def stats(self) -> dict[str, Any]:
        """Lifecycle counters plus the shared tier bundle's cache stats."""
        with self._registry_lock:
            active = len(self._registry)
        with self._counters_lock:
            counters = {
                "created": self.sessions_created,
                "evicted": self.sessions_evicted,
                "expired": self.sessions_expired,
                "checkpointed": self.sessions_checkpointed,
                "requests": self.requests,
                "request_errors": self.request_errors,
            }
            overload = {
                "shed": self.requests_shed,
                "shed_reasons": dict(self.shed_reasons),
                "expired": self.requests_expired,
                "canceled": self.requests_canceled,
                "stranded": self.requests_stranded,
                "inflight": self._inflight,
            }
        overload["level"] = self._controller.level
        overload["brownout_entered"] = self._controller.entered
        overload["brownout_exited"] = self._controller.exited
        return {
            "active": active,
            **counters,
            "overload": overload,
            "tiers": self.base.tiers.stats(),
        }

    def shutdown(self, wait: bool = True) -> None:
        """Drain the pool, persist durable sessions, refuse further requests.

        Requests still queued when the pool stops are *stranded*: each is
        failed with :class:`SessionError` so callers blocked in
        ``.result()`` wake up instead of hanging forever.
        """
        with self._registry_lock:
            # Swap the pool out under the same lock _executor creates it
            # under, so a racing lazy-create cannot resurrect a pool this
            # shutdown will never see (the .shutdown call itself stays
            # outside — it blocks on in-flight work).
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        with self._registry_lock:
            if RACECHECK.enabled:
                TRACKER.note_access("SessionManager._registry", self)
            victims = list(self._registry.values())
            self._registry.clear()
        for entry in victims:
            self._strand_queue(entry)
        for entry in victims:
            self._checkpoint_through(entry.session)
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
